"""Command-line interface: ``python -m repro <command>``.

Gives the toolkit the standalone-executable face its first-generation
ancestors had (§2: "tools were provided primarily as standalone executables,
generally obtaining input from the command line"), but backed by the full
service catalogue:

* ``serve``       — host the Web-Service toolbox over HTTP
* ``classify``    — train/evaluate a classifier on an ARFF/CSV file
* ``cluster``     — cluster a dataset
* ``associate``   — mine association rules
* ``summarise``   — Figure-3 statistics of a dataset
* ``convert``     — CSV ↔ ARFF conversion
* ``recommend``   — algorithm advice for a dataset
* ``algorithms``  — list the algorithm catalogue
* ``run``         — enact a workflow XML file (``--trace`` records spans;
  ``--chaos``/``--seed`` arm the deterministic fault harness;
  ``--deadline`` bounds the run end to end)
* ``trace``       — render the span-tree timeline of a traced run
* ``metrics``     — render per-operation counters and latency quantiles
* ``loadgen``     — closed-loop load test against a SOAP endpoint
  (emits the ``BENCH_serving.json`` report schema)
* ``experiment``  — run a declarative {datasets × classifiers ×
  options × seeds} grid with per-cell checkpointing; re-running with
  the same store resumes exactly where a crash left off
* ``mesh``        — host the toolbox as a sharded multi-process
  service mesh (supervised workers, leased registry entries, adaptive
  replica routing behind one stable gateway)
* ``registry``    — inspect a hosted service registry's live entries
  (names, health, lease expiry, categories)
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.data import converters
from repro.errors import DeadlineExceeded, ReproError


def _load_dataset(path: str, class_attribute: str | None):
    text = Path(path).read_text()
    fmt = "csv" if path.lower().endswith(".csv") else "arff"
    return converters.parse(text, fmt, class_attribute)


def _cmd_serve(args) -> int:
    from repro.services import serve_toolbox
    host = serve_toolbox(port=args.port)
    print(f"toolkit hosted at {host.server.base_url}")
    print("services:")
    for name in host.container.services():
        print(f"  {host.server.wsdl_url(name)}")
    try:
        import threading
        threading.Event().wait(args.duration)
    except KeyboardInterrupt:
        pass
    finally:
        host.stop()
    return 0


def _cmd_classify(args) -> int:
    from repro.ml import catalogue, evaluation
    ds = _load_dataset(args.dataset, args.attribute)
    clf = catalogue.create(args.classifier)
    if args.cv:
        result = evaluation.cross_validate(
            lambda: catalogue.create(args.classifier), ds, k=args.cv)
        print(result.full_report())
    else:
        clf.fit(ds)
        print(clf.to_text())
        print(evaluation.evaluate(clf, ds).summary())
    return 0


def _cmd_cluster(args) -> int:
    from repro.ml import catalogue
    ds = _load_dataset(args.dataset, None)
    model = catalogue.create(args.clusterer,
                             {"k": args.k} if args.k else {})
    model.fit(ds)
    print(model.to_text())
    return 0


def _cmd_associate(args) -> int:
    from repro.ml import catalogue
    ds = _load_dataset(args.dataset, None)
    learner = catalogue.create(args.associator, {
        "min_support": args.min_support,
        "min_confidence": args.min_confidence})
    learner.fit(ds)
    print(learner.rules_text())
    return 0


def _cmd_summarise(args) -> int:
    from repro.data import summary
    print(summary.summary_text(_load_dataset(args.dataset, None)))
    return 0


def _cmd_convert(args) -> int:
    text = Path(args.source).read_text()
    src = "csv" if args.source.lower().endswith(".csv") else "arff"
    dst = "csv" if args.target.lower().endswith(".csv") else "arff"
    Path(args.target).write_text(converters.convert(text, src, dst))
    print(f"wrote {args.target}")
    return 0


def _cmd_recommend(args) -> int:
    from repro.ml.advisor import advise_text
    print(advise_text(_load_dataset(args.dataset, args.attribute)))
    return 0


def _cmd_algorithms(args) -> int:
    from repro.ml import catalogue
    for entry in catalogue.entries():
        if args.kind and entry.kind != args.kind:
            continue
        print(f"{entry.name:<36} {entry.kind:<11} {entry.description}")
    return 0


def _cmd_run(args) -> int:
    from repro import chaos, obs
    from repro.workflow import (ChaosMiddleware, RetryPolicy,
                                WorkflowEngine, default_toolbox, xmlio)
    obs.maybe_enable_tracing_from_env()
    if args.trace:
        obs.enable_tracing()
    if args.no_payload_cache:
        from repro.data import cache as datacache
        from repro.ws import payload
        payload.set_enabled(False)
        datacache.set_enabled(False)
    if args.batch_size:
        from repro.ws import scatter
        scatter.set_default_chunk(args.batch_size)
    controller = chaos.maybe_install_from_env()
    if args.chaos:
        controller = chaos.install(args.chaos, seed=args.seed)
    graph = xmlio.loads(Path(args.workflow).read_text(),
                        default_toolbox())
    retries = args.retries if args.retries is not None else \
        (5 if controller is not None else 0)
    # the CLI wires the per-task chain explicitly (rather than letting
    # the engine derive it from the armed controller), mirroring how
    # the SOAP transports receive their interceptor chains
    middleware = [ChaosMiddleware(controller)] \
        if controller is not None else []
    engine = WorkflowEngine(
        retry_policy=RetryPolicy(max_retries=retries) if retries else
        None,
        allow_partial=args.allow_partial or controller is not None,
        middleware=middleware)
    result = engine.run(graph, deadline_s=args.deadline)
    for sink in graph.sinks():
        for idx in range(sink.num_outputs):
            print(f"--- {sink.name}[{idx}] ---")
            if sink.name in result.failed:
                print(f"(task failed: {result.failed[sink.name]})")
            elif sink.name in result.skipped:
                print("(task skipped: upstream failure)")
            else:
                print(result.outputs.get((sink.name, idx)))
    print(f"(enacted {len(graph)} tasks in "
          f"{result.wall_seconds:.3f}s)")
    if controller is not None:
        print()
        print(_chaos_outcome(graph, result, controller))
        path = obs.write_snapshot(args.trace_out)
        print(f"(chaos metrics snapshot written to {path}; inspect "
              f"with 'repro metrics')")
    if obs.tracing_enabled():
        print()
        print(obs.render_span_tree(obs.get_tracer().collector.spans()))
        path = obs.write_snapshot(args.trace_out)
        print(f"\n(trace snapshot written to {path}; inspect with "
              f"'repro trace' / 'repro metrics')")
    return 0


def _chaos_outcome(graph, result, controller) -> str:
    """The seeded chaos drill's outcome block.

    Everything here is deterministic for a fixed (workflow, spec, seed)
    triple — no timings, no ids — so two runs of the same drill must
    produce byte-identical blocks; CI diffs them.
    """
    lines = ["=== chaos outcome ==="]
    lines.append(f"workflow: {result.graph_name}")
    lines.append(f"chaos: {controller.plan.spec or '(programmatic)'} "
                 f"(seed {controller.seed})")
    summary = controller.summary()
    lines.append("injected:" if summary else "injected: (nothing)")
    for target, kinds in summary.items():
        shots = ", ".join(f"{kind}x{n}" for kind, n in kinds.items())
        lines.append(f"  {target}: {shots}")
    n_ok = len(result.durations)
    lines.append(f"tasks: {n_ok} ok, {len(result.failed)} failed, "
                 f"{len(result.skipped)} skipped")
    for name in sorted(result.failed):
        lines.append(f"  failed {name}: {result.failed[name]}")
    for name in sorted(result.skipped):
        lines.append(f"  skipped {name}")
    lines.append(f"degraded: {'yes' if result.degraded else 'no'}")
    lines.append("=== end chaos outcome ===")
    return "\n".join(lines)


def _load_obs_snapshot(path: str):
    from repro import obs
    target = Path(path)
    if not target.exists():
        raise ReproError(
            f"no trace snapshot at {path!r} — run a workflow with "
            f"'repro run --trace <workflow.xml>' (or FAEHIM_TRACE=1) "
            f"first")
    try:
        return obs.load_snapshot(target)
    except ValueError as exc:
        raise ReproError(
            f"{path!r} is not a trace snapshot (invalid JSON: {exc})")


def _cmd_trace(args) -> int:
    import json

    from repro import obs
    data = _load_obs_snapshot(args.snapshot)
    if args.json:
        print(json.dumps(data.get("spans", []), indent=2))
    else:
        print(obs.render_span_tree(data.get("spans", [])))
        dropped = data.get("dropped_spans", 0)
        if dropped:
            print(f"({dropped} span(s) dropped at collector capacity)")
    return 0


def _cmd_metrics(args) -> int:
    import json

    from repro import obs
    data = _load_obs_snapshot(args.snapshot)
    metrics = data.get("metrics", {})
    if args.json:
        print(json.dumps(metrics, indent=2))
    else:
        print(obs.render_metrics(metrics))
    return 0


def _cmd_loadgen(args) -> int:
    import json

    from repro.ws import loadgen
    params = {}
    for item in args.param or []:
        key, sep, value = item.partition("=")
        if not sep:
            raise ReproError(
                f"--param wants key=value, got {item!r}")
        params[key] = value
    report = loadgen.run(
        args.endpoint, args.operation, params,
        concurrency=args.concurrency, duration_s=args.duration,
        warmup_s=args.warmup, priority_levels=args.priority_levels,
        seed=args.seed, timeout_s=args.timeout,
        transport=args.transport)
    payload = report.as_dict()
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_experiment(args) -> int:
    from repro import chaos, obs
    from repro.experiment import render_markdown, run_grid
    from repro.experiment import loads as load_spec
    obs.maybe_enable_tracing_from_env()
    if args.trace:
        obs.enable_tracing()
    spec = load_spec(Path(args.spec).read_text())
    store_path = Path(args.store) if args.store else \
        Path(args.spec).with_suffix(".results.jsonl")
    if args.fresh and store_path.exists():
        store_path.unlink()
    controller = chaos.maybe_install_from_env()
    if args.chaos:
        controller = chaos.install(args.chaos, seed=args.seed)
    report = run_grid(spec, store_path, replicas=args.replicas,
                      chaos_controller=controller,
                      cells_per_dispatch=args.cells_per_dispatch)
    print(f"experiment: {spec.name}")
    print(f"store: {store_path}")
    print(report.summary_line())
    markdown = render_markdown(spec.name, report.results)
    if args.report_out:
        Path(args.report_out).write_text(markdown)
        print(f"report written to {args.report_out}")
    else:
        print()
        print(markdown, end="")
    if obs.tracing_enabled():
        path = obs.write_snapshot(args.trace_out)
        print(f"(trace snapshot written to {path}; inspect with "
              f"'repro trace' / 'repro metrics')")
    return 0


def _cmd_mesh(args) -> int:
    import json
    import threading

    from repro.ws.mesh import start_mesh
    services = [s for s in args.services.split(",") if s] \
        if args.services else None
    slow_ms = {}
    for item in args.slow or []:
        wid, sep, value = item.partition("=")
        if not sep:
            raise ReproError(f"--slow wants worker=ms, got {item!r}")
        slow_ms[wid] = float(value)
    host = start_mesh(workers=args.workers, services=services,
                      shards=args.shards, policy=args.policy,
                      port=args.port, lease_ttl_s=args.lease_ttl,
                      slow_ms=slow_ms, transport=args.transport)
    print(f"mesh gateway at {host.base_url} "
          f"({args.workers} worker(s), shards {args.shards!r}, "
          f"policy {args.policy!r}, transport {args.transport!r})")
    print(f"fleet status: {host.base_url}/mesh/status")
    print("services:")
    for name in host.discovery.service_names():
        print(f"  {host.wsdl_url(name)}")
    try:
        threading.Event().wait(args.duration)
    except KeyboardInterrupt:
        pass
    finally:
        if args.status_out:
            Path(args.status_out).write_text(
                json.dumps(host.status(), indent=2) + "\n")
            print(f"status written to {args.status_out}")
        host.stop()
    return 0


def _cmd_registry(args) -> int:
    import json

    from repro.ws.client import ServiceProxy
    url = args.endpoint
    if "?" not in url:
        url = f"{url}?wsdl"
    proxy = ServiceProxy.from_wsdl_url(url)
    entries = proxy.call("inquire", pattern=args.pattern,
                         category=args.category or "",
                         healthy_only=args.healthy_only)
    if args.json:
        print(json.dumps(entries, indent=2))
        return 0
    if not entries:
        print("no matching registry entries")
        return 0
    for entry in entries:
        lease = entry.get("lease_ttl_s") or 0.0
        expiry = (f"expires in {entry['expires_in_s']:.1f}s"
                  if lease and entry.get("expires_in_s") is not None
                  else "no lease")
        print(f"{entry['name']}  [{entry.get('health', 'up')}]  "
              f"{expiry}")
        print(f"  wsdl: {entry['wsdl_url']}")
        if entry.get("categories"):
            print(f"  categories: {', '.join(entry['categories'])}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Web Services composition for distributed data "
                    "mining (FAEHIM reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="host the Web-Service toolbox")
    p.add_argument("--port", type=int, default=8334)
    p.add_argument("--duration", type=float, default=3600.0,
                   help="seconds to serve before exiting")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("classify", help="train/evaluate a classifier")
    p.add_argument("dataset")
    p.add_argument("--classifier", default="J48")
    p.add_argument("--attribute", required=True,
                   help="class attribute name")
    p.add_argument("--cv", type=int, default=0,
                   help="cross-validation folds (0 = train only)")
    p.set_defaults(fn=_cmd_classify)

    p = sub.add_parser("cluster", help="cluster a dataset")
    p.add_argument("dataset")
    p.add_argument("--clusterer", default="SimpleKMeans")
    p.add_argument("--k", type=int, default=0)
    p.set_defaults(fn=_cmd_cluster)

    p = sub.add_parser("associate", help="mine association rules")
    p.add_argument("dataset")
    p.add_argument("--associator", default="Apriori")
    p.add_argument("--min-support", type=float, default=0.2,
                   dest="min_support")
    p.add_argument("--min-confidence", type=float, default=0.8,
                   dest="min_confidence")
    p.set_defaults(fn=_cmd_associate)

    p = sub.add_parser("summarise", help="Figure-3 dataset statistics")
    p.add_argument("dataset")
    p.set_defaults(fn=_cmd_summarise)

    p = sub.add_parser("convert", help="convert between CSV and ARFF")
    p.add_argument("source")
    p.add_argument("target")
    p.set_defaults(fn=_cmd_convert)

    p = sub.add_parser("recommend", help="algorithm advice")
    p.add_argument("dataset")
    p.add_argument("--attribute", required=True)
    p.set_defaults(fn=_cmd_recommend)

    p = sub.add_parser("algorithms", help="list the catalogue")
    p.add_argument("--kind", choices=("classifier", "clusterer",
                                      "associator"), default=None)
    p.set_defaults(fn=_cmd_algorithms)

    p = sub.add_parser("run", help="enact a workflow XML file")
    p.add_argument("workflow")
    p.add_argument("--trace", action="store_true",
                   help="record spans/metrics, print the span tree and "
                        "write a snapshot (also: FAEHIM_TRACE=1)")
    p.add_argument("--trace-out", default=".faehim-trace.json",
                   dest="trace_out",
                   help="snapshot path (default: .faehim-trace.json)")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="arm the chaos harness, e.g. "
                        "'drop=0.3,delay=50ms' (also: FAEHIM_CHAOS); "
                        "implies retries + graceful degradation")
    p.add_argument("--seed", type=int, default=0,
                   help="chaos RNG seed (default 0); same spec + seed "
                        "reproduces the same faults")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="time budget for the whole run, propagated to "
                        "every task and nested service call")
    p.add_argument("--retries", type=int, default=None,
                   help="per-task retries for transient failures "
                        "(default: 0, or 5 when --chaos is armed)")
    p.add_argument("--allow-partial", action="store_true",
                   dest="allow_partial",
                   help="complete degraded instead of aborting when a "
                        "task permanently fails")
    p.add_argument("--batch-size", type=int, default=None,
                   dest="batch_size", metavar="N",
                   help="initial scatter-gather chunk size for bulk-"
                        "scoring tools (adaptive per endpoint "
                        "afterwards; default 64)")
    p.add_argument("--no-payload-cache", action="store_true",
                   dest="no_payload_cache",
                   help="disable the data-plane fast path (by-reference "
                        "payloads, wire compression, parse/result "
                        "memoisation); also: FAEHIM_NO_FASTPATH=1")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("trace",
                       help="render the span tree of a traced run")
    p.add_argument("snapshot", nargs="?", default=".faehim-trace.json")
    p.add_argument("--json", action="store_true",
                   help="emit raw span records as JSON")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("metrics",
                       help="render call counts and latency quantiles")
    p.add_argument("snapshot", nargs="?", default=".faehim-trace.json")
    p.add_argument("--json", action="store_true",
                   help="emit the metrics snapshot as JSON")
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser("loadgen",
                       help="closed-loop load test of a SOAP endpoint")
    p.add_argument("endpoint",
                   help="service URL, e.g. "
                        "http://127.0.0.1:8334/services/Classifier")
    p.add_argument("operation", help="operation name to invoke")
    p.add_argument("--param", action="append", metavar="KEY=VALUE",
                   help="operation parameter (repeatable)")
    p.add_argument("--concurrency", type=int, default=64,
                   help="closed-loop clients to run (default 64)")
    p.add_argument("--duration", type=float, default=5.0,
                   help="measured seconds after warmup (default 5)")
    p.add_argument("--warmup", type=float, default=1.0,
                   help="seconds excluded from the report (default 1)")
    p.add_argument("--priority-levels", type=int, default=1,
                   dest="priority_levels",
                   help="spread clients over N priorities to exercise "
                        "the admission queue's shed ordering")
    p.add_argument("--seed", type=int, default=0,
                   help="backoff-jitter RNG seed (default 0)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-call transport timeout seconds")
    p.add_argument("--transport", default="auto",
                   choices=("auto", "tcp", "uds"),
                   help="assert the endpoint scheme: tcp wants "
                        "http://, uds wants unix:// (default auto)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the JSON report to PATH "
                        "(e.g. BENCH_serving.json)")
    p.set_defaults(fn=_cmd_loadgen)

    p = sub.add_parser("experiment",
                       help="run a declarative experiment grid with "
                            "checkpoint/resume")
    p.add_argument("spec", help="experiment spec file (.json or .xml)")
    p.add_argument("--store", default=None, metavar="PATH",
                   help="results store JSONL (default: "
                        "<spec>.results.jsonl); completed cells found "
                        "in an existing store are skipped — re-running "
                        "after a crash resumes the grid")
    p.add_argument("--fresh", action="store_true",
                   help="discard an existing store and run the whole "
                        "grid again")
    p.add_argument("--replicas", type=int, default=2,
                   help="in-process Classifier replicas to scatter "
                        "cells across (default 2)")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="arm the chaos harness against the replicas, "
                        "e.g. 'replica-0:error=1;*:delay=5ms' (also: "
                        "FAEHIM_CHAOS)")
    p.add_argument("--seed", type=int, default=0,
                   help="chaos RNG seed (default 0)")
    p.add_argument("--cells-per-dispatch", type=int, default=1,
                   dest="cells_per_dispatch", metavar="N",
                   help="cells per scatter dispatch (also the maximum "
                        "— one checkpoint covers one dispatch; "
                        "default 1 for exactly-once resume)")
    p.add_argument("--trace", action="store_true",
                   help="record spans and write a trace snapshot "
                        "(also: FAEHIM_TRACE=1)")
    p.add_argument("--trace-out", default=".faehim-trace.json",
                   dest="trace_out", metavar="PATH",
                   help="trace snapshot path (default: "
                        ".faehim-trace.json)")
    p.add_argument("--report-out", default=None, dest="report_out",
                   metavar="PATH",
                   help="write the markdown report to PATH instead of "
                        "stdout")
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("mesh",
                       help="host the toolbox as a sharded multi-"
                            "process service mesh")
    p.add_argument("--workers", type=int, default=4,
                   help="worker processes to fork (default 4)")
    p.add_argument("--shards", default="all", metavar="SPEC",
                   help="'all' (every worker hosts everything) or "
                        "'ring:R' (each service on R ring-chosen "
                        "workers); default 'all'")
    p.add_argument("--policy", default="adaptive",
                   choices=("adaptive", "hash", "static"),
                   help="replica routing policy (default adaptive)")
    p.add_argument("--services", default=None, metavar="CSV",
                   help="subset of the catalogue to host "
                        "(default: all services)")
    p.add_argument("--port", type=int, default=8335,
                   help="gateway port (default 8335; 0 = ephemeral)")
    p.add_argument("--lease-ttl", type=float, default=15.0,
                   dest="lease_ttl", metavar="S",
                   help="registry lease TTL per replica (default 15s)")
    p.add_argument("--slow", action="append", metavar="WORKER=MS",
                   help="delay every dispatch on one worker, e.g. "
                        "'w2=50' (skewed-replica benchmarking; "
                        "repeatable)")
    p.add_argument("--transport", default="tcp",
                   choices=("tcp", "uds"),
                   help="gateway→worker transport: uds adds a Unix "
                        "socket per worker with shm payload hand-off "
                        "(default tcp)")
    p.add_argument("--duration", type=float, default=3600.0,
                   help="seconds to serve before exiting")
    p.add_argument("--status-out", default=None, dest="status_out",
                   metavar="PATH",
                   help="write the final fleet/profile status JSON "
                        "to PATH on shutdown")
    p.set_defaults(fn=_cmd_mesh)

    p = sub.add_parser("registry",
                       help="inspect a hosted service registry")
    p.add_argument("--endpoint",
                   default="http://127.0.0.1:8334/services/Registry",
                   help="Registry service endpoint (default: the "
                        "'repro serve' default port)")
    p.add_argument("--pattern", default="*",
                   help="glob on entry names (default '*')")
    p.add_argument("--category", default=None,
                   help="filter by category, e.g. 'service:Classifier'")
    p.add_argument("--healthy-only", action="store_true",
                   dest="healthy_only",
                   help="hide entries marked down")
    p.add_argument("--json", action="store_true",
                   help="emit raw JSON instead of the table")
    p.set_defaults(fn=_cmd_registry)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away mid-print; not an
        # error.  Point stdout at devnull so the interpreter's shutdown
        # flush can't raise the same thing again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except DeadlineExceeded as exc:
        print(f"error: DeadlineExceeded: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
