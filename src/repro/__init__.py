"""FAEHIM reproduction: Web Services composition for distributed data mining.

This package reimplements, in pure Python + NumPy, the toolkit described in
*Web Services Composition for Distributed Data Mining* (Shaikh Ali, Rana,
Taylor - ICPP Workshops 2005): a WEKA-like machine-learning library
(:mod:`repro.ml`), an ARFF/CSV dataset layer (:mod:`repro.data`), a SOAP/WSDL
web-services substrate (:mod:`repro.ws`), the data-mining services the paper
exposes (:mod:`repro.services`), a Triana-like workflow engine
(:mod:`repro.workflow`) and the visualisation back-ends (:mod:`repro.viz`).

Quickstart::

    from repro.data import synthetic
    from repro.ml.classifiers import J48

    ds = synthetic.breast_cancer()
    clf = J48()
    clf.fit(ds)
    print(clf.to_text())
"""

__version__ = "1.0.0"

__all__ = ["data", "ml", "ws", "services", "workflow", "viz"]
