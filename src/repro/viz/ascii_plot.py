"""GNUPlot-substitute ASCII plotting.

GNUPlot's ``set terminal dumb`` draws charts as character grids; this module
reproduces that output mode (scatter, line, histogram) so the plotting Web
Service can return a visualisation that renders anywhere, including inside
test logs.  The SVG backend (:mod:`repro.viz.svg`) covers the graphical
terminal.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ReproError

_MARKERS = "*+ox#@%&"


def _bounds(values: Sequence[float]) -> tuple[float, float]:
    arr = [v for v in values if math.isfinite(v)]
    if not arr:
        raise ReproError("no finite values to plot")
    lo, hi = min(arr), max(arr)
    if lo == hi:
        lo -= 0.5
        hi += 0.5
    return lo, hi


def scatter(xs: Sequence[float], ys: Sequence[float],
            width: int = 60, height: int = 20,
            series: Sequence[int] | None = None,
            title: str = "") -> str:
    """Scatter plot on a character grid; *series* selects per-point markers."""
    if len(xs) != len(ys):
        raise ReproError("x and y lengths differ")
    if len(xs) == 0:
        raise ReproError("nothing to plot")
    x_lo, x_hi = _bounds(xs)
    y_lo, y_hi = _bounds(ys)
    grid = [[" "] * width for _ in range(height)]
    for i, (x, y) in enumerate(zip(xs, ys)):
        if not (math.isfinite(x) and math.isfinite(y)):
            continue
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = height - 1 - int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        marker = _MARKERS[(series[i] if series is not None else 0)
                          % len(_MARKERS)]
        grid[row][col] = marker
    lines = []
    if title:
        lines.append(title.center(width + 10))
    top_label = f"{y_hi:10.4g} "
    bot_label = f"{y_lo:10.4g} "
    pad = " " * 11
    for r, row_cells in enumerate(grid):
        label = top_label if r == 0 else (
            bot_label if r == height - 1 else pad)
        lines.append(label + "|" + "".join(row_cells))
    lines.append(pad + "+" + "-" * width)
    lines.append(pad + f" {x_lo:<.4g}" +
                 f"{x_hi:>{max(width - len(f'{x_lo:<.4g}'), 1)}.4g}")
    return "\n".join(lines)


def line_plot(ys: Sequence[float], width: int = 60, height: int = 20,
              title: str = "") -> str:
    """Line plot of a 1-D series against its index."""
    xs = list(range(len(ys)))
    return scatter(xs, ys, width, height, title=title)


def histogram(labels: Sequence[str], counts: Sequence[float],
              width: int = 40, title: str = "") -> str:
    """Horizontal bar chart (the attribute-visualiser building block)."""
    if len(labels) != len(counts):
        raise ReproError("label and count lengths differ")
    if not labels:
        raise ReproError("nothing to plot")
    peak = max(max(counts), 1e-12)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, count in zip(labels, counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{str(label):>{label_width}} |{bar} {count:g}")
    return "\n".join(lines)


def scatter_svg(xs: Sequence[float], ys: Sequence[float],
                series: Sequence[int] | None = None,
                width: int = 640, height: int = 480,
                title: str = "") -> str:
    """SVG scatter plot (the 'graphical terminal')."""
    from repro.viz.svg import SvgCanvas
    if len(xs) != len(ys) or len(xs) == 0:
        raise ReproError("need equal, non-empty x/y")
    palette = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
               "#8c564b", "#e377c2", "#7f7f7f"]
    x_lo, x_hi = _bounds(xs)
    y_lo, y_hi = _bounds(ys)
    margin = 40
    canvas = SvgCanvas(width, height)
    canvas.line(margin, height - margin, width - 10, height - margin)
    canvas.line(margin, height - margin, margin, 10)
    canvas.text(margin, 20, title or "scatter", size=14)
    canvas.text(margin - 5, height - margin + 15, f"{x_lo:.3g}",
                size=10)
    canvas.text(width - 40, height - margin + 15, f"{x_hi:.3g}", size=10)
    canvas.text(2, height - margin, f"{y_lo:.3g}", size=10)
    canvas.text(2, 20, f"{y_hi:.3g}", size=10)
    for i, (x, y) in enumerate(zip(xs, ys)):
        if not (math.isfinite(x) and math.isfinite(y)):
            continue
        px = margin + (x - x_lo) / (x_hi - x_lo) * (width - margin - 20)
        py = (height - margin) - (y - y_lo) / (y_hi - y_lo) \
            * (height - margin - 20)
        color = palette[(series[i] if series is not None else 0)
                        % len(palette)]
        canvas.circle(px, py, 3, fill=color)
    return canvas.render()


def surface_ascii(z: np.ndarray, width: int = 60, height: int = 24,
                  title: str = "") -> str:
    """Shade a 2-D height field with density characters (dumb plot3D)."""
    shades = " .:-=+*#%@"
    z = np.asarray(z, dtype=float)
    if z.ndim != 2 or z.size == 0:
        raise ReproError("surface needs a non-empty 2-D array")
    lo, hi = float(np.nanmin(z)), float(np.nanmax(z))
    span = (hi - lo) or 1.0
    rows = np.linspace(0, z.shape[0] - 1, height).astype(int)
    cols = np.linspace(0, z.shape[1] - 1, width).astype(int)
    lines = [title] if title else []
    for r in rows:
        line = []
        for c in cols:
            v = z[r, c]
            if math.isnan(v):
                line.append("?")
            else:
                idx = int((v - lo) / span * (len(shades) - 1))
                line.append(shades[idx])
        lines.append("".join(line))
    return "\n".join(lines)
