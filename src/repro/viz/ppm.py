"""Raster image output: an RGB pixel buffer serialised as binary PPM (P6).

PPM is the PNG substitution documented in DESIGN.md — a bare-metal raster
format every image tool reads, producible without compression libraries.
The :class:`Raster` class offers just enough drawing (pixels, lines, filled
triangles with z-ordering handled by the caller) for the ``plot3D``
Mathematica-substitute service.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

Color = tuple[int, int, int]


class Raster:
    """A dense RGB image with simple primitive drawing."""

    def __init__(self, width: int, height: int,
                 background: Color = (255, 255, 255)):
        if width < 1 or height < 1:
            raise ReproError("raster dimensions must be positive")
        self.width = width
        self.height = height
        self.pixels = np.empty((height, width, 3), dtype=np.uint8)
        self.pixels[:, :] = background

    def set_pixel(self, x: int, y: int, color: Color) -> None:
        """Paint one pixel (out-of-bounds coordinates are ignored)."""
        if 0 <= x < self.width and 0 <= y < self.height:
            self.pixels[y, x] = color

    def line(self, x0: int, y0: int, x1: int, y1: int,
             color: Color) -> None:
        """Bresenham line."""
        dx = abs(x1 - x0)
        dy = -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        x, y = x0, y0
        while True:
            self.set_pixel(x, y, color)
            if x == x1 and y == y1:
                break
            e2 = 2 * err
            if e2 >= dy:
                err += dy
                x += sx
            if e2 <= dx:
                err += dx
                y += sy

    def fill_triangle(self, p0: tuple[float, float],
                      p1: tuple[float, float], p2: tuple[float, float],
                      color: Color) -> None:
        """Scanline fill of one triangle (no z-buffer; paint back-to-front)."""
        ys = [p0[1], p1[1], p2[1]]
        y_min = max(int(np.floor(min(ys))), 0)
        y_max = min(int(np.ceil(max(ys))), self.height - 1)
        edges = [(p0, p1), (p1, p2), (p2, p0)]
        for y in range(y_min, y_max + 1):
            xs: list[float] = []
            for (ax, ay), (bx, by) in edges:
                if ay == by:
                    continue
                lo, hi = (ay, by) if ay < by else (by, ay)
                if not (lo <= y + 0.5 < hi):
                    continue
                t = (y + 0.5 - ay) / (by - ay)
                xs.append(ax + t * (bx - ax))
            if len(xs) >= 2:
                x_lo = max(int(np.floor(min(xs))), 0)
                x_hi = min(int(np.ceil(max(xs))), self.width - 1)
                if x_hi >= x_lo:
                    self.pixels[y, x_lo:x_hi + 1] = color

    def to_ppm(self) -> bytes:
        """Serialise as binary PPM (P6)."""
        header = f"P6\n{self.width} {self.height}\n255\n".encode("ascii")
        return header + self.pixels.tobytes()

    def to_ascii(self, width: int = 72, height: int = 28) -> str:
        """Downsample to a luminance character grid (image preview)."""
        shades = " .:-=+*#%@"
        rows = np.linspace(0, self.height - 1, height).astype(int)
        cols = np.linspace(0, self.width - 1, width).astype(int)
        sampled = self.pixels[np.ix_(rows, cols)].astype(float)
        # ITU-R BT.601 luminance, inverted so dark pixels are dense glyphs
        luma = (0.299 * sampled[:, :, 0] + 0.587 * sampled[:, :, 1]
                + 0.114 * sampled[:, :, 2]) / 255.0
        lines = []
        for row in luma:
            idx = ((1.0 - row) * (len(shades) - 1)).astype(int)
            lines.append("".join(shades[i] for i in idx))
        return "\n".join(lines)

    @classmethod
    def from_ppm(cls, data: bytes) -> "Raster":
        """Parse a binary PPM produced by :meth:`to_ppm` (tests use this)."""
        parts = data.split(b"\n", 3)
        if len(parts) < 4 or parts[0] != b"P6":
            raise ReproError("not a P6 PPM document")
        width, height = (int(v) for v in parts[1].split())
        if parts[2] != b"255":
            raise ReproError("unsupported PPM depth")
        body = parts[3]
        expected = width * height * 3
        if len(body) < expected:
            raise ReproError("truncated PPM body")
        out = cls(width, height)
        out.pixels = np.frombuffer(
            body[:expected], dtype=np.uint8).reshape((height, width, 3)) \
            .copy()
        return out
