"""Decision/concept tree visualisers (the paper's TreeVisualizer tool).

Consumes the node/edge graph dicts produced by ``J48.to_graph()`` and
``Cobweb.to_graph()`` (the ``classifyGraph`` / ``getCobwebGraph`` payloads)
and renders them as indented text, Graphviz dot, or a layered SVG drawing.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ReproError
from repro.viz.svg import SvgCanvas


def _index(graph: dict) -> tuple[dict, dict, int]:
    nodes = {n["id"]: n for n in graph.get("nodes", [])}
    if not nodes:
        raise ReproError("graph has no nodes")
    children: dict[int, list[dict]] = defaultdict(list)
    has_parent = set()
    for edge in graph.get("edges", []):
        children[edge["source"]].append(edge)
        has_parent.add(edge["target"])
    roots = [nid for nid in nodes if nid not in has_parent]
    if len(roots) != 1:
        raise ReproError(f"graph must have exactly one root, got {roots}")
    return nodes, children, roots[0]


def tree_text(graph: dict) -> str:
    """Indented text rendering of a tree graph."""
    nodes, children, root = _index(graph)
    lines: list[str] = []

    def rec(nid: int, prefix: str, edge_label: str) -> None:
        node = nodes[nid]
        shown = f"{edge_label}: " if edge_label else ""
        lines.append(prefix + shown + node["label"])
        for edge in children.get(nid, []):
            rec(edge["target"], prefix + "    ", edge.get("label", ""))

    rec(root, "", "")
    return "\n".join(lines)


def tree_dot(graph: dict, title: str = "tree") -> str:
    """Graphviz dot rendering (box leaves, ellipse internals)."""
    lines = [f'digraph "{title}" {{']
    for node in graph.get("nodes", []):
        shape = "box" if node.get("leaf") else "ellipse"
        label = str(node["label"]).replace('"', r"\"")
        lines.append(f'  n{node["id"]} [label="{label}", shape={shape}];')
    for edge in graph.get("edges", []):
        label = str(edge.get("label", "")).replace('"', r"\"")
        lines.append(f'  n{edge["source"]} -> n{edge["target"]} '
                     f'[label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def tree_svg(graph: dict, title: str = "decision tree") -> str:
    """Layered SVG drawing with subtree-width layout.

    Leaves are boxes, internal nodes ellipses; edge labels sit at edge
    midpoints — the layout Figure 4 of the paper shows.
    """
    nodes, children, root = _index(graph)

    # subtree leaf counts drive x positions
    widths: dict[int, int] = {}

    def measure(nid: int) -> int:
        kids = children.get(nid, [])
        if not kids:
            widths[nid] = 1
            return 1
        total = sum(measure(e["target"]) for e in kids)
        widths[nid] = total
        return total

    total_leaves = measure(root)

    depth: dict[int, int] = {}

    def depths(nid: int, d: int) -> None:
        depth[nid] = d
        for edge in children.get(nid, []):
            depths(edge["target"], d + 1)

    depths(root, 0)
    max_depth = max(depth.values())

    cell_w = 130
    cell_h = 90
    width = max(total_leaves * cell_w + 40, 320)
    height = (max_depth + 1) * cell_h + 60
    canvas = SvgCanvas(width, height)
    canvas.text(10, 20, title, size=14)

    positions: dict[int, tuple[float, float]] = {}

    def place(nid: int, x_offset: float) -> None:
        span = widths[nid] * cell_w
        x = x_offset + span / 2
        y = depth[nid] * cell_h + 50
        positions[nid] = (x, y)
        cursor = x_offset
        for edge in children.get(nid, []):
            place(edge["target"], cursor)
            cursor += widths[edge["target"]] * cell_w

    place(root, 20.0)

    for nid, (x, y) in positions.items():
        for edge in children.get(nid, []):
            cx, cy = positions[edge["target"]]
            canvas.line(x, y + 14, cx, cy - 14, stroke="#666666")
            canvas.text((x + cx) / 2, (y + cy) / 2, edge.get("label", ""),
                        size=10, fill="#333333", anchor="middle")
    for nid, (x, y) in positions.items():
        node = nodes[nid]
        label = str(node["label"])
        if node.get("leaf"):
            w = max(8 * len(label) + 10, 50)
            canvas.rect(x - w / 2, y - 14, w, 28, fill="#e8f0fe",
                        stroke="#444444")
        else:
            w = max(8 * len(label) + 16, 60)
            canvas.polygon(
                [(x - w / 2, y), (x, y - 16), (x + w / 2, y), (x, y + 16)],
                fill="#fef3e2", stroke="#444444")
        canvas.text(x, y + 4, label, size=11, anchor="middle")
    return canvas.render()
