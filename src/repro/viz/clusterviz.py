"""Cluster visualiser (the toolbox's "Cluster Visualize" tool).

Renders a clustered dataset as a 2-D scatter (first two numeric attributes,
or the two highest-variance ones), one marker/colour per cluster, in ASCII or
SVG; plus a textual cluster-size table.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import ReproError
from repro.viz import ascii_plot


def _pick_axes(dataset: Dataset) -> tuple[int, int]:
    numeric = [i for i, a in enumerate(dataset.attributes) if a.is_numeric]
    if len(numeric) < 2:
        raise ReproError(
            "cluster visualisation needs two numeric attributes")
    matrix = dataset.to_matrix()
    variances = []
    for i in numeric:
        col = matrix[:, i]
        present = col[~np.isnan(col)]
        variances.append((float(present.var()) if present.size else 0.0, i))
    variances.sort(reverse=True)
    return variances[0][1], variances[1][1]


def cluster_sizes_text(assignments: list[int]) -> str:
    """Cluster membership table."""
    if not assignments:
        raise ReproError("no cluster assignments")
    counts = np.bincount(np.asarray(assignments))
    lines = ["Cluster sizes", "-------------"]
    for c, count in enumerate(counts):
        lines.append(f"cluster {c}: {int(count)}")
    return "\n".join(lines)


def cluster_scatter_ascii(dataset: Dataset, assignments: list[int],
                          width: int = 60, height: int = 20) -> str:
    """ASCII scatter coloured (markered) by cluster."""
    ax, ay = _pick_axes(dataset)
    xs = dataset.column(ax)
    ys = dataset.column(ay)
    keep = ~(np.isnan(xs) | np.isnan(ys))
    title = (f"{dataset.attribute(ax).name} vs "
             f"{dataset.attribute(ay).name} by cluster")
    return ascii_plot.scatter(
        list(xs[keep]), list(ys[keep]),
        series=[assignments[i] for i in np.where(keep)[0]],
        width=width, height=height, title=title)


def cluster_scatter_svg(dataset: Dataset, assignments: list[int]) -> str:
    """SVG scatter coloured by cluster."""
    ax, ay = _pick_axes(dataset)
    xs = dataset.column(ax)
    ys = dataset.column(ay)
    keep = ~(np.isnan(xs) | np.isnan(ys))
    return ascii_plot.scatter_svg(
        list(xs[keep]), list(ys[keep]),
        series=[assignments[i] for i in np.where(keep)[0]],
        title=(f"{dataset.attribute(ax).name} vs "
               f"{dataset.attribute(ay).name}"))
