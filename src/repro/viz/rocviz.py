"""ROC-curve rendering (ASCII + SVG), completing the knowledge-testing
visualisation set."""

from __future__ import annotations

from repro.errors import ReproError
from repro.viz import ascii_plot
from repro.viz.svg import SvgCanvas

RocPoints = list[tuple[float, float, float]]


def roc_ascii(points: RocPoints, width: int = 50, height: int = 20,
              title: str = "ROC") -> str:
    """Character-grid ROC curve with the chance diagonal."""
    if len(points) < 2:
        raise ReproError("need at least two ROC points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    # overlay the diagonal as series 1
    diag = [i / (width - 1) for i in range(width)]
    all_x = xs + diag
    all_y = ys + diag
    series = [0] * len(xs) + [1] * len(diag)
    return ascii_plot.scatter(all_x, all_y, width=width, height=height,
                              series=series, title=title)


def roc_svg(points: RocPoints, auc_value: float | None = None,
            width: int = 420, height: int = 420,
            title: str = "ROC curve") -> str:
    """SVG ROC curve with the chance diagonal and optional AUC label."""
    if len(points) < 2:
        raise ReproError("need at least two ROC points")
    margin = 45
    canvas = SvgCanvas(width, height)
    x0, y0 = margin, height - margin
    x1, y1 = width - 15, 15
    # axes
    canvas.line(x0, y0, x1, y0)
    canvas.line(x0, y0, x0, y1)
    canvas.text(width // 2, height - 8, "false positive rate",
                size=11, anchor="middle")
    canvas.text(12, 12, "tpr", size=11)
    label = title if auc_value is None else \
        f"{title}  (AUC = {auc_value:.3f})"
    canvas.text(margin, 12, label, size=13)
    # chance diagonal
    canvas.line(x0, y0, x1, y1, stroke="#bbbbbb")

    def to_px(fx: float, fy: float) -> tuple[float, float]:
        return (x0 + fx * (x1 - x0), y0 + fy * (y1 - y0))

    prev = to_px(points[0][0], points[0][1])
    for fx, fy, _ in points[1:]:
        cur = to_px(fx, fy)
        canvas.line(prev[0], prev[1], cur[0], cur[1],
                    stroke="#1f77b4", width=2.0)
        prev = cur
    for fx, fy, _ in points:
        px, py = to_px(fx, fy)
        canvas.circle(px, py, 2.5, fill="#1f77b4")
    return canvas.render()
