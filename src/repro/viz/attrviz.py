"""Attribute visualiser (the toolbox's "tool to visualize the attributes
embedded in a dataset").

Nominal attributes render as value histograms; numeric ones as binned
histograms with min/mean/max annotations — the per-attribute view WEKA's
explorer shows and the paper's processing-tools folder provides.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.viz import ascii_plot


def attribute_histogram(dataset: Dataset, key: int | str,
                        bins: int = 10, width: int = 40) -> str:
    """Histogram text of one attribute."""
    idx = dataset.attribute_index(key) if isinstance(key, str) else key
    attr = dataset.attribute(idx)
    col = dataset.column(idx)
    missing = int(np.isnan(col).sum())
    if attr.is_nominal:
        counts = dataset.value_counts(idx)
        body = ascii_plot.histogram(
            list(counts.keys()), list(counts.values()), width=width,
            title=f"{attr.name} (nominal)")
    else:
        present = col[~np.isnan(col)]
        if present.size == 0:
            body = f"{attr.name} (numeric): all values missing"
        else:
            lo, hi = float(present.min()), float(present.max())
            edges = np.linspace(lo, hi, bins + 1) if hi > lo else \
                np.array([lo - 0.5, lo + 0.5])
            hist, _ = np.histogram(present, bins=edges)
            labels = [f"[{edges[i]:.3g},{edges[i + 1]:.3g})"
                      for i in range(len(hist))]
            body = ascii_plot.histogram(
                labels, list(hist.astype(float)), width=width,
                title=(f"{attr.name} (numeric) min={lo:.4g} "
                       f"mean={float(present.mean()):.4g} max={hi:.4g}"))
    if missing:
        body += f"\n(missing: {missing})"
    return body


def dataset_overview(dataset: Dataset, width: int = 40) -> str:
    """Histograms of every attribute, separated by blank lines."""
    parts = [f"=== {dataset.relation}: {dataset.num_instances} instances, "
             f"{dataset.num_attributes} attributes ==="]
    for i in range(dataset.num_attributes):
        parts.append(attribute_histogram(dataset, i, width=width))
    return "\n\n".join(parts)
