"""The ``plot3D`` renderer — the Mathematica-substitute back-end.

The paper: "The most important operation in this Web Service is the plot3D
operation.  This operation is used to plot data points sent as a CSV file in
three dimension and return the plotted graph as an image file (PNG format)".

This module renders a surface sampled on an (x, y) grid into a raster image
(binary PPM, the documented PNG substitution) using an isometric projection
with painter's-algorithm quad fill and height-mapped colouring — visually the
classic Mathematica ``Plot3D`` output.  Scattered (non-grid) points fall back
to projected point plotting.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ReproError
from repro.viz.ppm import Raster

#: Height colour ramp (blue -> cyan -> green -> yellow -> red).
_RAMP = [(40, 60, 200), (40, 200, 220), (60, 200, 80),
         (230, 220, 60), (220, 60, 50)]


def _ramp_color(t: float) -> tuple[int, int, int]:
    t = min(max(t, 0.0), 1.0)
    scaled = t * (len(_RAMP) - 1)
    i = min(int(scaled), len(_RAMP) - 2)
    frac = scaled - i
    a, b = _RAMP[i], _RAMP[i + 1]
    return tuple(int(round(a[c] + frac * (b[c] - a[c]))) for c in range(3))


def _project(x: np.ndarray, y: np.ndarray, z: np.ndarray,
             azimuth_deg: float = 225.0, elevation_deg: float = 30.0
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Isometric projection to screen (u, v) plus depth for painter order."""
    az = math.radians(azimuth_deg)
    el = math.radians(elevation_deg)
    # rotate about z by azimuth, then tilt by elevation
    xr = x * math.cos(az) - y * math.sin(az)
    yr = x * math.sin(az) + y * math.cos(az)
    u = xr
    v = yr * math.sin(el) + z * math.cos(el)
    depth = yr * math.cos(el) - z * math.sin(el)
    return u, v, depth


def _normalise(values: np.ndarray) -> np.ndarray:
    lo, hi = float(np.nanmin(values)), float(np.nanmax(values))
    span = (hi - lo) or 1.0
    return (values - lo) / span


def grid_from_points(xs: np.ndarray, ys: np.ndarray, zs: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Recover the (x, y) grid from flat point triples, or None if the
    points are not a complete grid."""
    ux = np.unique(xs)
    uy = np.unique(ys)
    if ux.size * uy.size != xs.size or ux.size < 2 or uy.size < 2:
        return None
    zi = np.full((uy.size, ux.size), np.nan)
    xi = {v: i for i, v in enumerate(ux)}
    yi = {v: i for i, v in enumerate(uy)}
    for x, y, z in zip(xs, ys, zs):
        zi[yi[y], xi[x]] = z
    if np.isnan(zi).any():
        return None
    gx, gy = np.meshgrid(ux, uy)
    return gx, gy, zi


def plot3d(xs, ys, zs, width: int = 480, height: int = 360,
           azimuth: float = 225.0, elevation: float = 30.0) -> bytes:
    """Render (x, y, z) samples to a PPM image (grid surface or points)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    zs = np.asarray(zs, dtype=float)
    if not (xs.size and xs.size == ys.size == zs.size):
        raise ReproError("plot3d needs equal-length non-empty x/y/z")
    raster = Raster(width, height)
    grid = grid_from_points(xs, ys, zs)
    # normalise coordinates so every surface fills the frame similarly
    nx, ny = _normalise(xs) - 0.5, _normalise(ys) - 0.5
    nz = _normalise(zs) * 0.6 - 0.3
    if grid is not None:
        gx, gy, gz = grid
        gnx = _normalise(gx) - 0.5
        gny = _normalise(gy) - 0.5
        gnz = _normalise(gz) * 0.6 - 0.3
        gu, gv, gd = _project(gnx, gny, gnz, azimuth, elevation)
        px, py = _to_screen(gu, gv, width, height)
        tz = _normalise(gz)
        # paint quads back-to-front by mean depth
        quads = []
        rows, cols = gz.shape
        for r in range(rows - 1):
            for c in range(cols - 1):
                corners = [(r, c), (r, c + 1), (r + 1, c + 1), (r + 1, c)]
                depth = float(np.mean([gd[i, j] for i, j in corners]))
                quads.append((depth, corners))
        quads.sort(key=lambda q: -q[0])  # farthest first
        for _, corners in quads:
            pts = [(float(px[i, j]), float(py[i, j])) for i, j in corners]
            shade = float(np.mean([tz[i, j] for i, j in corners]))
            color = _ramp_color(shade)
            raster.fill_triangle(pts[0], pts[1], pts[2], color)
            raster.fill_triangle(pts[0], pts[2], pts[3], color)
            # wireframe edges for the Mathematica mesh look
            edge = tuple(max(ch - 60, 0) for ch in color)
            for (x0, y0), (x1, y1) in zip(pts, pts[1:] + pts[:1]):
                raster.line(int(x0), int(y0), int(x1), int(y1), edge)
    else:
        u, v, depth = _project(nx, ny, nz, azimuth, elevation)
        px, py = _to_screen(u, v, width, height)
        order = np.argsort(-depth)
        tz = _normalise(zs)
        for i in order:
            color = _ramp_color(float(tz[i]))
            x, y = int(px[i]), int(py[i])
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    raster.set_pixel(x + dx, y + dy, color)
    return raster.to_ppm()


def _to_screen(u: np.ndarray, v: np.ndarray, width: int, height: int
               ) -> tuple[np.ndarray, np.ndarray]:
    margin = 0.1
    un = _normalise(u) * (1 - 2 * margin) + margin
    vn = _normalise(v) * (1 - 2 * margin) + margin
    return (un * (width - 1)).astype(int), \
        ((1 - vn) * (height - 1)).astype(int)
