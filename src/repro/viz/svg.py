"""Minimal SVG document builder.

The paper's visualisation services return image files (PNG from the
Mathematica service, plots from GNUPlot).  With no imaging libraries offline,
SVG is the vector output format of this reproduction and
:mod:`repro.viz.ppm` the raster one; both are plain bytes a browser or image
viewer renders directly.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field


@dataclass
class SvgCanvas:
    """Accumulates SVG elements; ``render()`` produces the document."""

    width: int = 640
    height: int = 480
    background: str = "#ffffff"
    _elements: list[str] = field(default_factory=list)

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "#000000", width: float = 1.0) -> None:
        """Add a line element."""
        self._elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" '
            f'y2="{y2:.2f}" stroke="{stroke}" stroke-width="{width}"/>')

    def circle(self, cx: float, cy: float, r: float,
               fill: str = "#000000", stroke: str = "none") -> None:
        """Add a circle element."""
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" '
            f'fill="{fill}" stroke="{stroke}"/>')

    def rect(self, x: float, y: float, w: float, h: float,
             fill: str = "#cccccc", stroke: str = "none") -> None:
        """Add a rectangle element."""
        self._elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}" fill="{fill}" stroke="{stroke}"/>')

    def polygon(self, points: list[tuple[float, float]],
                fill: str = "#cccccc", stroke: str = "none") -> None:
        """Add a polygon element."""
        pts = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._elements.append(
            f'<polygon points="{pts}" fill="{fill}" stroke="{stroke}"/>')

    def text(self, x: float, y: float, content: str, size: int = 12,
             fill: str = "#000000", anchor: str = "start") -> None:
        """Add a text element."""
        self._elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'fill="{fill}" text-anchor="{anchor}" '
            f'font-family="monospace">{html.escape(content)}</text>')

    def render(self) -> str:
        """Produce the SVG document text."""
        body = "\n".join(self._elements)
        return (f'<svg xmlns="http://www.w3.org/2000/svg" '
                f'width="{self.width}" height="{self.height}" '
                f'viewBox="0 0 {self.width} {self.height}">\n'
                f'<rect width="100%" height="100%" '
                f'fill="{self.background}"/>\n{body}\n</svg>\n')

    def render_bytes(self) -> bytes:
        """Produce the SVG document as UTF-8 bytes."""
        return self.render().encode("utf-8")
