"""Visualisation back-ends: ASCII (GNUPlot 'dumb terminal' substitute), SVG,
PPM raster (PNG substitute), plot3D surface rendering, tree/cluster/attribute
visualisers."""

from repro.viz import ascii_plot, attrviz, clusterviz, plot3d, ppm, \
    rocviz, svg, treeviz
from repro.viz.plot3d import plot3d as render_plot3d
from repro.viz.ppm import Raster
from repro.viz.svg import SvgCanvas

__all__ = ["ascii_plot", "attrviz", "clusterviz", "plot3d", "ppm",
           "rocviz", "svg", "treeviz", "render_plot3d", "Raster",
           "SvgCanvas"]
