"""Aggregation + reporting: turn a results store into a readable report.

The grid's output is thousands of per-cell accuracies; what the
experimenter wants is FlexDM's deliverable — per-dataset leaderboards,
paired win/loss comparisons between configurations, and a summary —
rendered as markdown.  Everything here is a pure function of the
result records (each record carries its cell's parameters, so the
store alone suffices) and every ordering and float format is fixed, so
the same results always render byte-identical markdown: the golden
regression test and the chaos-resume drill both diff the bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def config_label(params: dict) -> str:
    """Canonical classifier-configuration label for one cell's params."""
    options = params.get("options") or {}
    if not options:
        return params["classifier"]
    opts = ",".join(f"{k}={options[k]}" for k in sorted(options))
    return f"{params['classifier']}({opts})"


@dataclass
class ConfigSummary:
    """One configuration's aggregate on one dataset."""

    config: str
    accuracies: list[float] = field(default_factory=list)
    errors: int = 0

    @property
    def n(self) -> int:
        return len(self.accuracies)

    @property
    def mean(self) -> float:
        return sum(self.accuracies) / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((a - m) ** 2 for a in self.accuracies)
                         / (self.n - 1))


def leaderboards(records: dict[str, dict]
                 ) -> dict[str, list[ConfigSummary]]:
    """Per-dataset leaderboards: configs ranked by mean accuracy.

    Ties break alphabetically by config label so rendering is
    deterministic.
    """
    by_dataset: dict[str, dict[str, ConfigSummary]] = {}
    for record in records.values():
        params = record.get("params") or {}
        result = record.get("result") or {}
        dataset = params.get("dataset", "?")
        label = config_label(params)
        summary = by_dataset.setdefault(dataset, {}).setdefault(
            label, ConfigSummary(config=label))
        if result.get("status") == "ok" and \
                result.get("accuracy") is not None:
            summary.accuracies.append(float(result["accuracy"]))
        else:
            summary.errors += 1
    return {
        dataset: sorted(summaries.values(),
                        key=lambda s: (-s.mean, s.config))
        for dataset, summaries in sorted(by_dataset.items())
    }


def paired_comparisons(records: dict[str, dict]
                       ) -> dict[str, list[tuple[str, str, int, int, int]]]:
    """Per-dataset paired win/loss/tie counts between configurations.

    Two configurations are compared seed-by-seed (a matched pair is
    the same dataset and seed), so the comparison controls for the
    fold draw.  Returns ``dataset → [(config_a, config_b, wins_a,
    wins_b, ties), ...]`` with ``config_a < config_b`` alphabetically.
    """
    # (dataset, config) -> {seed: accuracy}
    by_key: dict[tuple[str, str], dict[int, float]] = {}
    for record in records.values():
        params = record.get("params") or {}
        result = record.get("result") or {}
        if result.get("status") != "ok" or \
                result.get("accuracy") is None:
            continue
        key = (params.get("dataset", "?"), config_label(params))
        by_key.setdefault(key, {})[int(params.get("seed", 0))] = \
            float(result["accuracy"])

    datasets = sorted({dataset for dataset, _ in by_key})
    out: dict[str, list[tuple[str, str, int, int, int]]] = {}
    for dataset in datasets:
        configs = sorted(cfg for ds, cfg in by_key if ds == dataset)
        rows = []
        for i, a in enumerate(configs):
            for b in configs[i + 1:]:
                accs_a = by_key[(dataset, a)]
                accs_b = by_key[(dataset, b)]
                wins_a = wins_b = ties = 0
                for seed in sorted(set(accs_a) & set(accs_b)):
                    if accs_a[seed] > accs_b[seed]:
                        wins_a += 1
                    elif accs_b[seed] > accs_a[seed]:
                        wins_b += 1
                    else:
                        ties += 1
                rows.append((a, b, wins_a, wins_b, ties))
        out[dataset] = rows
    return out


def render_markdown(spec_name: str, records: dict[str, dict]) -> str:
    """The full experiment report as deterministic markdown."""
    lines = [f"# Experiment report: {spec_name}", ""]
    ok = sum(1 for r in records.values()
             if (r.get("result") or {}).get("status") == "ok")
    failed = len(records) - ok
    lines.append(f"{len(records)} cell(s): {ok} ok, {failed} failed.")
    lines.append("")

    boards = leaderboards(records)
    pairs = paired_comparisons(records)
    for dataset, summaries in boards.items():
        lines.append(f"## Dataset: {dataset}")
        lines.append("")
        lines.append("| rank | configuration | mean acc | std | runs "
                     "| errors |")
        lines.append("|---:|---|---:|---:|---:|---:|")
        for rank, s in enumerate(summaries, start=1):
            lines.append(
                f"| {rank} | {s.config} | {s.mean:.4f} | "
                f"{s.std:.4f} | {s.n} | {s.errors} |")
        lines.append("")
        rows = pairs.get(dataset, [])
        if rows:
            lines.append("### Paired comparisons (win/loss/tie by seed)")
            lines.append("")
            lines.append("| A | B | A wins | B wins | ties |")
            lines.append("|---|---|---:|---:|---:|")
            for a, b, wins_a, wins_b, ties in rows:
                lines.append(f"| {a} | {b} | {wins_a} | {wins_b} | "
                             f"{ties} |")
            lines.append("")

    failures = sorted(
        (record["cell"], (record.get("result") or {}).get("error", ""))
        for record in records.values()
        if (record.get("result") or {}).get("status") == "error")
    if failures:
        lines.append("## Failed cells")
        lines.append("")
        for cell_id, error in failures:
            lines.append(f"- `{cell_id}`: {error}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
