"""Declarative experiment specs: the FlexDM-style grid description.

FlexDM (PAPERS.md: "Enabling robust and reliable parallel data mining
using WEKA") drives thousands of WEKA runs from one declarative XML
file.  This module is that front door for the toolkit: an
:class:`ExperimentSpec` names datasets, classifier configurations
(with per-option *value grids*), fold counts and seeds, and
:mod:`repro.experiment.expand` turns it into the deterministic
{dataset × classifier × options × seed} cell grid.

Two on-disk formats parse to the *same* spec — and therefore to
byte-identical cell IDs (a property test pins this):

JSON::

    {"name": "demo", "folds": 5, "seeds": [1, 2],
     "datasets": [{"name": "bc", "source": "synthetic:breast_cancer"}],
     "classifiers": ["NaiveBayes",
                     {"name": "J48", "options": {"min_obj": [2, 5]}}]}

XML::

    <experiment name="demo" folds="5" seeds="1,2">
      <dataset name="bc" source="synthetic:breast_cancer"/>
      <classifier name="NaiveBayes"/>
      <classifier name="J48">
        <option name="min_obj" values="2,5"/>
      </classifier>
    </experiment>

XML attribute values carry no types, so option values are coerced with
:func:`coerce_value` (int, then float, then ``true``/``false``, else
string).  JSON specs whose option values already have those types
expand to identical grids.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro.errors import ReproError


class SpecError(ReproError):
    """An experiment spec could not be parsed or validated."""


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset axis entry.

    *source* is either ``synthetic:<generator>`` (optionally with
    ``?key=value`` arguments, e.g. ``synthetic:numeric_two_class?n=60``)
    naming a :mod:`repro.data.synthetic` generator, or a filesystem path
    to an ARFF/CSV file.
    """

    name: str
    source: str
    class_attribute: str | None = None


@dataclass(frozen=True)
class ClassifierSpec:
    """One classifier axis entry: a catalogue name + option value grid.

    ``options`` maps option name → tuple of candidate values; the
    expansion takes the cross product over every option's values, so
    ``{"min_obj": (2, 5), "unpruned": (True,)}`` yields two
    configurations.
    """

    name: str
    options: tuple[tuple[str, tuple], ...] = ()

    def option_axes(self) -> list[tuple[str, tuple]]:
        """Option axes sorted by name — expansion order is canonical."""
        return sorted(self.options)


@dataclass
class ExperimentSpec:
    """The full declarative grid description."""

    name: str
    datasets: list[DatasetSpec] = field(default_factory=list)
    classifiers: list[ClassifierSpec] = field(default_factory=list)
    folds: int = 10
    seeds: tuple[int, ...] = (1,)

    def validate(self) -> "ExperimentSpec":
        """Check structural invariants; returns self for chaining."""
        if not self.name:
            raise SpecError("experiment needs a name")
        if not self.datasets:
            raise SpecError("experiment needs at least one dataset")
        if not self.classifiers:
            raise SpecError("experiment needs at least one classifier")
        if self.folds < 2:
            raise SpecError("folds must be >= 2")
        if not self.seeds:
            raise SpecError("experiment needs at least one seed")
        names = [d.name for d in self.datasets]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate dataset names in {names}")
        return self


def coerce_value(text: str):
    """XML attribute → typed value: int, float, bool, else string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text == "true":
        return True
    if text == "false":
        return False
    return text


def _as_value_tuple(value) -> tuple:
    """An option's JSON value: a list is a grid axis, a scalar is a
    single-value axis."""
    if isinstance(value, (list, tuple)):
        if not value:
            raise SpecError("an option value grid cannot be empty")
        return tuple(value)
    return (value,)


def _classifier_from_json(entry) -> ClassifierSpec:
    if isinstance(entry, str):
        return ClassifierSpec(name=entry)
    if not isinstance(entry, dict) or "name" not in entry:
        raise SpecError(f"bad classifier entry {entry!r} "
                        f"(want a name or {{'name': ..., 'options': ...}})")
    options = entry.get("options") or {}
    if not isinstance(options, dict):
        raise SpecError(f"classifier options must be an object, "
                        f"got {options!r}")
    axes = tuple(sorted(((str(k), _as_value_tuple(v))
                         for k, v in options.items()),
                        key=lambda axis: axis[0]))
    return ClassifierSpec(name=str(entry["name"]), options=axes)


def load_json(text: str) -> ExperimentSpec:
    """Parse a JSON experiment spec."""
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise SpecError(f"invalid JSON spec: {exc}")
    if not isinstance(doc, dict):
        raise SpecError("a JSON spec must be an object")
    datasets = []
    for entry in doc.get("datasets", []):
        if isinstance(entry, str):
            datasets.append(DatasetSpec(name=entry, source=entry))
            continue
        if not isinstance(entry, dict) or "name" not in entry \
                or "source" not in entry:
            raise SpecError(f"bad dataset entry {entry!r} "
                            f"(want {{'name': ..., 'source': ...}})")
        datasets.append(DatasetSpec(
            name=str(entry["name"]), source=str(entry["source"]),
            class_attribute=entry.get("class_attribute")))
    classifiers = [_classifier_from_json(c)
                   for c in doc.get("classifiers", [])]
    seeds = doc.get("seeds", [1])
    if isinstance(seeds, int):
        seeds = [seeds]
    return ExperimentSpec(
        name=str(doc.get("name", "")),
        datasets=datasets, classifiers=classifiers,
        folds=int(doc.get("folds", 10)),
        seeds=tuple(int(s) for s in seeds)).validate()


def load_xml(text: str) -> ExperimentSpec:
    """Parse an XML experiment spec (FlexDM-style)."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SpecError(f"invalid XML spec: {exc}")
    if root.tag != "experiment":
        raise SpecError(f"root element must be <experiment>, "
                        f"got <{root.tag}>")
    datasets = []
    for node in root.findall("dataset"):
        name = node.get("name")
        source = node.get("source")
        if not name or not source:
            raise SpecError("<dataset> needs name= and source=")
        datasets.append(DatasetSpec(
            name=name, source=source,
            class_attribute=node.get("class")))
    classifiers = []
    for node in root.findall("classifier"):
        name = node.get("name")
        if not name:
            raise SpecError("<classifier> needs name=")
        axes = []
        for opt in node.findall("option"):
            oname = opt.get("name")
            values = opt.get("values", opt.get("value"))
            if not oname or values is None:
                raise SpecError("<option> needs name= and values=")
            axes.append((oname, tuple(coerce_value(v.strip())
                                      for v in values.split(","))))
        classifiers.append(ClassifierSpec(
            name=name,
            options=tuple(sorted(axes, key=lambda axis: axis[0]))))
    seeds_text = root.get("seeds", "1")
    seeds = tuple(int(s) for s in seeds_text.split(","))
    return ExperimentSpec(
        name=root.get("name", ""), datasets=datasets,
        classifiers=classifiers, folds=int(root.get("folds", "10")),
        seeds=seeds).validate()


def loads(text: str) -> ExperimentSpec:
    """Parse a spec, sniffing JSON vs XML from the first character."""
    stripped = text.lstrip()
    if not stripped:
        raise SpecError("empty experiment spec")
    if stripped.startswith("<"):
        return load_xml(text)
    return load_json(text)


def dumps_json(spec: ExperimentSpec) -> str:
    """Render a spec back to its canonical JSON form."""
    return json.dumps({
        "name": spec.name,
        "folds": spec.folds,
        "seeds": list(spec.seeds),
        "datasets": [
            {"name": d.name, "source": d.source,
             **({"class_attribute": d.class_attribute}
                if d.class_attribute else {})}
            for d in spec.datasets],
        "classifiers": [
            {"name": c.name,
             "options": {name: list(values)
                         for name, values in c.options}}
            for c in spec.classifiers],
    }, indent=2)


def dumps_xml(spec: ExperimentSpec) -> str:
    """Render a spec to the equivalent XML form.

    Round-trip caveat: XML attributes are untyped, so option values are
    rendered with ``repr``-free ``str`` and re-read through
    :func:`coerce_value` — values whose string form coerces to a
    different type (the string ``"2"``, say) do not survive.  The
    property suite restricts itself accordingly.
    """
    root = ET.Element("experiment", {
        "name": spec.name, "folds": str(spec.folds),
        "seeds": ",".join(str(s) for s in spec.seeds)})
    for d in spec.datasets:
        attrs = {"name": d.name, "source": d.source}
        if d.class_attribute:
            attrs["class"] = d.class_attribute
        ET.SubElement(root, "dataset", attrs)
    for c in spec.classifiers:
        node = ET.SubElement(root, "classifier", {"name": c.name})
        for name, values in c.options:
            ET.SubElement(node, "option", {
                "name": name,
                "values": ",".join(_xml_value(v) for v in values)})
    return ET.tostring(root, encoding="unicode")


def _xml_value(value) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)
