"""The grid runner: execute cells over scatter-gather, checkpoint each.

Ties the subsystem together: expand the spec, replay the checkpoint
store, skip every cell already completed, and scatter the remainder
across replica Classifier endpoints with the PR-5
:class:`~repro.ws.scatter.ScatterGather` engine — EWMA-sized chunks,
migration off dead replicas, and PR-6 admission backpressure
(:class:`~repro.errors.OverloadedError` sheds re-queue the chunk and
back off rather than losing or duplicating work).

Crash safety is the per-chunk completion callback: every finished
chunk's cells are fsync'd into the :class:`~repro.experiment.store
.ResultStore` *before* the scatter plane hands out more work, so a
SIGKILL at any instant loses at most the chunks in flight — never a
completed cell — and the next run resumes exactly where this one died.

Fault taxonomy (what resumes vs what records):

* :class:`~repro.errors.TransportError` (dead replica, chaos
  drop/error/blackhole) — the chunk migrates to survivors; nothing is
  recorded until a replica genuinely finishes it.
* :class:`~repro.errors.OverloadedError` — backpressure, handled by
  the scatter plane.
* any other :class:`~repro.errors.ServiceError` (bad option, dataset
  the algorithm cannot learn) — deterministic application failure:
  checkpointed as a ``status: "error"`` record so the grid keeps
  going and the resume never re-runs a cell that can only fail again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.data import arff, synthetic
from repro.data.dataset import Dataset
from repro.errors import ServiceError, TransportError, WorkflowError
from repro.experiment.expand import Cell, expand
from repro.experiment.spec import ExperimentSpec, SpecError
from repro.experiment.store import ResultStore
from repro.obs import get_metrics, get_tracer
from repro.services import grid
from repro.services.classifier_service import ClassifierService
from repro.ws import wsdl
from repro.ws.client import ServiceProxy
from repro.ws.container import ServiceContainer
from repro.ws.scatter import ScatterGather, resolve_endpoints
from repro.ws.service import ServiceDefinition
from repro.ws.transport import InProcessTransport

#: Result-payload keys checkpointed per cell.  Deliberately excludes
#: anything timing- or host-dependent so an interrupted-then-resumed
#: grid is byte-identical to an uninterrupted one.
RESULT_KEYS = ("accuracy", "kappa")


@dataclass
class RunReport:
    """What one runner invocation did (and what the store now holds)."""

    spec_name: str
    total: int
    skipped: list[str] = field(default_factory=list)
    executed: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    results: dict[str, dict] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def summary_line(self) -> str:
        """The deterministic one-line progress summary the CLI prints
        (and the resume drill parses)."""
        return (f"cells: {self.total} total, {len(self.skipped)} "
                f"resumed, {len(self.executed)} executed, "
                f"{len(self.failed)} failed")


def load_dataset(source: str,
                 class_attribute: str | None = None) -> Dataset:
    """Materialise a dataset from a spec ``source``.

    ``synthetic:<generator>[?k=v[&k=v]...]`` calls the named
    :mod:`repro.data.synthetic` generator (int/float args coerced);
    anything else is an ARFF/CSV path.
    """
    if source.startswith("synthetic:"):
        name, _, query = source[len("synthetic:"):].partition("?")
        generator = getattr(synthetic, name, None)
        if generator is None or not callable(generator):
            raise SpecError(f"unknown synthetic generator {name!r}")
        kwargs = {}
        if query:
            for pair in query.split("&"):
                key, sep, value = pair.partition("=")
                if not sep:
                    raise SpecError(
                        f"bad synthetic argument {pair!r} in {source!r}")
                from repro.experiment.spec import coerce_value
                kwargs[key] = coerce_value(value)
        ds = generator(**kwargs)
    else:
        from repro.data import converters
        text = Path(source).read_text()
        fmt = "csv" if source.lower().endswith(".csv") else "arff"
        ds = converters.parse(text, fmt, class_attribute)
    if class_attribute is not None:
        ds.set_class(class_attribute)
    return ds


def make_replicas(n: int, *, chaos_controller=None,
                  admission=None) -> list[ServiceProxy]:
    """Build *n* in-process Classifier replicas, one container each.

    With *chaos_controller* armed, each replica's transport is wrapped
    in a :class:`~repro.chaos.ChaosTransport` targeting
    ``replica-<i>`` so seeded fault plans can scope per replica
    (``replica-0:error=1;*:delay=5ms``).  *admission* (an
    :class:`~repro.ws.admission.AdmissionController`) attaches PR-6
    admission control to every replica container.
    """
    if n < 1:
        raise WorkflowError("need at least one replica")
    definition = ServiceDefinition.from_class(ClassifierService,
                                              "Classifier")
    document = wsdl.generate(definition, "inproc://Classifier")
    proxies = []
    for i in range(n):
        container = ServiceContainer(f"replica-{i}", admission=admission)
        container.deploy(ClassifierService, "Classifier")
        transport = InProcessTransport(container)
        if chaos_controller is not None:
            from repro.chaos import ChaosTransport
            transport = ChaosTransport(transport, chaos_controller,
                                       endpoint=f"replica-{i}")
        proxies.append(ServiceProxy.from_wsdl_text(document, transport))
    return proxies


def _execute_cell(proxy: ServiceProxy, cell: Cell,
                  dataset_doc: str, attribute: str) -> dict:
    """Run one cell on one replica; returns its result payload."""
    try:
        out = proxy.call(
            "crossValidate", classifier=cell.classifier,
            dataset=dataset_doc, attribute=attribute,
            folds=cell.folds, options=dict(cell.options),
            seed=cell.seed)
    except TransportError:
        raise  # replica death / chaos: migrate, do not record
    except ServiceError as exc:
        # deterministic application failure: completing it as an error
        # record beats poisoning every replica with a doomed retry
        return {"status": "error",
                "error": f"{type(exc).__name__}: {exc}"}
    payload = {key: out.get(key) for key in RESULT_KEYS}
    payload["status"] = "ok"
    return payload


def run_grid(spec: ExperimentSpec, store: ResultStore | str | Path, *,
             proxies: Sequence[ServiceProxy] | None = None,
             replicas: int = 2, chaos_controller=None, admission=None,
             cells_per_dispatch: int = 1) -> RunReport:
    """Run (or resume) *spec*'s grid, checkpointing into *store*.

    Completed cells found in the store are skipped; the rest execute
    over *proxies* (or *replicas* fresh in-process endpoints).
    *proxies* also accepts a mesh endpoint source — an object with a
    ``proxies()`` method, e.g. ``MeshHost.source_for("Classifier")`` —
    resolved to the live replica set when the run starts.  Every
    finished chunk is fsync'd into the store via the scatter plane's
    per-chunk completion callback before more work is taken, so the
    run is resumable after SIGKILL at any point.

    *cells_per_dispatch* is both the initial and the maximum scatter
    chunk size (the EWMA sizing is not allowed to grow chunks).  At
    the default of 1 a chunk *is* a cell, which is what makes
    execution effectively exactly-once: a replica that dies mid-chunk
    can only lose (and migrate) work that was never checkpointed.
    Larger values trade that for fewer dispatches — a chunk that
    fails after completing some of its cells re-executes them on a
    survivor (at-least-once; the store's last-write-wins replay keeps
    results consistent).
    """
    started = time.perf_counter()
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    cells = expand(spec)
    metrics = get_metrics()
    metrics.counter("repro.experiment.cells.total").inc(len(cells))

    checkpointed = store.replay()
    todo = [c for c in cells if c.cell_id not in checkpointed]
    skipped = [c.cell_id for c in cells if c.cell_id in checkpointed]
    metrics.counter("repro.experiment.cells.resumed").inc(len(skipped))

    report = RunReport(spec_name=spec.name, total=len(cells),
                       skipped=skipped)
    for cell_id, record in checkpointed.items():
        report.results[cell_id] = record
        if record.get("result", {}).get("status") == "error":
            report.failed[cell_id] = \
                record["result"].get("error", "error")

    tracer = get_tracer()
    with tracer.span("experiment:run",
                     {"spec": spec.name, "cells": len(cells),
                      "resumed": len(skipped)}) as root_span:
        if todo:
            own_proxies = proxies is None
            if own_proxies:
                proxies = make_replicas(
                    replicas, chaos_controller=chaos_controller,
                    admission=admission)
            else:
                # a static proxy list passes through; a mesh endpoint
                # source resolves to the currently-live replica set
                proxies = resolve_endpoints(proxies)
            try:
                _run_cells(spec, todo, list(proxies), store, report,
                           root_span,
                           cells_per_dispatch=cells_per_dispatch)
            finally:
                store.close()
                if own_proxies:
                    for proxy in proxies:
                        proxy.close()
        else:
            store.close()
        root_span.set_attribute("executed", len(report.executed))
        root_span.set_attribute("failed", len(report.failed))
    report.wall_seconds = time.perf_counter() - started
    return report


def _run_cells(spec: ExperimentSpec, todo: list[Cell],
               proxies: list[ServiceProxy], store: ResultStore,
               report: RunReport, root_span, *,
               cells_per_dispatch: int) -> None:
    # materialise each dataset exactly once; serialisation is deferred
    # to dispatch time so each replica gets the richest codec it speaks
    # (binary columnar frame vs ARFF text), memoised per format
    datasets: dict[str, tuple[Dataset, str]] = {}
    for ds_spec in spec.datasets:
        ds = load_dataset(ds_spec.source, ds_spec.class_attribute)
        attribute = ds_spec.class_attribute or ds.class_attribute.name
        datasets[ds_spec.name] = (ds, attribute)
    doc_memo: dict = {}

    metrics = get_metrics()
    tracer = get_tracer()
    grid_span = root_span if root_span.recording else None

    def dispatch(endpoint: int, chunk_cells: list[Cell],
                 indices: list[int]) -> list[dict]:
        out = []
        for cell in chunk_cells:
            ds, attribute = datasets[cell.dataset]
            dataset_doc = grid._negotiated_doc(ds, proxies[endpoint],
                                               doc_memo)
            # worker threads don't inherit contextvars: parent the
            # per-cell span on the run's root span explicitly
            with tracer.span("experiment:cell",
                             {"cell": cell.cell_id,
                              "dataset": cell.dataset,
                              "config": cell.config,
                              "replica": endpoint},
                             parent=grid_span):
                out.append(_execute_cell(proxies[endpoint], cell,
                                         dataset_doc, attribute))
        return out

    def on_chunk(endpoint: int, indices: list[int],
                 results: list[dict]) -> None:
        # the checkpoint: runs as soon as this chunk completes, while
        # other replicas keep executing — a crash after this point
        # never re-runs these cells
        for position, payload in zip(indices, results):
            cell = todo[position]
            store.append({"cell": cell.cell_id,
                          "params": cell.params(),
                          "result": payload})
            report.executed.append(cell.cell_id)
            report.results[cell.cell_id] = {
                "cell": cell.cell_id, "params": cell.params(),
                "result": payload}
            metrics.counter("repro.experiment.cells.executed").inc()
            if payload.get("status") == "error":
                report.failed[cell.cell_id] = payload.get("error", "")
                metrics.counter("repro.experiment.cells.failed").inc()

    # pin max_chunk == chunk: the EWMA sizing must never grow a chunk
    # past what the caller asked for, or a mid-chunk death would lose
    # (and re-execute) cells that had already completed inside it
    sg = ScatterGather(len(proxies), chunk=cells_per_dispatch,
                       min_chunk=1, max_chunk=cells_per_dispatch,
                       name="experiment")
    sg.run(todo, dispatch, on_chunk=on_chunk)
