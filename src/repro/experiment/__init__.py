"""FlexDM-style declarative experiment grids with checkpoint/resume.

The paper composes mining services into single workflows; this package
is the *scale* story on top of them (ROADMAP item 3, grounded in
PAPERS.md FlexDM): a declarative {datasets × classifiers × options ×
seeds} spec expands into a deterministic job grid whose cells execute
over the PR-5 scatter-gather plane, checkpoint into an append-only
fsync'd JSONL store as each chunk completes, and resume exactly where
a crash — SIGKILL included — left off.

* :mod:`repro.experiment.spec` — the JSON/XML spec grammar.
* :mod:`repro.experiment.expand` — spec → cells with content-digest IDs.
* :mod:`repro.experiment.store` — the crash-safe results store.
* :mod:`repro.experiment.runner` — scatter execution + resume.
* :mod:`repro.experiment.report` — leaderboards, paired comparisons,
  markdown rendering.

Metrics ride the PR-1 spine under ``repro.experiment.*``:
``cells.total`` / ``cells.resumed`` / ``cells.executed`` /
``cells.failed`` and ``store.appends`` / ``store.replayed`` /
``store.dropped{reason}``.
"""

from repro.experiment.expand import Cell, canonical_json, expand
from repro.experiment.report import (config_label, leaderboards,
                                     paired_comparisons, render_markdown)
from repro.experiment.runner import (RunReport, load_dataset,
                                     make_replicas, run_grid)
from repro.experiment.spec import (ClassifierSpec, DatasetSpec,
                                   ExperimentSpec, SpecError, dumps_json,
                                   dumps_xml, load_json, load_xml, loads)
from repro.experiment.store import ResultStore, StoreError

__all__ = [
    "Cell", "canonical_json", "expand",
    "config_label", "leaderboards", "paired_comparisons",
    "render_markdown",
    "RunReport", "load_dataset", "make_replicas", "run_grid",
    "ClassifierSpec", "DatasetSpec", "ExperimentSpec", "SpecError",
    "dumps_json", "dumps_xml", "load_json", "load_xml", "loads",
    "ResultStore", "StoreError",
]
