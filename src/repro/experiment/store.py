"""Append-only JSONL results store: the grid's crash-safe checkpoint.

Every completed cell becomes one JSON line, written whole and
``fsync``'d before the runner takes more work — after a SIGKILL the
file holds every result the process durably finished, plus at most one
torn final line.  Replay is therefore *tolerant by contract*:

* a truncated final record (torn write at the kill point) is dropped;
* a garbage line anywhere (corruption, editor accident) is skipped;
* a duplicate cell record (two runs raced, or a cell re-ran after its
  first record was torn) resolves last-write-wins.

Each tolerated anomaly increments
``repro.experiment.store.dropped{reason=...}`` and logs a warning, so
"the store self-healed" is observable, never silent.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from repro.errors import ReproError
from repro.obs import get_metrics

log = logging.getLogger(__name__)


class StoreError(ReproError):
    """The results store could not be opened or written."""


class ResultStore:
    """One experiment's append-only JSONL checkpoint file.

    ``append`` writes a complete line (single ``write`` call, flush,
    ``os.fsync``) so a record is either durably whole or recognisably
    torn; ``replay`` reads the survivors back as ``cell_id → record``.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._fh = None

    # -- writing -----------------------------------------------------------
    def _handle(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: dict) -> None:
        """Durably append one result record (a dict with a ``cell`` id)."""
        if "cell" not in record:
            raise StoreError("a result record needs a 'cell' id")
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        fh = self._handle()
        fh.write(line)
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        get_metrics().counter("repro.experiment.store.appends").inc()

    def close(self) -> None:
        """Close the append handle (reopened lazily on the next append)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay ------------------------------------------------------------
    def replay(self) -> dict[str, dict]:
        """Read the store back; returns ``cell_id → record``.

        Tolerates a torn final line, garbage lines, and duplicate cell
        records (last-write-wins), counting each drop under
        ``repro.experiment.store.dropped{reason=...}``.
        """
        if not self.path.exists():
            return {}
        metrics = get_metrics()
        records: dict[str, dict] = {}
        raw_lines = self.path.read_text(encoding="utf-8").splitlines()
        last = len(raw_lines) - 1
        for lineno, line in enumerate(raw_lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                reason = "truncated" if lineno == last else "garbage"
                metrics.counter("repro.experiment.store.dropped",
                                reason=reason).inc()
                log.warning("results store %s line %d dropped (%s)",
                            self.path, lineno + 1, reason)
                continue
            if not isinstance(record, dict) or "cell" not in record:
                metrics.counter("repro.experiment.store.dropped",
                                reason="garbage").inc()
                log.warning("results store %s line %d dropped (no "
                            "cell id)", self.path, lineno + 1)
                continue
            cell = str(record["cell"])
            if cell in records:
                metrics.counter("repro.experiment.store.dropped",
                                reason="duplicate").inc()
                log.warning("results store %s line %d supersedes an "
                            "earlier record for cell %s "
                            "(last-write-wins)",
                            self.path, lineno + 1, cell)
            records[cell] = record
            metrics.counter("repro.experiment.store.replayed").inc()
        return records

    def raw_record_counts(self) -> dict[str, int]:
        """Complete records per cell id, duplicates included.

        The chaos-resume drill's per-cell execution counter: every
        durably completed execution left exactly one whole line, so a
        cell whose count exceeds one was executed (and checkpointed)
        more than once.
        """
        counts: dict[str, int] = {}
        if not self.path.exists():
            return counts
        for line in self.path.read_text(encoding="utf-8").splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "cell" in record:
                cell = str(record["cell"])
                counts[cell] = counts.get(cell, 0) + 1
        return counts
