"""Deterministic grid expansion: spec → ordered list of cells.

A *cell* is one {dataset × classifier × options × seed} job.  Its
identity is a content digest of the cell's parameters — not its
position in the grid — so IDs survive spec reordering, added axes, and
the JSON↔XML round trip, which is what makes the checkpoint store's
"skip what's already done" resume exact rather than positional.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass

from repro.experiment.spec import ExperimentSpec

#: Hex digits of SHA-256 kept as the cell ID; 16 (64 bits) keeps
#: collision odds negligible at any plausible grid size.
CELL_ID_HEX = 16


def canonical_json(value) -> str:
    """The canonical serialisation cell digests are computed over:
    sorted keys, no whitespace, no NaN."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


@dataclass(frozen=True)
class Cell:
    """One grid job, identified by a digest of its parameters."""

    dataset: str
    source: str
    class_attribute: str | None
    classifier: str
    options: tuple[tuple[str, object], ...]  # name-sorted pairs
    seed: int
    folds: int

    def params(self) -> dict:
        """The digest-covered parameter record (also stored with each
        checkpointed result so reports need only the store)."""
        return {
            "dataset": self.dataset,
            "source": self.source,
            "class_attribute": self.class_attribute,
            "classifier": self.classifier,
            "options": dict(self.options),
            "seed": self.seed,
            "folds": self.folds,
        }

    @property
    def cell_id(self) -> str:
        digest = hashlib.sha256(
            canonical_json(self.params()).encode("utf-8")).hexdigest()
        return digest[:CELL_ID_HEX]

    @property
    def config(self) -> str:
        """Human-readable classifier configuration label."""
        if not self.options:
            return self.classifier
        opts = ",".join(f"{k}={v}" for k, v in self.options)
        return f"{self.classifier}({opts})"


def expand(spec: ExperimentSpec) -> list[Cell]:
    """Expand *spec* into its cell grid, in canonical order.

    Order is datasets → classifiers → option cross-product (axes
    sorted by option name, values in listed order) → seeds.  The order
    only affects scheduling; identity is the content digest, so two
    specs describing the same grid in different orders checkpoint and
    resume each other's stores.
    """
    cells: list[Cell] = []
    for ds in spec.datasets:
        for clf in spec.classifiers:
            axes = clf.option_axes()
            names = [name for name, _ in axes]
            value_grids = [values for _, values in axes]
            for combo in itertools.product(*value_grids):
                options = tuple(zip(names, combo))
                for seed in spec.seeds:
                    cells.append(Cell(
                        dataset=ds.name, source=ds.source,
                        class_attribute=ds.class_attribute,
                        classifier=clf.name, options=options,
                        seed=seed, folds=spec.folds))
    ids = [c.cell_id for c in cells]
    if len(set(ids)) != len(ids):
        seen: set[str] = set()
        for cell, cid in zip(cells, ids):
            if cid in seen:
                from repro.experiment.spec import SpecError
                raise SpecError(
                    f"duplicate grid cell {cell.config} on "
                    f"{cell.dataset} (seed {cell.seed}) — the spec "
                    f"lists the same configuration twice")
            seen.add(cid)
    return cells
