"""Injectable time source shared by the resilience primitives.

Deadlines (:mod:`repro.ws.deadline`), retry backoff
(:mod:`repro.workflow.faults`), circuit-breaker cooldowns
(:mod:`repro.ws.breaker`) and the chaos harness (:mod:`repro.chaos`) all
need *time* — but tests of those behaviours must not wall-sleep.  A
:class:`Clock` bundles ``monotonic()`` + ``sleep()`` behind one interface:
production code uses the process-wide :data:`SYSTEM_CLOCK`, tests pass a
:class:`FakeClock` whose ``sleep`` merely advances a counter.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """A monotonic time source with a matching sleep."""

    def monotonic(self) -> float:
        """Seconds on a monotonically increasing clock."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for *seconds* (no-op for non-positive values)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real thing: ``time.monotonic`` + ``time.sleep``."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A virtual clock for tests: sleeping advances it instantly.

    Thread-safe, since retry/breaker/chaos code sleeps from worker
    threads.  ``advance()`` lets a test move time forward explicitly
    (e.g. past a breaker cooldown) without any code path sleeping.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self._lock = threading.Lock()
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self.sleeps.append(seconds)
            if seconds > 0:
                self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move the clock forward without recording a sleep."""
        with self._lock:
            self._now += seconds


#: Shared default used wherever a clock is injectable.
SYSTEM_CLOCK = SystemClock()
