"""Base classes and registries for the algorithm library.

The paper wraps "approximately 75 different algorithms, primarily classifiers,
clustering algorithms and association rules" behind three service families.
Each algorithm here subclasses :class:`Classifier`, :class:`Clusterer` or
:class:`AssociationLearner`; a module-level registry maps public names to
classes so the services can implement ``getClassifiers`` / ``getOptions`` by
introspection alone.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Type

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError, NotFittedError, OptionError
from repro.ml.options import OptionSpec, resolve_options


class _Configurable:
    """Shared option plumbing: subclasses declare ``OPTIONS``."""

    OPTIONS: tuple[OptionSpec, ...] = ()

    def __init__(self, **options: Any):
        self.options = resolve_options(self.OPTIONS, options)

    def opt(self, name: str) -> Any:
        """Value of option *name* (validated, default-filled)."""
        try:
            return self.options[name]
        except KeyError:
            raise OptionError(
                f"{type(self).__name__} has no option {name!r}") from None

    @classmethod
    def describe_options(cls) -> list[dict[str, Any]]:
        """The ``getOptions`` payload for this algorithm."""
        return [spec.describe() for spec in cls.OPTIONS]


class Classifier(_Configurable):
    """A supervised learner over a dataset with a nominal class attribute.

    Lifecycle: construct with options → :meth:`fit` → :meth:`distribution` /
    :meth:`predict_instance` / :meth:`predict`.  ``to_text()`` renders the
    model the way the paper's services return "a textual output specifying
    the classification decision tree".
    """

    def __init__(self, **options: Any):
        super().__init__(**options)
        self._header: Dataset | None = None

    # -- to be provided by subclasses ---------------------------------------
    def _fit(self, dataset: Dataset) -> None:
        raise NotImplementedError

    def _distribution(self, instance: Instance) -> np.ndarray:
        raise NotImplementedError

    def model_text(self) -> str:
        """Subclass hook: human-readable model body."""
        return f"{type(self).__name__} (no textual form)"

    # -- template methods ------------------------------------------------------
    def fit(self, dataset: Dataset) -> "Classifier":
        """Train on *dataset* (must have a nominal class attribute)."""
        if not dataset.has_class:
            raise DataError("training data has no class attribute set")
        if not dataset.class_attribute.is_nominal:
            raise DataError("this library's classifiers need a nominal class")
        if dataset.num_instances == 0:
            raise DataError("cannot train on an empty dataset")
        self._header = dataset.copy_header()
        self._fit(dataset)
        return self

    @property
    def header(self) -> Dataset:
        """Schema the model was trained against."""
        if self._header is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        return self._header

    @property
    def is_fitted(self) -> bool:
        return self._header is not None

    def distribution(self, instance: Instance) -> np.ndarray:
        """Per-class probability vector for *instance*."""
        if self._header is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        dist = np.asarray(self._distribution(instance), dtype=float)
        total = dist.sum()
        if not math.isfinite(total) or total <= 0:
            # degenerate model output: fall back to uniform
            return np.full(self.header.num_classes,
                           1.0 / self.header.num_classes)
        return dist / total

    def distribution_many(self, dataset: Dataset,
                          indices: Iterable[int] | None = None
                          ) -> np.ndarray:
        """Per-class probability matrix for many rows of *dataset*.

        Scores the rows named by *indices* (all rows when ``None``) and
        returns a ``(n_rows, n_classes)`` row-stochastic matrix in input
        order.  Models that provide a ``_distribution_many(matrix)``
        hook (a single numpy pass over a ``(n, m)`` value matrix with
        NaN as missing) are vectorized; the rest fall back to a per-row
        :meth:`_distribution` loop.  Row normalization matches
        :meth:`distribution` exactly, uniform fallback included.
        """
        if self._header is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        n_classes = self.header.num_classes
        hook = getattr(self, "_distribution_many", None)
        if hook is not None:
            # the columnar store hands the full matrix out zero-copy;
            # an index selection is one numpy gather, never a row loop
            matrix = dataset.to_matrix()
            if indices is not None:
                matrix = matrix[np.fromiter((int(i) for i in indices),
                                            dtype=np.intp)]
            if matrix.shape[0] == 0:
                return np.empty((0, n_classes))
            raw = np.asarray(hook(matrix), dtype=float)
        else:
            if indices is None:
                instances = list(dataset)
            else:
                instances = [dataset[int(i)] for i in indices]
            if not instances:
                return np.empty((0, n_classes))
            raw = np.vstack([np.asarray(self._distribution(inst),
                                        dtype=float)
                             for inst in instances])
        totals = raw.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = raw / totals
        degenerate = ~np.isfinite(totals[:, 0]) | (totals[:, 0] <= 0)
        out[degenerate] = 1.0 / n_classes
        return out

    def predict_instance(self, instance: Instance) -> int:
        """Predicted class index for *instance*."""
        return int(np.argmax(self.distribution(instance)))

    def predict_label(self, instance: Instance) -> str:
        """Predicted class label for *instance*."""
        return self.header.class_attribute.values[
            self.predict_instance(instance)]

    def predict(self, dataset: Dataset) -> list[int]:
        """Predicted class indices for every row of *dataset*."""
        return [self.predict_instance(inst) for inst in dataset]

    def predict_many(self, dataset: Dataset,
                     indices: Iterable[int] | None = None) -> list[int]:
        """Predicted class indices for many rows, vectorized where the
        model allows (see :meth:`distribution_many`)."""
        dists = self.distribution_many(dataset, indices)
        return [int(i) for i in np.argmax(dists, axis=1)]

    def to_text(self) -> str:
        """Full textual model report (service ``classify`` output)."""
        if self._header is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        head = (f"=== {type(self).__name__} model ===\n"
                f"Relation: {self.header.relation}\n"
                f"Class:    {self.header.class_attribute.name}\n")
        return head + "\n" + self.model_text() + "\n"


class IncrementalClassifier(Classifier):
    """A classifier that can also learn instance-by-instance (streaming)."""

    def begin(self, header: Dataset) -> None:
        """Initialise from a schema-only dataset before streaming updates."""
        if not header.has_class or not header.class_attribute.is_nominal:
            raise DataError("streaming header needs a nominal class")
        self._header = header.copy_header()
        self._begin()

    def _begin(self) -> None:
        raise NotImplementedError

    def update(self, instance: Instance) -> None:
        """Absorb one labelled instance."""
        if self._header is None:
            raise NotFittedError("call begin() or fit() before update()")
        self._update(instance)

    def _update(self, instance: Instance) -> None:
        raise NotImplementedError

    def _fit(self, dataset: Dataset) -> None:
        self._begin()
        for inst in dataset:
            self._update(inst)


class Clusterer(_Configurable):
    """An unsupervised learner assigning instances to clusters."""

    def __init__(self, **options: Any):
        super().__init__(**options)
        self._header: Dataset | None = None

    def _fit(self, dataset: Dataset) -> None:
        raise NotImplementedError

    def _cluster(self, instance: Instance) -> int:
        raise NotImplementedError

    @property
    def n_clusters(self) -> int:
        raise NotImplementedError

    def fit(self, dataset: Dataset) -> "Clusterer":
        """Fit the model to *dataset*; returns ``self``."""
        if dataset.num_instances == 0:
            raise DataError("cannot cluster an empty dataset")
        self._header = dataset.copy_header()
        self._fit(dataset)
        return self

    @property
    def header(self) -> Dataset:
        if self._header is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        return self._header

    def cluster_instance(self, instance: Instance) -> int:
        """Cluster index assigned to *instance*."""
        if self._header is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        return int(self._cluster(instance))

    def assign(self, dataset: Dataset) -> list[int]:
        """Cluster index per row of *dataset*."""
        return self.assign_many(dataset)

    def assign_many(self, dataset: Dataset,
                    indices: Iterable[int] | None = None) -> list[int]:
        """Cluster index for many rows of *dataset* in input order.

        Mirrors :meth:`Classifier.distribution_many`: clusterers that
        provide a ``_cluster_many(matrix)`` hook (one numpy pass over a
        ``(n, m)`` value matrix) run vectorised against the dataset's
        zero-copy column block; the rest fall back to the per-row
        :meth:`_cluster` loop.
        """
        if self._header is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        hook = getattr(self, "_cluster_many", None)
        if hook is not None:
            matrix = dataset.to_matrix()
            if indices is not None:
                matrix = matrix[np.fromiter((int(i) for i in indices),
                                            dtype=np.intp)]
            if matrix.shape[0] == 0:
                return []
            return [int(c) for c in np.asarray(hook(matrix))]
        if indices is None:
            instances = list(dataset)
        else:
            instances = [dataset[int(i)] for i in indices]
        return [self.cluster_instance(inst) for inst in instances]

    def model_text(self) -> str:
        """Human-readable model body."""
        return f"{type(self).__name__} (no textual form)"

    def to_text(self) -> str:
        """Full textual report of the fitted model."""
        if self._header is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        head = (f"=== {type(self).__name__} clustering ===\n"
                f"Relation: {self.header.relation}\n"
                f"Clusters: {self.n_clusters}\n")
        return head + "\n" + self.model_text() + "\n"


class AssociationLearner(_Configurable):
    """A learner producing association rules from nominal data."""

    def fit(self, dataset: Dataset) -> "AssociationLearner":
        """Fit the model to *dataset*; returns ``self``."""
        raise NotImplementedError

    def rules_text(self) -> str:
        """Human-readable listing of the mined rules."""
        raise NotImplementedError


# --------------------------------------------------------------------------
# registries (back the services' getClassifiers-style operations)
# --------------------------------------------------------------------------

class Registry:
    """Name → class registry with tag metadata."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, tuple[type, tuple[str, ...]]] = {}

    def register(self, name: str, *tags: str):
        """Class decorator registering under *name* with search *tags*."""
        def deco(cls: type) -> type:
            if name in self._entries:
                raise OptionError(
                    f"{self.kind} {name!r} registered twice")
            self._entries[name] = (cls, tags)
            cls.REGISTERED_NAME = name  # type: ignore[attr-defined]
            return cls
        return deco

    def names(self) -> list[str]:
        """Sorted registered names."""
        return sorted(self._entries)

    def get(self, name: str) -> type:
        """Look up an entry by name."""
        try:
            return self._entries[name][0]
        except KeyError:
            raise OptionError(
                f"unknown {self.kind} {name!r}; "
                f"known: {self.names()}") from None

    def tags(self, name: str) -> tuple[str, ...]:
        """Search tags of a registered entry."""
        self.get(name)
        return self._entries[name][1]

    def create(self, name: str, options: Mapping[str, Any] | None = None):
        """Instantiate algorithm *name* with *options*."""
        return self.get(name)(**dict(options or {}))

    def items(self) -> Iterable[tuple[str, Type]]:
        """Iterate ``(name, class)`` pairs."""
        return ((n, c) for n, (c, _) in sorted(self._entries.items()))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries


CLASSIFIERS = Registry("classifier")
CLUSTERERS = Registry("clusterer")
ASSOCIATORS = Registry("associator")
