"""Clustering evaluation: silhouette scores and WEKA's classes-to-clusters
mapping.

The paper's §3 testing requirement covers "the discovered knowledge"
generally; for clusterers the toolkit-era measures were the silhouette
coefficient (internal quality) and WEKA's *classes-to-clusters* evaluation
(map each cluster to its majority class, report the error) — both provided
here over the same mixed-attribute distance the clusterers use.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError
from repro.ml.base import Clusterer
from repro.ml.clusterers._distance import MixedDistance


def silhouette(dataset: Dataset, assignments: list[int]) -> float:
    """Mean silhouette coefficient of a clustering (range [-1, 1]).

    Noise/singleton clusters contribute 0 for their members, matching the
    usual convention.
    """
    n = dataset.num_instances
    if n != len(assignments):
        raise DataError("assignment length does not match the dataset")
    if n < 2:
        raise DataError("need at least two instances")
    labels = np.asarray(assignments)
    unique = np.unique(labels)
    if unique.size < 2:
        return 0.0
    metric = MixedDistance().fit(dataset)
    matrix = metric.normalise(dataset.to_matrix())
    dist = metric.pairwise_to(matrix, matrix)
    scores = np.zeros(n)
    for i in range(n):
        own = labels == labels[i]
        own[i] = False
        if not own.any():
            scores[i] = 0.0  # singleton cluster
            continue
        a = float(dist[i, own].mean())
        b = np.inf
        for other in unique:
            if other == labels[i]:
                continue
            members = labels == other
            if members.any():
                b = min(b, float(dist[i, members].mean()))
        if not np.isfinite(b):
            scores[i] = 0.0
        else:
            scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def classes_to_clusters(dataset: Dataset, assignments: list[int]
                        ) -> dict:
    """WEKA's classes-to-clusters evaluation.

    Each cluster is assigned its majority true class; returns the mapping,
    the number of correctly 'classified' instances and the error rate.
    *dataset* must carry a nominal class attribute (which the clusterer
    itself must not have used).
    """
    if not dataset.has_class or not dataset.class_attribute.is_nominal:
        raise DataError("classes-to-clusters needs a nominal class")
    if len(assignments) != dataset.num_instances:
        raise DataError("assignment length does not match the dataset")
    k_classes = dataset.num_classes
    clusters = sorted(set(assignments))
    counts = {c: np.zeros(k_classes) for c in clusters}
    total = 0
    for inst, cluster in zip(dataset, assignments):
        if inst.class_is_missing(dataset):
            continue
        counts[cluster][int(inst.class_value(dataset))] += inst.weight
        total += 1
    mapping = {}
    correct = 0.0
    for cluster, vector in counts.items():
        majority = int(np.argmax(vector))
        mapping[cluster] = dataset.class_attribute.values[majority]
        correct += float(vector[majority])
    return {
        "mapping": mapping,
        "correct": correct,
        "total": total,
        "error_rate": 1.0 - (correct / total if total else 0.0),
    }


def evaluate_clusterer(clusterer: Clusterer, dataset: Dataset) -> dict:
    """One-call clustering report: fit elsewhere, evaluate here."""
    assignments = clusterer.assign(dataset)
    out: dict = {
        "n_clusters": clusterer.n_clusters,
        "silhouette": silhouette(dataset, assignments),
    }
    if dataset.has_class and dataset.class_attribute.is_nominal:
        out["classes_to_clusters"] = classes_to_clusters(dataset,
                                                         assignments)
    return out
