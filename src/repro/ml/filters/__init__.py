"""Dataset pre-processing filters."""

from repro.ml.filters.core import (Discretize, Filter, NominalToBinary,
                                   Normalize, RemoveAttributes,
                                   ReplaceMissing, Standardize)

__all__ = ["Filter", "ReplaceMissing", "Normalize", "Standardize",
           "Discretize", "NominalToBinary", "RemoveAttributes"]
