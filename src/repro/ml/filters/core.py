"""Dataset filters (pre-processing tools).

WEKA's "data pre-processing" tools appear in the paper's toolbox as "data set
manipulation tools".  Every filter here follows the same contract: ``fit`` on
a training dataset, then ``apply`` to that dataset or any other with the same
schema (so train/test transformations stay consistent).
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.attribute import Attribute
from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError


class Filter:
    """Base filter: fit on one dataset, apply to schema-compatible ones."""

    def fit(self, dataset: Dataset) -> "Filter":
        """Fit the model to *dataset*; returns ``self``."""
        self._fit(dataset)
        self._input_schema = [(a.name, a.kind) for a in dataset.attributes]
        return self

    def _fit(self, dataset: Dataset) -> None:
        raise NotImplementedError

    def apply(self, dataset: Dataset) -> Dataset:
        """Transform *dataset* using fitted statistics."""
        if not hasattr(self, "_input_schema"):
            raise DataError(f"{type(self).__name__} is not fitted")
        if [(a.name, a.kind) for a in dataset.attributes] != \
                self._input_schema:
            raise DataError(
                f"{type(self).__name__} was fitted on a different schema")
        return self._apply(dataset)

    def _apply(self, dataset: Dataset) -> Dataset:
        raise NotImplementedError

    def fit_apply(self, dataset: Dataset) -> Dataset:
        """Fit on *dataset*, then transform it."""
        return self.fit(dataset).apply(dataset)


class ReplaceMissing(Filter):
    """Impute missing cells: numeric mean / nominal mode of the fit data."""

    def _fit(self, dataset: Dataset) -> None:
        matrix = dataset.to_matrix()
        self._fill = np.zeros(dataset.num_attributes)
        for j, attr in enumerate(dataset.attributes):
            col = matrix[:, j]
            present = col[~np.isnan(col)]
            if present.size == 0:
                self._fill[j] = 0.0
            elif attr.is_numeric:
                self._fill[j] = float(present.mean())
            else:
                values, counts = np.unique(present, return_counts=True)
                self._fill[j] = float(values[np.argmax(counts)])

    def _apply(self, dataset: Dataset) -> Dataset:
        out = dataset.copy_header()
        for inst in dataset:
            values = inst.values.copy()
            nan = np.isnan(values)
            values[nan] = self._fill[nan]
            out.add(Instance(values, inst.weight))
        return out


class Normalize(Filter):
    """Min-max scale numeric attributes into [0, 1]."""

    def _fit(self, dataset: Dataset) -> None:
        matrix = dataset.to_matrix()
        self._numeric = [j for j, a in enumerate(dataset.attributes)
                         if a.is_numeric]
        self._lo = {}
        self._span = {}
        for j in self._numeric:
            col = matrix[:, j]
            present = col[~np.isnan(col)]
            lo = float(present.min()) if present.size else 0.0
            hi = float(present.max()) if present.size else 1.0
            self._lo[j] = lo
            self._span[j] = (hi - lo) if hi > lo else 1.0

    def _apply(self, dataset: Dataset) -> Dataset:
        out = dataset.copy_header()
        for inst in dataset:
            values = inst.values.copy()
            for j in self._numeric:
                if not math.isnan(values[j]):
                    values[j] = (values[j] - self._lo[j]) / self._span[j]
            out.add(Instance(values, inst.weight))
        return out


class Standardize(Filter):
    """Zero-mean unit-variance scaling of numeric attributes."""

    def _fit(self, dataset: Dataset) -> None:
        matrix = dataset.to_matrix()
        self._numeric = [j for j, a in enumerate(dataset.attributes)
                         if a.is_numeric]
        self._mean = {}
        self._std = {}
        for j in self._numeric:
            col = matrix[:, j]
            present = col[~np.isnan(col)]
            self._mean[j] = float(present.mean()) if present.size else 0.0
            std = float(present.std()) if present.size else 1.0
            self._std[j] = std if std > 1e-12 else 1.0

    def _apply(self, dataset: Dataset) -> Dataset:
        out = dataset.copy_header()
        for inst in dataset:
            values = inst.values.copy()
            for j in self._numeric:
                if not math.isnan(values[j]):
                    values[j] = (values[j] - self._mean[j]) / self._std[j]
            out.add(Instance(values, inst.weight))
        return out


class Discretize(Filter):
    """Bin numeric attributes into nominal ranges.

    ``strategy='width'`` uses equal-width bins over the fit range;
    ``'frequency'`` uses training quantiles.  The class attribute is never
    discretised.
    """

    def __init__(self, bins: int = 10, strategy: str = "width"):
        if bins < 2:
            raise DataError("need at least 2 bins")
        if strategy not in ("width", "frequency"):
            raise DataError(f"unknown strategy {strategy!r}")
        self.bins = bins
        self.strategy = strategy

    def _fit(self, dataset: Dataset) -> None:
        matrix = dataset.to_matrix()
        class_index = dataset.class_index if dataset.has_class else -1
        self._cuts: dict[int, np.ndarray] = {}
        for j, attr in enumerate(dataset.attributes):
            if not attr.is_numeric or j == class_index:
                continue
            col = matrix[:, j]
            present = col[~np.isnan(col)]
            if present.size == 0:
                self._cuts[j] = np.array([])
                continue
            if self.strategy == "width":
                lo, hi = float(present.min()), float(present.max())
                if hi <= lo:
                    self._cuts[j] = np.array([])
                else:
                    self._cuts[j] = np.linspace(lo, hi, self.bins + 1)[1:-1]
            else:
                qs = np.quantile(present,
                                 np.linspace(0, 1, self.bins + 1)[1:-1])
                self._cuts[j] = np.unique(qs)

    def _apply(self, dataset: Dataset) -> Dataset:
        attrs = []
        for j, attr in enumerate(dataset.attributes):
            if j in self._cuts:
                n_bins = len(self._cuts[j]) + 1
                labels = [f"bin{b}" for b in range(n_bins)]
                attrs.append(Attribute.nominal(attr.name, labels))
            else:
                attrs.append(attr.copy())
        out = Dataset(dataset.relation, attrs)
        if dataset.has_class:
            out.class_index = dataset.class_index
        for inst in dataset:
            values = inst.values.copy()
            for j, cuts in self._cuts.items():
                if not math.isnan(values[j]):
                    values[j] = float(np.searchsorted(
                        cuts, values[j], side="right"))
            out.add(Instance(values, inst.weight))
        return out


class NominalToBinary(Filter):
    """One-hot expand nominal attributes (class attribute untouched)."""

    def _fit(self, dataset: Dataset) -> None:
        self._class_index = dataset.class_index if dataset.has_class else -1
        self._plan: list[tuple[int, Attribute, list[str]]] = []
        for j, attr in enumerate(dataset.attributes):
            if attr.is_nominal and j != self._class_index \
                    and attr.num_values > 2:
                names = [f"{attr.name}={v}" for v in attr.values]
                self._plan.append((j, attr, names))

    def _apply(self, dataset: Dataset) -> Dataset:
        expand = {j: names for j, _, names in self._plan}
        attrs: list[Attribute] = []
        mapping: list[tuple[str, int]] = []  # ('copy', j) or ('onehot', j)
        class_name = (dataset.class_attribute.name
                      if dataset.has_class else None)
        for j, attr in enumerate(dataset.attributes):
            if j in expand:
                for name in expand[j]:
                    attrs.append(Attribute.nominal(name, ("f", "t")))
                    mapping.append(("onehot", j))
            else:
                attrs.append(attr.copy())
                mapping.append(("copy", j))
        out = Dataset(dataset.relation, attrs)
        if class_name is not None:
            out.set_class(class_name)
        onehot_offset: dict[int, int] = {}
        pos = 0
        for kind, j in mapping:
            if kind == "onehot" and j not in onehot_offset:
                onehot_offset[j] = pos
            pos += 1
        for inst in dataset:
            cells = np.zeros(len(attrs))
            pos = 0
            for kind, j in mapping:
                if kind == "copy":
                    cells[pos] = inst.value(j)
                    pos += 1
                else:
                    if pos == onehot_offset[j]:
                        value = inst.value(j)
                        width = dataset.attribute(j).num_values
                        if math.isnan(value):
                            cells[pos:pos + width] = np.nan
                        else:
                            cells[pos + int(value)] = 1.0
                    pos += 1
            out.add(Instance(cells, inst.weight))
        return out


class RemoveAttributes(Filter):
    """Drop attributes by name (the class attribute cannot be dropped)."""

    def __init__(self, names: list[str]):
        self.names = list(names)

    def _fit(self, dataset: Dataset) -> None:
        drop = set(self.names)
        unknown = drop - {a.name for a in dataset.attributes}
        if unknown:
            raise DataError(f"unknown attribute(s) {sorted(unknown)}")
        if dataset.has_class and dataset.class_attribute.name in drop:
            raise DataError("cannot remove the class attribute")
        self._keep = [j for j, a in enumerate(dataset.attributes)
                      if a.name not in drop]

    def _apply(self, dataset: Dataset) -> Dataset:
        return dataset.select_attributes(self._keep)
