"""The algorithm catalogue: every named algorithm configuration the services
expose.

The paper states the toolkit's services "contain approximately 75 different
algorithms, primarily classifiers, clustering algorithms and association
rules".  WEKA 3.4's scheme count included closely related variants (IB1 vs
IBk, pruned vs unpruned trees, per-kernel SVM entries, ...), so this
catalogue does the same: each entry is a *named configuration* — a registered
algorithm class plus a preset option dict that changes its behaviour — and
the CAT-75 bench counts these entries.  Distinct *implementations* are the
registry counts (``len(CLASSIFIERS)`` etc.); both numbers are reported in
EXPERIMENTS.md.

Entries are what ``getClassifiers`` returns over SOAP; ``create(name)``
instantiates any of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import OptionError
from repro.ml.base import ASSOCIATORS, CLASSIFIERS, CLUSTERERS

# importing the families populates the registries
import repro.ml.classifiers   # noqa: F401
import repro.ml.clusterers    # noqa: F401
import repro.ml.associations  # noqa: F401


@dataclass(frozen=True)
class AlgorithmEntry:
    """One named algorithm configuration."""

    name: str           # catalogue name (unique)
    kind: str           # 'classifier' | 'clusterer' | 'associator'
    family: str         # grouping shown by the ClassifierSelector tree
    base: str           # registry name of the implementation
    options: dict[str, Any] = field(default_factory=dict)
    description: str = ""


def _classifier_entries() -> list[AlgorithmEntry]:
    e: list[AlgorithmEntry] = []

    def add(name: str, family: str, base: str, options=None, desc=""):
        e.append(AlgorithmEntry(name, "classifier", family, base,
                                dict(options or {}), desc))

    # trees
    add("J48", "trees", "J48", {}, "C4.5 pruned decision tree")
    add("J48-unpruned", "trees", "J48", {"unpruned": True},
        "C4.5 without pessimistic pruning")
    add("J48-infogain", "trees", "J48", {"use_gain_ratio": False},
        "C4.5 selecting splits by raw information gain")
    add("J48-m5", "trees", "J48", {"min_obj": 5},
        "C4.5 with at least 5 instances per branch")
    add("J48-cf10", "trees", "J48", {"confidence": 0.10},
        "C4.5 pruned aggressively (CF=0.10)")
    add("Id3", "trees", "Id3", {}, "Quinlan's ID3 (nominal only)")
    add("REPTree", "trees", "REPTree", {},
        "Info-gain tree with reduced-error pruning")
    add("REPTree-deep", "trees", "REPTree", {"prune_fraction": 0.1},
        "REPTree with a small prune split")
    add("DecisionStump", "trees", "DecisionStump", {},
        "Single-split tree")
    add("RandomTree", "trees", "RandomTree", {},
        "Unpruned tree over random attribute subsets")
    # rules
    add("ZeroR", "rules", "ZeroR", {}, "Majority-class baseline")
    add("OneR", "rules", "OneR", {}, "Holte's one-attribute rule")
    add("OneR-b3", "rules", "OneR", {"min_bucket": 3},
        "1R with small numeric buckets")
    add("Prism", "rules", "Prism", {}, "Cendrowska's PRISM rule inducer")
    add("DecisionTable", "rules", "DecisionTable", {},
        "Kohavi's decision table")
    # bayes
    add("NaiveBayes", "bayes", "NaiveBayes", {},
        "Gaussian/multinomial naive Bayes")
    add("NaiveBayesUpdateable", "bayes", "NaiveBayesUpdateable", {},
        "Streaming naive Bayes")
    add("NaiveBayes-smooth01", "bayes", "NaiveBayes", {"smoothing": 0.1},
        "Naive Bayes with light Laplace smoothing")
    # lazy
    add("IB1", "lazy", "IBk", {"k": 1}, "1-nearest neighbour")
    add("IB3", "lazy", "IBk", {"k": 3}, "3-nearest neighbours")
    add("IB5", "lazy", "IBk", {"k": 5}, "5-nearest neighbours")
    add("IB10", "lazy", "IBk", {"k": 10}, "10-nearest neighbours")
    add("IBk-weighted", "lazy", "IBk",
        {"k": 5, "distance_weighting": True},
        "5-NN with inverse-distance vote weighting")
    add("KStar", "lazy", "KStar", {}, "K* entropic instance learner")
    add("KStar-wide", "lazy", "KStar", {"blend": 0.5},
        "K* with a wide kernel")
    # functions
    add("Logistic", "functions", "Logistic", {},
        "Ridge multinomial logistic regression")
    add("Logistic-ridge1", "functions", "Logistic", {"ridge": 1.0},
        "Strongly regularised logistic regression")
    add("MultilayerPerceptron", "functions", "MultilayerPerceptron", {},
        "Backprop network, 8 hidden neurons")
    add("MultilayerPerceptron-h16", "functions", "MultilayerPerceptron",
        {"hidden_neurons": 16}, "Backprop network, 16 hidden neurons")
    add("MultilayerPerceptron-slow", "functions", "MultilayerPerceptron",
        {"learning_rate": 0.05, "momentum": 0.9},
        "Backprop with low rate / high momentum")
    add("SMO", "functions", "SMO", {}, "Linear SVM (C=1)")
    add("SMO-C10", "functions", "SMO", {"c": 10.0},
        "Hard-margin-leaning linear SVM")
    add("SMO-C01", "functions", "SMO", {"c": 0.1},
        "Heavily regularised linear SVM")
    add("VotedPerceptron", "functions", "VotedPerceptron", {},
        "Freund-Schapire voted perceptron")
    add("SGDClassifier", "functions", "SGDClassifier", {},
        "Online logistic regression by SGD")
    # misc
    add("HyperPipes", "misc", "HyperPipes", {},
        "Per-class attribute-range pipes")
    add("VFI", "misc", "VFI", {}, "Voting feature intervals")
    # meta
    add("Bagging", "meta", "Bagging", {}, "Bagged J48 (10 bags)")
    add("Bagging-NaiveBayes", "meta", "Bagging", {"base": "NaiveBayes"},
        "Bagged naive Bayes")
    add("Bagging-RandomTree", "meta", "Bagging",
        {"base": "RandomTree", "iterations": 15}, "Bagged random trees")
    add("AdaBoostM1", "meta", "AdaBoostM1", {},
        "Boosted decision stumps (10 rounds)")
    add("AdaBoostM1-J48", "meta", "AdaBoostM1", {"base": "J48"},
        "Boosted C4.5 trees")
    add("RandomForest", "meta", "RandomForest", {},
        "Random forest (20 trees)")
    add("RandomForest-50", "meta", "RandomForest", {"trees": 50},
        "Random forest (50 trees)")
    add("Vote", "meta", "Vote", {},
        "Probability-averaged J48 + NaiveBayes + IBk")
    add("Vote-5", "meta", "Vote",
        {"members": "J48,NaiveBayes,IBk,Logistic,DecisionStump"},
        "Five-way probability vote")
    add("Stacking", "meta", "Stacking", {},
        "Stacked generalisation with logistic meta learner")
    add("MultiScheme", "meta", "MultiScheme", {},
        "CV-selected best of several schemes")
    add("FilteredClassifier", "meta", "FilteredClassifier", {},
        "ReplaceMissing then J48")
    add("FilteredClassifier-Discretize-NB", "meta", "FilteredClassifier",
        {"filter": "Discretize", "base": "NaiveBayes"},
        "Discretise then naive Bayes")
    add("FilteredClassifier-Standardize-IBk", "meta", "FilteredClassifier",
        {"filter": "Standardize", "base": "IBk", "base_options": "k=3"},
        "Standardise then 3-NN")
    add("ClassificationViaClustering", "meta",
        "ClassificationViaClustering", {},
        "k-means clusters labelled by majority class")
    add("ClassificationViaClustering-EM", "meta",
        "ClassificationViaClustering", {"clusterer": "EM"},
        "EM clusters labelled by majority class")
    # wave 2
    add("ConjunctiveRule", "rules", "ConjunctiveRule", {},
        "Single greedy AND-rule")
    add("ConjunctiveRule-long", "rules", "ConjunctiveRule",
        {"max_conditions": 5}, "AND-rule with up to 5 conditions")
    add("LWL", "lazy", "LWL", {},
        "Locally weighted naive Bayes (k=30)")
    add("LWL-J48", "lazy", "LWL", {"base": "DecisionStump", "k": 40},
        "Locally weighted decision stumps")
    add("MultiClassClassifier", "meta", "MultiClassClassifier", {},
        "One-vs-rest logistic reduction")
    add("MultiClassClassifier-SMO", "meta", "MultiClassClassifier",
        {"base": "SMO"}, "One-vs-rest linear SVMs")
    add("CVParameterSelection", "meta", "CVParameterSelection", {},
        "CV-tuned J48 min_obj")
    add("CVParameterSelection-IBk", "meta", "CVParameterSelection",
        {"base": "IBk", "parameter": "k", "values": "1,3,5,9"},
        "CV-tuned k for IBk")
    add("AttributeSelectedClassifier", "meta",
        "AttributeSelectedClassifier", {},
        "Genetic-search CFS selection then J48")
    add("AttributeSelectedClassifier-NB", "meta",
        "AttributeSelectedClassifier",
        {"approach": "BestFirst+CfsSubset", "base": "NaiveBayes"},
        "Best-first CFS selection then naive Bayes")
    return e


def _clusterer_entries() -> list[AlgorithmEntry]:
    e: list[AlgorithmEntry] = []

    def add(name: str, base: str, options=None, desc=""):
        e.append(AlgorithmEntry(name, "clusterer", "clusterers", base,
                                dict(options or {}), desc))

    add("SimpleKMeans", "SimpleKMeans", {}, "Lloyd k-means (k=2)")
    add("SimpleKMeans-k3", "SimpleKMeans", {"k": 3}, "k-means with k=3")
    add("SimpleKMeans-k5", "SimpleKMeans", {"k": 5}, "k-means with k=5")
    add("Cobweb", "Cobweb", {}, "Incremental conceptual clustering")
    add("Cobweb-coarse", "Cobweb", {"cutoff": 0.05},
        "Cobweb with a high cutoff (fewer concepts)")
    add("EM", "EM", {}, "Gaussian/multinomial mixture via EM")
    add("EM-k3", "EM", {"k": 3}, "Three-component mixture")
    add("FarthestFirst", "FarthestFirst", {}, "k-centre traversal")
    add("Hierarchical-single", "Hierarchical", {"linkage": "single"},
        "Single-linkage agglomerative")
    add("Hierarchical-complete", "Hierarchical", {"linkage": "complete"},
        "Complete-linkage agglomerative")
    add("Hierarchical-average", "Hierarchical", {"linkage": "average"},
        "UPGMA agglomerative")
    add("DBSCAN", "DBSCAN", {}, "Density-based clustering")
    return e


def _associator_entries() -> list[AlgorithmEntry]:
    e: list[AlgorithmEntry] = []

    def add(name: str, base: str, options=None, desc=""):
        e.append(AlgorithmEntry(name, "associator", "associations", base,
                                dict(options or {}), desc))

    add("Apriori", "Apriori", {}, "Level-wise frequent itemsets + rules")
    add("Apriori-low-support", "Apriori", {"min_support": 0.05},
        "Apriori at 5% support")
    add("FPGrowth", "FPGrowth", {}, "FP-tree pattern growth + rules")
    return e


def entries() -> list[AlgorithmEntry]:
    """The full catalogue (classifiers + clusterers + associators)."""
    return (_classifier_entries() + _clusterer_entries()
            + _associator_entries())


def selection_approach_count() -> int:
    """Number of attribute search/selection approaches (paper: 20)."""
    from repro.ml.attrsel import approaches
    return len(approaches())


def names(kind: str | None = None) -> list[str]:
    """Catalogue names, optionally restricted to one kind."""
    return [e.name for e in entries() if kind is None or e.kind == kind]


def get(name: str) -> AlgorithmEntry:
    """Look up an entry by name."""
    for entry in entries():
        if entry.name == name:
            return entry
    raise OptionError(f"unknown catalogue entry {name!r}")


def create(name: str, extra_options: dict[str, Any] | None = None):
    """Instantiate a catalogue entry, merging *extra_options* over the
    preset."""
    entry = get(name)
    options = dict(entry.options)
    options.update(extra_options or {})
    registry = {"classifier": CLASSIFIERS, "clusterer": CLUSTERERS,
                "associator": ASSOCIATORS}[entry.kind]
    return registry.create(entry.base, options)


def summary() -> dict[str, int]:
    """Inventory counts reported by the CAT-75 bench."""
    all_entries = entries()
    return {
        "catalogue_entries": len(all_entries),
        "classifier_entries": sum(1 for e in all_entries
                                  if e.kind == "classifier"),
        "clusterer_entries": sum(1 for e in all_entries
                                 if e.kind == "clusterer"),
        "associator_entries": sum(1 for e in all_entries
                                  if e.kind == "associator"),
        "classifier_implementations": len(CLASSIFIERS),
        "clusterer_implementations": len(CLUSTERERS),
        "associator_implementations": len(ASSOCIATORS),
        "selection_approaches": selection_approach_count(),
    }
