"""FP-Growth frequent-itemset mining.

A second associator so the Association Web Service offers a genuine choice of
algorithm; it mines exactly the same itemsets as :class:`Apriori` (a property
the test suite asserts) but via the FP-tree recursive pattern growth, which is
dramatically faster on dense data.
"""

from __future__ import annotations

from collections import defaultdict

from repro.data.dataset import Dataset
from repro.errors import DataError
from repro.ml.base import ASSOCIATORS, AssociationLearner
from repro.ml.associations.apriori import Apriori, AssociationRule, Item
from repro.ml.options import FLOAT, INT, OptionSpec


class _FPNode:
    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: Item | None, parent: "_FPNode | None"):
        self.item = item
        self.count = 0.0
        self.parent = parent
        self.children: dict[Item, _FPNode] = {}


class _FPTree:
    """FP-tree with header links for conditional-pattern extraction."""

    def __init__(self) -> None:
        self.root = _FPNode(None, None)
        self.header: dict[Item, list[_FPNode]] = defaultdict(list)

    def insert(self, items: list[Item], count: float) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                self.header[item].append(child)
            child.count += count
            node = child

    def prefix_paths(self, item: Item) -> list[tuple[list[Item], float]]:
        paths = []
        for node in self.header[item]:
            path: list[Item] = []
            cursor = node.parent
            while cursor is not None and cursor.item is not None:
                path.append(cursor.item)
                cursor = cursor.parent
            if path:
                paths.append((list(reversed(path)), node.count))
        return paths


@ASSOCIATORS.register("FPGrowth", "associations", "itemsets", "fp-tree")
class FPGrowth(AssociationLearner):
    """Pattern-growth itemset mining + the same rule generation as Apriori."""

    OPTIONS = (
        OptionSpec("min_support", FLOAT, 0.2,
                   "Minimum itemset support (fraction).",
                   minimum=1e-6, maximum=1.0),
        OptionSpec("min_confidence", FLOAT, 0.8,
                   "Minimum rule confidence.", minimum=0.0, maximum=1.0),
        OptionSpec("max_size", INT, 5, "Maximum itemset size.", minimum=1),
        OptionSpec("max_rules", INT, 50,
                   "Keep at most this many rules.", minimum=1),
    )

    def fit(self, dataset: Dataset) -> "FPGrowth":
        """Fit the model to *dataset*; returns ``self``."""
        for attr in dataset.attributes:
            if not attr.is_nominal:
                raise DataError(
                    f"FPGrowth needs nominal attributes; {attr.name!r} "
                    f"is {attr.kind}")
        self._dataset_header = dataset.copy_header()
        matrix = dataset.to_matrix()
        n = matrix.shape[0]
        if n == 0:
            raise DataError("no transactions")
        min_count = self.opt("min_support") * n
        # frequency of single items
        item_counts: dict[Item, float] = defaultdict(float)
        transactions: list[list[Item]] = []
        for row in matrix:
            txn: list[Item] = []
            for a, cell in enumerate(row):
                if cell == cell:  # not NaN
                    item = (a, int(cell))
                    txn.append(item)
                    item_counts[item] += 1.0
            transactions.append(txn)
        frequent_items = {i for i, c in item_counts.items()
                          if c >= min_count}
        order = {item: (-item_counts[item], item)
                 for item in frequent_items}
        tree = _FPTree()
        for txn in transactions:
            kept = sorted((i for i in txn if i in frequent_items),
                          key=lambda i: order[i])
            if kept:
                tree.insert(kept, 1.0)
        supports: dict[tuple[Item, ...], float] = {}
        self._mine(tree, (), supports, min_count, n)
        self.itemsets = supports
        # reuse Apriori's rule generator for identical rule semantics
        helper = Apriori(min_support=self.opt("min_support"),
                         min_confidence=self.opt("min_confidence"),
                         max_size=self.opt("max_size"),
                         max_rules=self.opt("max_rules"))
        helper._dataset_header = self._dataset_header
        self.rules: list[AssociationRule] = helper._generate_rules(supports)
        return self

    def _mine(self, tree: _FPTree, suffix: tuple[Item, ...],
              supports: dict, min_count: float, n: int) -> None:
        if len(suffix) >= self.opt("max_size"):
            return
        item_totals = {item: sum(node.count for node in nodes)
                       for item, nodes in tree.header.items()}
        for item, total in sorted(item_totals.items()):
            if total < min_count:
                continue
            itemset = tuple(sorted(suffix + (item,)))
            supports[itemset] = total / n
            conditional = _FPTree()
            for path, count in tree.prefix_paths(item):
                conditional.insert(path, count)
            self._mine(conditional, itemset, supports, min_count, n)

    def rules_text(self) -> str:
        """Human-readable listing of the mined rules."""
        if not hasattr(self, "rules"):
            raise DataError("FPGrowth is not fitted")
        lines = [f"FPGrowth: min_support={self.opt('min_support')} "
                 f"min_confidence={self.opt('min_confidence')}",
                 f"Frequent itemsets: {len(self.itemsets)}   "
                 f"Rules: {len(self.rules)}", ""]
        for i, rule in enumerate(self.rules, start=1):
            lines.append(f"{i:3d}. {rule.format(self._dataset_header)}")
        return "\n".join(lines)
