"""Apriori frequent-itemset mining and association-rule generation.

The third of the paper's three Web Service families ("1 classifiers,
2 clustering algorithms and 3 association rules").  Items are
``attribute=value`` pairs over nominal data, exactly like WEKA's Apriori; the
learner mines frequent itemsets level-wise with candidate pruning and then
emits rules above a confidence threshold, reporting support, confidence and
lift.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError
from repro.ml.base import ASSOCIATORS, AssociationLearner
from repro.ml.options import BOOL, FLOAT, INT, OptionSpec

Item = tuple[int, int]  # (attribute index, value index)


@dataclass(frozen=True)
class AssociationRule:
    """``antecedent -> consequent`` with its quality measures."""

    antecedent: tuple[Item, ...]
    consequent: tuple[Item, ...]
    support: float      # fraction of transactions containing both sides
    confidence: float   # support / support(antecedent)
    lift: float         # confidence / support(consequent)

    def format(self, dataset: Dataset) -> str:
        """Render against *dataset*'s attribute vocabulary."""
        def side(items: tuple[Item, ...]) -> str:
            return " ".join(
                f"{dataset.attribute(a).name}="
                f"{dataset.attribute(a).values[v]}"
                for a, v in items)
        return (f"{side(self.antecedent)} ==> {side(self.consequent)}   "
                f"sup:{self.support:.2f} conf:{self.confidence:.2f} "
                f"lift:{self.lift:.2f}")


@ASSOCIATORS.register("Apriori", "associations", "itemsets")
class Apriori(AssociationLearner):
    """Level-wise frequent-itemset mining + rule generation."""

    OPTIONS = (
        OptionSpec("min_support", FLOAT, 0.2,
                   "Minimum itemset support (fraction).",
                   minimum=1e-6, maximum=1.0),
        OptionSpec("min_confidence", FLOAT, 0.8,
                   "Minimum rule confidence.", minimum=0.0, maximum=1.0),
        OptionSpec("max_size", INT, 5, "Maximum itemset size.", minimum=1),
        OptionSpec("max_rules", INT, 50,
                   "Keep at most this many rules (best confidence first).",
                   minimum=1),
        OptionSpec("class_rules", BOOL, False,
                   "Mine class-association rules only: the consequent is "
                   "restricted to the dataset's class attribute (WEKA's "
                   "-A)."),
    )

    def fit(self, dataset: Dataset) -> "Apriori":
        """Fit the model to *dataset*; returns ``self``."""
        if self.opt("class_rules"):
            if not dataset.has_class:
                raise DataError(
                    "class_rules needs a dataset with a class attribute")
            self._class_index = dataset.class_index
        else:
            self._class_index = None
        return self._fit_impl(dataset)

    def _fit_impl(self, dataset: Dataset) -> "Apriori":
        for attr in dataset.attributes:
            if not attr.is_nominal:
                raise DataError(
                    f"Apriori needs nominal attributes; {attr.name!r} "
                    f"is {attr.kind} (discretise first)")
        self._dataset_header = dataset.copy_header()
        matrix = dataset.to_matrix()
        n = matrix.shape[0]
        if n == 0:
            raise DataError("no transactions")
        min_count = self.opt("min_support") * n
        # level 1: single items
        supports: dict[tuple[Item, ...], float] = {}
        current: list[tuple[Item, ...]] = []
        covers: dict[tuple[Item, ...], np.ndarray] = {}
        for a in range(dataset.num_attributes):
            col = matrix[:, a]
            for v in range(dataset.attribute(a).num_values):
                mask = col == v
                count = int(mask.sum())
                if count >= min_count:
                    itemset = ((a, v),)
                    supports[itemset] = count / n
                    covers[itemset] = mask
                    current.append(itemset)
        current.sort()
        # level k: join + prune + count
        for size in range(2, self.opt("max_size") + 1):
            candidates = self._generate_candidates(current, size)
            next_level: list[tuple[Item, ...]] = []
            for cand in candidates:
                prefix = cand[:-1]
                last = (cand[-1],)
                mask = covers[prefix] & covers[last]
                count = int(mask.sum())
                if count >= min_count:
                    supports[cand] = count / n
                    covers[cand] = mask
                    next_level.append(cand)
            if not next_level:
                break
            current = sorted(next_level)
        self.itemsets = supports
        self.rules = self._generate_rules(supports)
        return self

    @staticmethod
    def _generate_candidates(frequent: list[tuple[Item, ...]],
                             size: int) -> list[tuple[Item, ...]]:
        """Join step (shared prefix) + prune step (all subsets frequent)."""
        freq_set = set(frequent)
        out = []
        for i, a in enumerate(frequent):
            for b in frequent[i + 1:]:
                if a[:-1] != b[:-1]:
                    break  # sorted order: prefixes diverge from here on
                if a[-1][0] == b[-1][0]:
                    continue  # same attribute twice is impossible
                cand = a + (b[-1],) if a[-1] < b[-1] else b + (a[-1],)
                if len(cand) != size:
                    continue
                if all(tuple(sorted(sub)) in freq_set
                       for sub in itertools.combinations(cand, size - 1)):
                    out.append(tuple(sorted(cand)))
        return sorted(set(out))

    def _generate_rules(self, supports) -> list[AssociationRule]:
        rules: list[AssociationRule] = []
        min_conf = self.opt("min_confidence")
        class_index = getattr(self, "_class_index", None)
        for itemset, support in supports.items():
            if len(itemset) < 2:
                continue
            for r in range(1, len(itemset)):
                for antecedent in itertools.combinations(itemset, r):
                    antecedent = tuple(sorted(antecedent))
                    consequent = tuple(sorted(set(itemset)
                                              - set(antecedent)))
                    if class_index is not None:
                        # class-association rules: consequent is exactly
                        # the class item; the class never leads
                        if len(consequent) != 1 \
                                or consequent[0][0] != class_index:
                            continue
                        if any(a == class_index
                               for a, _ in antecedent):
                            continue
                    ant_support = supports.get(antecedent)
                    con_support = supports.get(consequent)
                    if ant_support is None or con_support is None:
                        continue
                    confidence = support / ant_support
                    if confidence >= min_conf:
                        rules.append(AssociationRule(
                            antecedent, consequent, support, confidence,
                            confidence / con_support))
        rules.sort(key=lambda rule: (-rule.confidence, -rule.support))
        return rules[:self.opt("max_rules")]

    def rules_text(self) -> str:
        """Human-readable listing of the mined rules."""
        if not hasattr(self, "rules"):
            raise DataError("Apriori is not fitted")
        lines = [f"Apriori: min_support={self.opt('min_support')} "
                 f"min_confidence={self.opt('min_confidence')}",
                 f"Frequent itemsets: {len(self.itemsets)}   "
                 f"Rules: {len(self.rules)}", ""]
        for i, rule in enumerate(self.rules, start=1):
            lines.append(f"{i:3d}. {rule.format(self._dataset_header)}")
        return "\n".join(lines)
