"""Association-rule learners (the paper's third Web Service family)."""

from repro.ml.associations.apriori import Apriori, AssociationRule
from repro.ml.associations.fpgrowth import FPGrowth

__all__ = ["Apriori", "AssociationRule", "FPGrowth"]
