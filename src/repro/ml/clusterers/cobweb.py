"""Cobweb/Classit incremental conceptual clustering.

The paper deploys a dedicated Cobweb Web Service whose operations are
``cluster`` (textual result) and ``getCobwebGraph`` (the concept tree for the
tree plotter).  This implementation follows Fisher's COBWEB with the CLASSIT
extension for numeric attributes (Gaussian per-attribute estimates with an
*acuity* floor), and WEKA's *cutoff* parameter to suppress child creation for
instances that add too little category utility.

Operators considered on each insert, exactly as in the literature: place in
the best-scoring child, create a new singleton child, merge the two best
children, split the best child.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.ml.base import CLUSTERERS, Clusterer
from repro.ml.options import FLOAT, OptionSpec

_SQRT_PI2 = 2.0 * math.sqrt(math.pi)


class _AttrStats:
    """Per-attribute sufficient statistics for one concept node."""

    def __init__(self, n_values: int):
        # nominal: n_values > 0 -> counts; numeric: Welford mean/var
        self.n_values = n_values
        if n_values:
            self.counts = np.zeros(n_values)
        self.weight = 0.0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: float) -> None:
        if math.isnan(value):
            return
        if self.n_values:
            self.counts[int(value)] += 1.0
        else:
            self.weight += 1.0
            delta = value - self.mean
            self.mean += delta / self.weight
            self.m2 += delta * (value - self.mean)

    def merge(self, other: "_AttrStats") -> None:
        if self.n_values:
            self.counts += other.counts
        elif other.weight:
            total = self.weight + other.weight
            delta = other.mean - self.mean
            self.mean += delta * other.weight / total
            self.m2 += other.m2 + delta * delta * \
                self.weight * other.weight / total
            self.weight = total

    def copy(self) -> "_AttrStats":
        out = _AttrStats(self.n_values)
        if self.n_values:
            out.counts = self.counts.copy()
        out.weight, out.mean, out.m2 = self.weight, self.mean, self.m2
        return out

    def score(self, acuity: float) -> float:
        """Expected correct-guess mass: sum_v P(v)^2, or CLASSIT's
        1/(2*sqrt(pi)*sigma) for numeric attributes."""
        if self.n_values:
            total = self.counts.sum()
            if total <= 0:
                return 0.0
            p = self.counts / total
            return float((p * p).sum())
        if self.weight <= 0:
            return 0.0
        std = math.sqrt(self.m2 / self.weight) if self.weight > 1 else 0.0
        return 1.0 / (_SQRT_PI2 * max(std, acuity))


class CobwebNode:
    """One concept in the hierarchy."""

    _next_id = 0

    def __init__(self, schema: list[int]):
        self.schema = schema
        self.stats = [_AttrStats(v) for v in schema]
        self.count = 0.0
        self.children: list["CobwebNode"] = []
        self.id = CobwebNode._next_id
        CobwebNode._next_id += 1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_instance(self, values: np.ndarray) -> None:
        """Update statistics with one instance's values."""
        self.count += 1.0
        for stat, value in zip(self.stats, values):
            stat.add(float(value))

    def absorb(self, other: "CobwebNode") -> None:
        """Merge another node's statistics into this one."""
        self.count += other.count
        for mine, theirs in zip(self.stats, other.stats):
            mine.merge(theirs)

    def copy_stats(self) -> "CobwebNode":
        """Copy of this node's statistics (children excluded)."""
        out = CobwebNode(self.schema)
        out.count = self.count
        out.stats = [s.copy() for s in self.stats]
        return out

    def score(self, acuity: float) -> float:
        """Expected-correct-guess mass of this concept."""
        return sum(s.score(acuity) for s in self.stats)

    def category_utility(self, acuity: float) -> float:
        """CU of this node's child partition."""
        if not self.children or self.count <= 0:
            return 0.0
        parent_score = self.score(acuity)
        total = 0.0
        for child in self.children:
            p = child.count / self.count
            total += p * (child.score(acuity) - parent_score)
        return total / len(self.children)

    def leaves(self) -> list["CobwebNode"]:
        """Leaf concepts of this subtree, left to right."""
        if self.is_leaf:
            return [self]
        out: list[CobwebNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def depth(self) -> int:
        """Depth of the subtree below this node."""
        if self.is_leaf:
            return 0
        return 1 + max(c.depth() for c in self.children)


@CLUSTERERS.register("Cobweb", "hierarchical", "conceptual", "incremental")
class Cobweb(Clusterer):
    """Incremental conceptual clustering over mixed attributes."""

    OPTIONS = (
        OptionSpec("acuity", FLOAT, 1.0,
                   "Minimum per-attribute standard deviation (CLASSIT).",
                   minimum=1e-6),
        OptionSpec("cutoff", FLOAT, 0.002,
                   "Minimum category utility for keeping a new child.",
                   minimum=0.0),
    )

    def _fit(self, dataset: Dataset) -> None:
        class_index = dataset.class_index if dataset.has_class else -1
        self._schema = [
            attr.num_values if attr.is_nominal else 0
            for i, attr in enumerate(dataset.attributes)]
        self._active = [i for i in range(dataset.num_attributes)
                        if i != class_index
                        and not dataset.attribute(i).is_string]
        self.root = CobwebNode([self._schema[i] for i in self._active])
        for inst in dataset:
            self._insert(self.root, inst.values[self._active])
        self._leaves = self.root.leaves()
        self._leaf_ids = {leaf.id: i for i, leaf in enumerate(self._leaves)}

    # ---------------------------------------------------------------- insert
    def _insert(self, node: CobwebNode, values: np.ndarray) -> None:
        node.add_instance(values)
        self._place(node, values)

    def _place(self, node: CobwebNode, values: np.ndarray) -> None:
        """Place an instance (already counted into *node*) in its subtree."""
        acuity = self.opt("acuity")
        if node.is_leaf:
            if node.count <= 1.0:
                return
            # leaf with prior mass: push the old concept down as a child and
            # add the new instance as a sibling singleton
            twin = CobwebNode(node.schema)
            twin.count = node.count - 1.0
            twin.stats = self._stats_minus(node, values)
            singleton = CobwebNode(node.schema)
            singleton.add_instance(values)
            node.children = [twin, singleton]
            if node.category_utility(acuity) < self.opt("cutoff"):
                node.children = []
            return
        best, second = self._best_children(node, values)
        options: list[tuple[float, str]] = []
        options.append((self._cu_with_addition(node, best, values), "add"))
        options.append((self._cu_with_new_child(node, values), "new"))
        if second is not None and len(node.children) > 2:
            options.append(
                (self._cu_with_merge(node, best, second, values), "merge"))
        if not node.children[best].is_leaf:
            options.append(
                (self._cu_with_split(node, best, values), "split"))
        options.sort(key=lambda t: t[0], reverse=True)
        cu, action = options[0]
        if action == "new":
            if cu < self.opt("cutoff"):
                # not worth a new concept: absorb into the best child
                self._insert(node.children[best], values)
                return
            child = CobwebNode(node.schema)
            child.add_instance(values)
            node.children.append(child)
        elif action == "merge":
            assert second is not None
            merged = CobwebNode(node.schema)
            merged.absorb(node.children[best])
            merged.absorb(node.children[second])
            merged.children = [node.children[best], node.children[second]]
            node.children = [c for i, c in enumerate(node.children)
                             if i not in (best, second)]
            node.children.append(merged)
            self._insert(merged, values)
        elif action == "split":
            target = node.children[best]
            node.children = [c for i, c in enumerate(node.children)
                             if i != best] + list(target.children)
            self._place(node, values)
        else:
            self._insert(node.children[best], values)

    @staticmethod
    def _stat_remove(stat: _AttrStats, value: float) -> None:
        if math.isnan(value):
            return
        if stat.n_values:
            stat.counts[int(value)] -= 1.0
        elif stat.weight > 1:
            old_mean = stat.mean
            stat.weight -= 1.0
            stat.mean = (old_mean * (stat.weight + 1) - value) / stat.weight
            stat.m2 -= (value - old_mean) * (value - stat.mean)
            stat.m2 = max(stat.m2, 0.0)
        else:
            stat.weight = 0.0
            stat.mean = 0.0
            stat.m2 = 0.0

    def _stats_minus(self, node: CobwebNode,
                     values: np.ndarray) -> list[_AttrStats]:
        stats = [s.copy() for s in node.stats]
        for stat, value in zip(stats, values):
            self._stat_remove(stat, float(value))
        return stats

    def _best_children(self, node: CobwebNode, values: np.ndarray
                       ) -> tuple[int, int | None]:
        scores = []
        for i in range(len(node.children)):
            scores.append((self._cu_with_addition(node, i, values), i))
        scores.sort(reverse=True)
        best = scores[0][1]
        second = scores[1][1] if len(scores) > 1 else None
        return best, second

    # CU probes: copy affected children, apply the operation, measure CU.
    def _probe(self, node: CobwebNode,
               children: list[CobwebNode]) -> float:
        ghost = CobwebNode(node.schema)
        ghost.count = node.count
        ghost.stats = node.stats
        ghost.children = children
        return ghost.category_utility(self.opt("acuity"))

    def _cu_with_addition(self, node: CobwebNode, idx: int,
                          values: np.ndarray) -> float:
        children = list(node.children)
        target = children[idx].copy_stats()
        target.add_instance(values)
        children[idx] = target
        return self._probe(node, children)

    def _cu_with_new_child(self, node: CobwebNode,
                           values: np.ndarray) -> float:
        child = CobwebNode(node.schema)
        child.add_instance(values)
        return self._probe(node, list(node.children) + [child])

    def _cu_with_merge(self, node: CobwebNode, a: int, b: int,
                       values: np.ndarray) -> float:
        merged = CobwebNode(node.schema)
        merged.absorb(node.children[a])
        merged.absorb(node.children[b])
        merged.add_instance(values)
        children = [c for i, c in enumerate(node.children)
                    if i not in (a, b)] + [merged]
        return self._probe(node, children)

    def _cu_with_split(self, node: CobwebNode, idx: int,
                       values: np.ndarray) -> float:
        target = node.children[idx]
        children = [c for i, c in enumerate(node.children) if i != idx]
        children.extend(target.children)
        return self._probe(node, children)

    # ----------------------------------------------------------- interface
    @property
    def n_clusters(self) -> int:
        return len(self._leaves)

    def _cluster(self, instance: Instance) -> int:
        values = instance.values[self._active]
        node = self.root
        acuity = self.opt("acuity")
        while not node.is_leaf:
            best_score, best_child = -math.inf, node.children[0]
            for child in node.children:
                ghost = child.copy_stats()
                ghost.add_instance(values)
                score = ghost.score(acuity)
                if score > best_score:
                    best_score, best_child = score, child
            node = best_child
        return self._leaf_ids[node.id]

    def model_text(self) -> str:
        """Human-readable model body."""
        lines = [f"Cobweb tree: {self.n_clusters} leaf concepts, "
                 f"depth {self.root.depth()}",
                 f"acuity={self.opt('acuity')} cutoff={self.opt('cutoff')}",
                 ""]

        def rec(node: CobwebNode, depth: int) -> None:
            marker = "leaf" if node.is_leaf else "node"
            lines.append("|   " * depth
                         + f"{marker} [{node.count:g} instances]")
            for child in node.children:
                rec(child, depth + 1)

        rec(self.root, 0)
        return "\n".join(lines)

    def to_graph(self) -> dict:
        """Concept-tree payload for ``getCobwebGraph``."""
        nodes: list[dict] = []
        edges: list[dict] = []

        def rec(node: CobwebNode) -> int:
            nid = len(nodes)
            label = f"{node.count:g}"
            if node.is_leaf:
                label = f"cluster {self._leaf_ids[node.id]} ({node.count:g})"
            nodes.append({"id": nid, "label": label,
                          "leaf": node.is_leaf})
            for child in node.children:
                cid = rec(child)
                edges.append({"source": nid, "target": cid, "label": ""})
            return nid

        rec(self.root)
        return {"nodes": nodes, "edges": edges}
