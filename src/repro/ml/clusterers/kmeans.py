"""SimpleKMeans and FarthestFirst clusterers (WEKA analogues)."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLUSTERERS, Clusterer
from repro.ml.clusterers._distance import MixedDistance
from repro.ml.options import CHOICE, INT, OptionSpec


@CLUSTERERS.register("SimpleKMeans", "partitional", "kmeans")
class SimpleKMeans(Clusterer):
    """Lloyd's k-means with WEKA's mixed-attribute distance (numeric mean /
    nominal mode centroids)."""

    OPTIONS = (
        OptionSpec("k", INT, 2, "Number of clusters.", minimum=1),
        OptionSpec("max_iterations", INT, 100, "Lloyd iteration cap.",
                   minimum=1),
        OptionSpec("seed", INT, 10, "Centroid-initialisation seed."),
        OptionSpec("init", CHOICE, "random",
                   "Centroid seeding: uniform 'random' or distance-"
                   "weighted 'kmeans++'.",
                   choices=("random", "kmeans++")),
    )

    def _seed_centres(self, matrix: np.ndarray, k: int,
                      rng: np.random.Generator) -> np.ndarray:
        if self.opt("init") == "random":
            idx = rng.choice(matrix.shape[0], size=k, replace=False)
            return matrix[idx].copy()
        # k-means++: each next centre drawn proportionally to its squared
        # distance from the nearest already-chosen centre
        chosen = [int(rng.integers(matrix.shape[0]))]
        for _ in range(1, k):
            d = self._metric.pairwise_to(matrix, matrix[chosen])
            sq = d.min(axis=1) ** 2
            total = sq.sum()
            if total <= 0:
                remaining = [i for i in range(matrix.shape[0])
                             if i not in chosen]
                chosen.append(int(rng.choice(remaining)))
                continue
            chosen.append(int(rng.choice(matrix.shape[0], p=sq / total)))
        return matrix[chosen].copy()

    def _fit(self, dataset: Dataset) -> None:
        k = self.opt("k")
        if k > dataset.num_instances:
            raise DataError(
                f"k={k} exceeds {dataset.num_instances} instances")
        self._metric = MixedDistance().fit(dataset)
        matrix = self._metric.normalise(dataset.to_matrix())
        rng = np.random.default_rng(self.opt("seed"))
        centres = self._seed_centres(matrix, k, rng)
        assignment = np.full(matrix.shape[0], -1)
        for iteration in range(self.opt("max_iterations")):
            dists = self._metric.pairwise_to(matrix, centres)
            new_assignment = dists.argmin(axis=1)
            if (new_assignment == assignment).all():
                break
            assignment = new_assignment
            for c in range(k):
                members = matrix[assignment == c]
                if members.shape[0]:
                    centres[c] = self._metric.centroid(members)
        self._centres = centres
        self._assignment = assignment
        self._iterations = iteration + 1
        dists = self._metric.pairwise_to(matrix, centres)
        self._sse = float((dists.min(axis=1) ** 2).sum())

    @property
    def n_clusters(self) -> int:
        return self._centres.shape[0]

    def _cluster(self, instance: Instance) -> int:
        row = self._metric.normalise(instance.values[None, :])
        return int(self._metric.pairwise_to(row, self._centres)[0].argmin())

    def _cluster_many(self, matrix: np.ndarray) -> np.ndarray:
        rows = self._metric.normalise(np.asarray(matrix, dtype=float))
        return self._metric.pairwise_to(rows, self._centres).argmin(axis=1)

    def model_text(self) -> str:
        """Human-readable model body."""
        sizes = np.bincount(self._assignment, minlength=self.n_clusters)
        lines = [f"kMeans converged after {self._iterations} iterations",
                 f"Within-cluster SSE (normalised space): {self._sse:.4f}",
                 ""]
        for c, size in enumerate(sizes):
            lines.append(f"Cluster {c}: {size} instances")
        return "\n".join(lines)


@CLUSTERERS.register("FarthestFirst", "partitional")
class FarthestFirst(Clusterer):
    """Hochbaum-Shmoys farthest-first traversal (fast k-centre seeding)."""

    OPTIONS = (
        OptionSpec("k", INT, 2, "Number of clusters.", minimum=1),
        OptionSpec("seed", INT, 1, "First-centre seed."),
    )

    def _fit(self, dataset: Dataset) -> None:
        k = min(self.opt("k"), dataset.num_instances)
        self._metric = MixedDistance().fit(dataset)
        matrix = self._metric.normalise(dataset.to_matrix())
        rng = np.random.default_rng(self.opt("seed"))
        first = int(rng.integers(matrix.shape[0]))
        centre_rows = [first]
        min_dist = self._metric.pairwise_to(
            matrix, matrix[[first]])[:, 0]
        while len(centre_rows) < k:
            nxt = int(min_dist.argmax())
            centre_rows.append(nxt)
            d = self._metric.pairwise_to(matrix, matrix[[nxt]])[:, 0]
            min_dist = np.minimum(min_dist, d)
        self._centres = matrix[centre_rows].copy()

    @property
    def n_clusters(self) -> int:
        return self._centres.shape[0]

    def _cluster(self, instance: Instance) -> int:
        row = self._metric.normalise(instance.values[None, :])
        return int(self._metric.pairwise_to(row, self._centres)[0].argmin())

    def _cluster_many(self, matrix: np.ndarray) -> np.ndarray:
        rows = self._metric.normalise(np.asarray(matrix, dtype=float))
        return self._metric.pairwise_to(rows, self._centres).argmin(axis=1)

    def model_text(self) -> str:
        """Human-readable model body."""
        return f"FarthestFirst with {self.n_clusters} centres"
