"""Mixed-attribute distance support shared by the distance-based clusterers.

Numeric attributes are min-max normalised against the training data; nominal
attributes contribute 0/1 mismatch; missing cells contribute the worst case
(1.0).  This is WEKA's ``EuclideanDistance`` behaviour, which its clusterers
share.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError


class MixedDistance:
    """Fit normalisation on a dataset, then measure pairwise distances."""

    def fit(self, dataset: Dataset) -> "MixedDistance":
        self.class_index = dataset.class_index if dataset.has_class else -1
        self.numeric = np.array([
            a.is_numeric and i != self.class_index
            for i, a in enumerate(dataset.attributes)])
        self.nominal = np.array([
            a.is_nominal and i != self.class_index
            for i, a in enumerate(dataset.attributes)])
        if not (self.numeric.any() or self.nominal.any()):
            raise DataError("no usable attributes for distance computation")
        matrix = dataset.to_matrix()
        m = matrix.shape[1]
        self.min = np.full(m, np.nan)
        self.max = np.full(m, np.nan)
        for j in np.where(self.numeric)[0]:
            col = matrix[:, j]
            present = col[~np.isnan(col)]
            if present.size:
                self.min[j] = float(present.min())
                self.max[j] = float(present.max())
        self.span = np.where(
            np.isfinite(self.max - self.min) & (self.max > self.min),
            self.max - self.min, 1.0)
        return self

    def normalise(self, matrix: np.ndarray) -> np.ndarray:
        out = matrix.astype(float).copy()
        for j in np.where(self.numeric)[0]:
            if np.isfinite(self.min[j]):
                out[:, j] = (out[:, j] - self.min[j]) / self.span[j]
        return out

    def pairwise_to(self, matrix: np.ndarray,
                    points: np.ndarray) -> np.ndarray:
        """Distance of every row of *matrix* to every row of *points*,
        both already normalised. Returns ``(len(matrix), len(points))``."""
        n, p = matrix.shape[0], points.shape[0]
        out = np.zeros((n, p))
        for j in range(matrix.shape[1]):
            if self.numeric[j]:
                col = matrix[:, j][:, None]
                ref = points[:, j][None, :]
                d = np.abs(col - ref)
                d = np.where(np.isnan(col) | np.isnan(ref), 1.0, d)
            elif self.nominal[j]:
                col = matrix[:, j][:, None]
                ref = points[:, j][None, :]
                d = (col != ref).astype(float)
                d = np.where(np.isnan(col) | np.isnan(ref), 1.0, d)
            else:
                continue
            out += d * d
        return np.sqrt(out)

    def centroid(self, matrix: np.ndarray) -> np.ndarray:
        """Cluster centre: numeric mean / nominal mode (normalised space)."""
        centre = np.zeros(matrix.shape[1])
        for j in range(matrix.shape[1]):
            col = matrix[:, j]
            present = col[~np.isnan(col)]
            if present.size == 0:
                centre[j] = np.nan
            elif self.numeric[j]:
                centre[j] = float(present.mean())
            elif self.nominal[j]:
                values, counts = np.unique(present, return_counts=True)
                centre[j] = float(values[np.argmax(counts)])
            else:
                centre[j] = np.nan
        return centre
