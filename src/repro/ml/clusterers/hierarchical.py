"""Agglomerative hierarchical clustering and DBSCAN."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLUSTERERS, Clusterer
from repro.ml.clusterers._distance import MixedDistance
from repro.ml.options import CHOICE, FLOAT, INT, OptionSpec


@CLUSTERERS.register("Hierarchical", "hierarchical", "agglomerative")
class Hierarchical(Clusterer):
    """Bottom-up agglomerative clustering cut at *k* clusters.

    Linkage options: ``single`` (min), ``complete`` (max), ``average``
    (unweighted mean, UPGMA) — the classic trio the related-work section's
    "single hierarchical clustering" tools offered.
    """

    OPTIONS = (
        OptionSpec("k", INT, 2, "Number of clusters to cut at.", minimum=1),
        OptionSpec("linkage", CHOICE, "average",
                   "Cluster-distance update rule.",
                   choices=("single", "complete", "average")),
    )

    def _fit(self, dataset: Dataset) -> None:
        n = dataset.num_instances
        k = self.opt("k")
        if k > n:
            raise DataError(f"k={k} exceeds {n} instances")
        self._metric = MixedDistance().fit(dataset)
        matrix = self._metric.normalise(dataset.to_matrix())
        dist = self._metric.pairwise_to(matrix, matrix)
        np.fill_diagonal(dist, np.inf)
        active = list(range(n))
        members: dict[int, list[int]] = {i: [i] for i in range(n)}
        linkage = self.opt("linkage")
        self.merge_history: list[tuple[int, int, float]] = []
        while len(active) > k:
            sub = dist[np.ix_(active, active)]
            flat = int(np.argmin(sub))
            i_pos, j_pos = divmod(flat, len(active))
            if i_pos == j_pos:
                break
            a, b = active[i_pos], active[j_pos]
            self.merge_history.append((a, b, float(sub[i_pos, j_pos])))
            # merge b into a, updating distances per the linkage rule
            na, nb = len(members[a]), len(members[b])
            for other in active:
                if other in (a, b):
                    continue
                da, db = dist[a, other], dist[b, other]
                if linkage == "single":
                    d = min(da, db)
                elif linkage == "complete":
                    d = max(da, db)
                else:
                    d = (na * da + nb * db) / (na + nb)
                dist[a, other] = dist[other, a] = d
            members[a].extend(members[b])
            del members[b]
            active.remove(b)
        self._clusters = [sorted(members[c]) for c in active]
        self._centres = np.vstack([
            self._metric.centroid(matrix[rows]) for rows in self._clusters])

    @property
    def n_clusters(self) -> int:
        return len(self._clusters)

    def _cluster(self, instance: Instance) -> int:
        row = self._metric.normalise(instance.values[None, :])
        return int(self._metric.pairwise_to(row, self._centres)[0].argmin())

    def model_text(self) -> str:
        """Human-readable model body."""
        lines = [f"Agglomerative ({self.opt('linkage')} linkage), "
                 f"{self.n_clusters} clusters"]
        for c, rows in enumerate(self._clusters):
            lines.append(f"Cluster {c}: {len(rows)} instances")
        return "\n".join(lines)


@CLUSTERERS.register("DBSCAN", "density")
class DBSCAN(Clusterer):
    """Density-based clustering; cluster 0..C-1 plus a noise bucket.

    :meth:`cluster_instance` returns ``n_clusters`` for noise points (a
    dedicated trailing bucket) so downstream tools always receive a valid
    cluster index.
    """

    OPTIONS = (
        OptionSpec("eps", FLOAT, 0.3,
                   "Neighbourhood radius (normalised space).",
                   minimum=1e-9),
        OptionSpec("min_points", INT, 4,
                   "Minimum neighbours for a core point.", minimum=1),
    )

    def _fit(self, dataset: Dataset) -> None:
        self._metric = MixedDistance().fit(dataset)
        matrix = self._metric.normalise(dataset.to_matrix())
        n = matrix.shape[0]
        eps = self.opt("eps")
        min_pts = self.opt("min_points")
        dist = self._metric.pairwise_to(matrix, matrix)
        neighbours = [np.where(dist[i] <= eps)[0] for i in range(n)]
        labels = np.full(n, -1)
        cluster = 0
        for i in range(n):
            if labels[i] != -1 or len(neighbours[i]) < min_pts:
                continue
            # expand a new cluster from core point i
            labels[i] = cluster
            frontier = list(neighbours[i])
            while frontier:
                j = int(frontier.pop())
                if labels[j] == -1:
                    labels[j] = cluster
                    if len(neighbours[j]) >= min_pts:
                        frontier.extend(
                            int(x) for x in neighbours[j]
                            if labels[x] == -1)
            cluster += 1
        self._labels = labels
        self._n_found = cluster
        self._matrix = matrix
        core = [i for i in range(n)
                if labels[i] >= 0 and len(neighbours[i]) >= min_pts]
        self._core_rows = matrix[core] if core else np.empty((0,
                                                              matrix.shape[1]))
        self._core_labels = labels[core] if core else np.empty(0, dtype=int)

    @property
    def n_clusters(self) -> int:
        return self._n_found

    def _cluster(self, instance: Instance) -> int:
        if self._core_rows.shape[0] == 0:
            return self._n_found  # everything is noise
        row = self._metric.normalise(instance.values[None, :])
        dists = self._metric.pairwise_to(row, self._core_rows)[0]
        best = int(dists.argmin())
        if dists[best] <= self.opt("eps"):
            return int(self._core_labels[best])
        return self._n_found  # noise bucket

    def model_text(self) -> str:
        """Human-readable model body."""
        noise = int((self._labels == -1).sum())
        lines = [f"DBSCAN eps={self.opt('eps')} "
                 f"min_points={self.opt('min_points')}",
                 f"Clusters found: {self._n_found}   Noise: {noise}"]
        for c in range(self._n_found):
            lines.append(f"Cluster {c}: {int((self._labels == c).sum())} "
                         f"instances")
        return "\n".join(lines)
