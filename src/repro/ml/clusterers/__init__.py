"""Clustering family (registered with :data:`repro.ml.base.CLUSTERERS`)."""

from repro.ml.clusterers.kmeans import FarthestFirst, SimpleKMeans
from repro.ml.clusterers.cobweb import Cobweb
from repro.ml.clusterers.em import EM
from repro.ml.clusterers.hierarchical import DBSCAN, Hierarchical

__all__ = ["SimpleKMeans", "FarthestFirst", "Cobweb", "EM",
           "Hierarchical", "DBSCAN"]
