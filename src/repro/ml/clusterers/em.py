"""EM mixture-model clustering (WEKA ``EM`` analogue).

Numeric attributes get per-cluster diagonal Gaussians; nominal attributes get
per-cluster Laplace-smoothed multinomials; missing cells simply drop out of
the likelihood (ignorable-missingness assumption, as in WEKA).
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLUSTERERS, Clusterer
from repro.ml.options import FLOAT, INT, OptionSpec

_MIN_STD = 1e-3
_LOG_2PI = math.log(2 * math.pi)


@CLUSTERERS.register("EM", "probabilistic", "mixture")
class EM(Clusterer):
    """Expectation-maximisation over a mixed Gaussian/multinomial mixture."""

    OPTIONS = (
        OptionSpec("k", INT, 2, "Number of mixture components.", minimum=1),
        OptionSpec("max_iterations", INT, 100, "EM iteration cap.",
                   minimum=1),
        OptionSpec("tolerance", FLOAT, 1e-6,
                   "Stop when log-likelihood improves less than this.",
                   minimum=0.0),
        OptionSpec("seed", INT, 1, "Responsibility-initialisation seed."),
    )

    def _fit(self, dataset: Dataset) -> None:
        k = self.opt("k")
        n = dataset.num_instances
        if k > n:
            raise DataError(f"k={k} exceeds {n} instances")
        class_index = dataset.class_index if dataset.has_class else -1
        self._active = [i for i in range(dataset.num_attributes)
                        if i != class_index
                        and not dataset.attribute(i).is_string]
        if not self._active:
            raise DataError("no usable attributes for EM")
        self._attrs = [dataset.attribute(i) for i in self._active]
        X = dataset.to_matrix()[:, self._active]
        rng = np.random.default_rng(self.opt("seed"))
        # initialise responsibilities by proximity to k random seed points
        # (k-means-style seeding converges far more reliably than a random
        # fuzzy assignment)
        seeds = rng.choice(n, size=k, replace=False)
        resp = np.full((n, k), 0.05)
        filled = np.nan_to_num(X, nan=0.0)
        dists = np.linalg.norm(
            filled[:, None, :] - filled[seeds][None, :, :], axis=2)
        resp[np.arange(n), dists.argmin(axis=1)] = 1.0
        resp /= resp.sum(axis=1, keepdims=True)
        prev_ll = -math.inf
        for iteration in range(self.opt("max_iterations")):
            self._m_step(X, resp)
            log_like, resp = self._e_step(X)
            if abs(log_like - prev_ll) < self.opt("tolerance"):
                break
            prev_ll = log_like
        self._final_ll = prev_ll
        self._iterations = iteration + 1

    def _m_step(self, X: np.ndarray, resp: np.ndarray) -> None:
        n, k = resp.shape
        self._priors = resp.sum(axis=0) / n
        self._means = np.zeros((k, len(self._active)))
        self._stds = np.ones((k, len(self._active)))
        self._multinomials: list[list[np.ndarray | None]] = []
        for c in range(k):
            weights = resp[:, c]
            row: list[np.ndarray | None] = []
            for j, attr in enumerate(self._attrs):
                col = X[:, j]
                present = ~np.isnan(col)
                w = weights[present]
                v = col[present]
                if attr.is_numeric:
                    total = w.sum()
                    mean = float((w * v).sum() / total) if total > 0 else 0.0
                    var = float((w * (v - mean) ** 2).sum() / total) \
                        if total > 0 else 1.0
                    self._means[c, j] = mean
                    self._stds[c, j] = max(math.sqrt(var), _MIN_STD)
                    row.append(None)
                else:
                    counts = np.full(attr.num_values, 1.0)  # Laplace
                    np.add.at(counts, v.astype(int), w)
                    row.append(counts / counts.sum())
            self._multinomials.append(row)

    def _log_density(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        k = len(self._priors)
        out = np.tile(np.log(np.maximum(self._priors, 1e-300)), (n, 1))
        for j, attr in enumerate(self._attrs):
            col = X[:, j]
            present = ~np.isnan(col)
            if attr.is_numeric:
                for c in range(k):
                    z = (col[present] - self._means[c, j]) \
                        / self._stds[c, j]
                    out[present, c] += (-0.5 * (z * z + _LOG_2PI)
                                        - math.log(self._stds[c, j]))
            else:
                idx = col[present].astype(int)
                for c in range(k):
                    probs = self._multinomials[c][j]
                    assert probs is not None
                    out[present, c] += np.log(
                        np.maximum(probs[idx], 1e-300))
        return out

    def _e_step(self, X: np.ndarray) -> tuple[float, np.ndarray]:
        log_dens = self._log_density(X)
        mx = log_dens.max(axis=1, keepdims=True)
        norm = np.exp(log_dens - mx)
        totals = norm.sum(axis=1, keepdims=True)
        resp = norm / totals
        log_like = float((np.log(totals) + mx).sum())
        return log_like, resp

    @property
    def n_clusters(self) -> int:
        return len(self._priors)

    def _cluster(self, instance: Instance) -> int:
        x = instance.values[self._active][None, :]
        return int(self._log_density(x)[0].argmax())

    def _cluster_many(self, matrix: np.ndarray) -> np.ndarray:
        X = np.asarray(matrix, dtype=float)[:, self._active]
        return self._log_density(X).argmax(axis=1)

    def log_likelihood(self, dataset: Dataset) -> float:
        """Total log-likelihood of *dataset* under the fitted mixture."""
        X = dataset.to_matrix()[:, self._active]
        return self._e_step(X)[0]

    def model_text(self) -> str:
        """Human-readable model body."""
        lines = [f"EM mixture, {self.n_clusters} components, "
                 f"{self._iterations} iterations",
                 f"Log likelihood: {self._final_ll:.4f}", ""]
        for c, prior in enumerate(self._priors):
            lines.append(f"Component {c}: prior {prior:.3f}")
            for j, attr in enumerate(self._attrs):
                if attr.is_numeric:
                    lines.append(
                        f"  {attr.name}: N({self._means[c, j]:.3f}, "
                        f"{self._stds[c, j]:.3f})")
        return "\n".join(lines)
