"""Algorithm-choice advice (§3, Category 1 requirements).

Two of the paper's knowledge-discovery requirements are implemented here:

* *"Choosing a data mining algorithm ... we should require the toolkit to
  provide some support in algorithm choice based on the characteristics of
  the problem being investigated"* — :func:`characterise` extracts dataset
  meta-features (a small StatLog-style characterisation) and
  :func:`recommend` applies transparent rules over them, returning ranked
  suggestions with human-readable reasons.

* *"Utilise users experience: ... The framework should assist the users to
  make use of previous experience to select the appropriate tool"* —
  :class:`ExperienceStore` records past (dataset characteristics,
  algorithm, score) outcomes and biases future recommendations toward
  algorithms that worked on *similar* datasets (nearest-neighbour over the
  meta-feature vector).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset
from repro.data.summary import class_entropy
from repro.errors import DataError


@dataclass(frozen=True)
class Characteristics:
    """StatLog-style dataset meta-features."""

    n_instances: int
    n_attributes: int
    n_numeric: int
    n_nominal: int
    missing_fraction: float
    n_classes: int
    class_entropy: float
    majority_fraction: float
    mean_distinct_values: float     # nominal attributes only
    max_info_gain: float            # best single-attribute signal
    dimensionality: float           # attributes / instances

    def vector(self) -> np.ndarray:
        """Numeric embedding used for similarity search."""
        return np.array([
            math.log10(max(self.n_instances, 1)),
            math.log10(max(self.n_attributes, 1)),
            self.n_numeric / max(self.n_attributes, 1),
            self.missing_fraction,
            self.n_classes,
            self.class_entropy,
            self.majority_fraction,
            self.max_info_gain,
            min(self.dimensionality, 2.0),
        ])

    def as_dict(self) -> dict:
        """Plain-dict form (SOAP/JSON-ready)."""
        return {k: getattr(self, k) for k in (
            "n_instances", "n_attributes", "n_numeric", "n_nominal",
            "missing_fraction", "n_classes", "class_entropy",
            "majority_fraction", "mean_distinct_values", "max_info_gain",
            "dimensionality")}


def characterise(dataset: Dataset) -> Characteristics:
    """Extract meta-features from a classification dataset."""
    if not dataset.has_class or not dataset.class_attribute.is_nominal:
        raise DataError("algorithm advice needs a nominal class attribute")
    if dataset.num_instances == 0:
        raise DataError("cannot characterise an empty dataset")
    n_numeric = sum(1 for i, a in enumerate(dataset.attributes)
                    if a.is_numeric and i != dataset.class_index)
    n_nominal = sum(1 for i, a in enumerate(dataset.attributes)
                    if a.is_nominal and i != dataset.class_index)
    counts = dataset.class_counts()
    total_cells = dataset.num_instances * dataset.num_attributes
    distinct = [a.num_values for i, a in enumerate(dataset.attributes)
                if a.is_nominal and i != dataset.class_index]
    from repro.ml.attrsel.evaluators import info_gain
    gains = [info_gain(dataset, i)
             for i in range(dataset.num_attributes)
             if i != dataset.class_index
             and not dataset.attribute(i).is_string]
    return Characteristics(
        n_instances=dataset.num_instances,
        n_attributes=dataset.num_attributes - 1,
        n_numeric=n_numeric,
        n_nominal=n_nominal,
        missing_fraction=dataset.num_missing() / total_cells,
        n_classes=dataset.num_classes,
        class_entropy=class_entropy(dataset),
        majority_fraction=float(counts.max() / counts.sum()),
        mean_distinct_values=(sum(distinct) / len(distinct)
                              if distinct else 0.0),
        max_info_gain=max(gains) if gains else 0.0,
        dimensionality=(dataset.num_attributes - 1)
        / dataset.num_instances,
    )


@dataclass(frozen=True)
class Recommendation:
    """One ranked algorithm suggestion."""

    algorithm: str
    score: float
    reasons: tuple[str, ...]


def recommend(dataset: Dataset, top: int = 5,
              experience: "ExperienceStore | None" = None
              ) -> list[Recommendation]:
    """Rank catalogue classifiers for *dataset* by transparent rules,
    optionally biased by recorded experience on similar datasets."""
    ch = characterise(dataset)
    scores: dict[str, tuple[float, list[str]]] = {}

    def vote(name: str, weight: float, reason: str) -> None:
        score, reasons = scores.setdefault(name, (0.0, []))
        scores[name] = (score + weight, reasons + [reason])

    # baseline plausibility for the family champions
    for name in ("J48", "NaiveBayes", "IB3", "Logistic", "RandomForest",
                 "OneR", "SMO", "MultilayerPerceptron", "DecisionTable"):
        vote(name, 1.0, "general-purpose classifier")

    if ch.max_info_gain > 0.15:
        vote("OneR", 2.0, "one attribute is highly predictive "
             f"(info gain {ch.max_info_gain:.2f})")
        vote("J48", 1.5, "strong single-attribute splits favour trees")
        vote("DecisionTable", 0.5, "few attributes carry the signal")
    if ch.n_nominal > 0 and ch.n_numeric == 0:
        vote("J48", 1.0, "all-nominal data suits tree learners")
        vote("NaiveBayes", 1.0, "nominal frequencies estimate cleanly")
        vote("Prism", 0.5, "rule induction applies directly")
    if ch.n_numeric > 0 and ch.n_nominal == 0:
        vote("Logistic", 1.0, "all-numeric data suits linear models")
        vote("SMO", 1.0, "margin methods handle numeric features")
        vote("IB3", 0.75, "distance is meaningful on numeric data")
        vote("MultilayerPerceptron", 0.5,
             "nonlinear numeric boundaries learnable")
    if ch.missing_fraction > 0.01:
        vote("J48", 1.0, "C4.5 handles missing values natively")
        vote("NaiveBayes", 1.0, "missing cells drop out of the product")
        vote("IB3", -0.5, "missing values degrade distances")
    if ch.n_instances < 50:
        vote("NaiveBayes", 1.0, "low variance on tiny datasets")
        vote("MultilayerPerceptron", -1.5,
             "too few instances to train a network")
        vote("RandomForest", -0.5, "bootstraps are tiny")
    if ch.n_instances > 2000:
        vote("IB3", -0.5, "lazy prediction is slow on large data")
        vote("RandomForest", 0.5, "enough data for a forest")
    if ch.n_classes > 2:
        vote("NaiveBayes", 0.5, "natively multiclass")
        vote("J48", 0.5, "natively multiclass")
    if ch.majority_fraction > 0.85:
        vote("ZeroR", 1.0, "class is heavily skewed; check the baseline")
    if ch.dimensionality > 0.25:
        vote("NaiveBayes", 0.5, "many attributes per instance")
        vote("AttributeSelectedClassifier", 1.5,
             "attribute selection likely to help "
             f"({ch.n_attributes} attributes, "
             f"{ch.n_instances} instances)")

    if experience is not None:
        for name, bonus, reason in experience.advice(ch):
            vote(name, bonus, reason)

    ranked = sorted(scores.items(), key=lambda kv: -kv[1][0])[:top]
    return [Recommendation(name, round(score, 3), tuple(reasons))
            for name, (score, reasons) in ranked]


@dataclass
class _ExperienceRecord:
    vector: list[float]
    algorithm: str
    score: float
    relation: str


class ExperienceStore:
    """Persistent record of past runs, queried by dataset similarity.

    Stored as a JSON-lines file so multiple toolkit sessions can share one
    store (the paper's "previous experience").
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path else None
        self._records: list[_ExperienceRecord] = []
        if self.path and self.path.exists():
            for line in self.path.read_text().splitlines():
                if line.strip():
                    raw = json.loads(line)
                    self._records.append(_ExperienceRecord(**raw))

    def record(self, dataset_or_ch, algorithm: str, score: float,
               relation: str = "") -> None:
        """Record that *algorithm* achieved *score* (e.g. CV accuracy)."""
        ch = (dataset_or_ch if isinstance(dataset_or_ch, Characteristics)
              else characterise(dataset_or_ch))
        rec = _ExperienceRecord(
            vector=[float(v) for v in ch.vector()],
            algorithm=algorithm, score=float(score),
            relation=relation)
        self._records.append(rec)
        if self.path:
            with self.path.open("a") as fp:
                fp.write(json.dumps(rec.__dict__) + "\n")

    def __len__(self) -> int:
        return len(self._records)

    def similar(self, ch: Characteristics, k: int = 10
                ) -> list[_ExperienceRecord]:
        """The k most similar past runs."""
        if not self._records:
            return []
        query = ch.vector()
        scored = sorted(
            self._records,
            key=lambda r: float(np.linalg.norm(
                np.array(r.vector) - query)))
        return scored[:k]

    def advice(self, ch: Characteristics
               ) -> list[tuple[str, float, str]]:
        """(algorithm, bonus, reason) votes from similar past runs."""
        neighbours = self.similar(ch)
        if not neighbours:
            return []
        by_algorithm: dict[str, list[float]] = {}
        for rec in neighbours:
            by_algorithm.setdefault(rec.algorithm, []).append(rec.score)
        out = []
        for name, results in by_algorithm.items():
            mean = sum(results) / len(results)
            bonus = 3.0 * (mean - 0.5)  # accuracy above coin-flip
            out.append((name, bonus,
                        f"past experience: mean score {mean:.2f} on "
                        f"{len(results)} similar dataset(s)"))
        return out


def advise_text(dataset: Dataset,
                experience: ExperienceStore | None = None) -> str:
    """Human-readable advice report (what the toolkit shows a domain
    expert who 'is generally not an algorithm expert')."""
    ch = characterise(dataset)
    lines = [f"=== Algorithm advice for {dataset.relation!r} ===", ""]
    lines.append("Dataset characteristics:")
    for key, value in ch.as_dict().items():
        shown = f"{value:.3f}" if isinstance(value, float) else str(value)
        lines.append(f"  {key:<22} {shown}")
    lines.append("")
    lines.append("Recommendations:")
    for i, rec in enumerate(recommend(dataset, experience=experience),
                            start=1):
        lines.append(f"  {i}. {rec.algorithm}  (score {rec.score})")
        for reason in rec.reasons:
            lines.append(f"       - {reason}")
    return "\n".join(lines)
