"""Attribute evaluators.

The paper: "Additional capability is made available ... to support attribute
search and selection within a numeric data set and 20 different approaches are
provided to achieve this, such as a genetic search operator."  An *approach*
is a (searcher, evaluator) pairing; this module provides the evaluators —
both single-attribute rankers (information gain, gain ratio, symmetrical
uncertainty, chi-squared, ReliefF, OneR accuracy) and subset evaluators (CFS
correlation-based merit, wrapper accuracy, consistency).

Numeric attributes are handled by equal-frequency binning inside the
contingency-table evaluators, so "within a numeric data set" holds.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError
from repro.ml.classifiers._tree import entropy

_BINS = 10


def _discretised_column(dataset: Dataset, idx: int) -> np.ndarray:
    """Column as small-int codes; numeric columns equal-frequency binned.
    Missing cells become code -1."""
    col = dataset.column(idx)
    attr = dataset.attribute(idx)
    out = np.full(col.shape, -1, dtype=int)
    present = ~np.isnan(col)
    if attr.is_nominal:
        out[present] = col[present].astype(int)
        return out
    values = col[present]
    if values.size == 0:
        return out
    qs = np.quantile(values, np.linspace(0, 1, _BINS + 1)[1:-1])
    out[present] = np.searchsorted(qs, values, side="right")
    return out


def _contingency(dataset: Dataset, idx: int) -> np.ndarray:
    """(values x classes) weighted contingency table, missing rows dropped."""
    codes = _discretised_column(dataset, idx)
    y = dataset.class_values()
    w = dataset.weights()
    keep = (codes >= 0) & ~np.isnan(y)
    codes, y, w = codes[keep], y[keep].astype(int), w[keep]
    if codes.size == 0:
        return np.zeros((1, dataset.num_classes))
    table = np.zeros((codes.max() + 1, dataset.num_classes))
    np.add.at(table, (codes, y), w)
    return table


def info_gain(dataset: Dataset, idx: int) -> float:
    """Information gain of attribute *idx* w.r.t. the class."""
    table = _contingency(dataset, idx)
    class_counts = table.sum(axis=0)
    branch = [table[v] for v in range(table.shape[0])]
    total = table.sum()
    if total <= 0:
        return 0.0
    avg = sum(b.sum() / total * entropy(b) for b in branch)
    return entropy(class_counts) - avg


def gain_ratio(dataset: Dataset, idx: int) -> float:
    """Gain ratio (info gain / split info)."""
    table = _contingency(dataset, idx)
    gain = info_gain(dataset, idx)
    sizes = table.sum(axis=1)
    si = entropy(sizes)
    return gain / si if si > 1e-12 else 0.0


def symmetrical_uncertainty(dataset: Dataset, idx: int) -> float:
    """2 * gain / (H(attr) + H(class))."""
    table = _contingency(dataset, idx)
    h_attr = entropy(table.sum(axis=1))
    h_class = entropy(table.sum(axis=0))
    denom = h_attr + h_class
    if denom <= 1e-12:
        return 0.0
    return 2.0 * info_gain(dataset, idx) / denom


def chi_squared(dataset: Dataset, idx: int) -> float:
    """Pearson chi-squared statistic of the attribute/class table."""
    table = _contingency(dataset, idx)
    total = table.sum()
    if total <= 0:
        return 0.0
    row = table.sum(axis=1, keepdims=True)
    col = table.sum(axis=0, keepdims=True)
    expected = row @ col / total
    mask = expected > 0
    return float((((table - expected) ** 2)[mask] / expected[mask]).sum())


def one_r_accuracy(dataset: Dataset, idx: int) -> float:
    """Training accuracy of the 1R rule on this attribute alone."""
    table = _contingency(dataset, idx)
    total = table.sum()
    if total <= 0:
        return 0.0
    return float(table.max(axis=1).sum() / total)


def relief_f(dataset: Dataset, idx: int, n_samples: int = 50,
             k: int = 5, seed: int = 42) -> float:
    """ReliefF weight of one attribute (sampled hits/misses)."""
    weights = relief_f_all(dataset, n_samples=n_samples, k=k, seed=seed)
    return weights[idx]


def relief_f_all(dataset: Dataset, n_samples: int = 50, k: int = 5,
                 seed: int = 42) -> np.ndarray:
    """ReliefF weights of every attribute (class attribute gets 0)."""
    from repro.ml.clusterers._distance import MixedDistance
    metric = MixedDistance().fit(dataset)
    matrix = metric.normalise(dataset.to_matrix())
    y = dataset.class_values()
    keep = ~np.isnan(y)
    matrix, y = matrix[keep], y[keep].astype(int)
    n, m = matrix.shape
    weights = np.zeros(m)
    if n < 2:
        return weights
    rng = np.random.default_rng(seed)
    samples = rng.choice(n, size=min(n_samples, n), replace=False)
    dist = metric.pairwise_to(matrix, matrix)
    cls_idx = dataset.class_index
    for i in samples:
        same = np.where((y == y[i]) & (np.arange(n) != i))[0]
        diff = np.where(y != y[i])[0]
        if same.size == 0 or diff.size == 0:
            continue
        hits = same[np.argsort(dist[i, same])[:k]]
        misses = diff[np.argsort(dist[i, diff])[:k]]
        for j in range(m):
            if j == cls_idx:
                continue
            col = matrix[:, j]
            if math.isnan(col[i]):
                continue
            hd = np.abs(col[hits] - col[i])
            md = np.abs(col[misses] - col[i])
            if dataset.attribute(j).is_nominal:
                hd = (hd > 0).astype(float)
                md = (md > 0).astype(float)
            weights[j] += float(np.nanmean(md)) - float(np.nanmean(hd))
    return weights / max(len(samples), 1)


RANKERS = {
    "InfoGain": info_gain,
    "GainRatio": gain_ratio,
    "SymmetricalUncertainty": symmetrical_uncertainty,
    "ChiSquared": chi_squared,
    "OneRAccuracy": one_r_accuracy,
    "ReliefF": relief_f,
}


# --------------------------------------------------------------------------
# subset evaluators
# --------------------------------------------------------------------------

class SubsetEvaluator:
    """Score a subset of attribute indices (class excluded); higher wins."""

    name = "abstract"

    def __init__(self, dataset: Dataset):
        if not dataset.has_class:
            raise DataError("subset evaluation needs a class attribute")
        self.dataset = dataset
        self.candidates = [
            i for i in range(dataset.num_attributes)
            if i != dataset.class_index
            and not dataset.attribute(i).is_string]

    def evaluate(self, subset: Sequence[int]) -> float:
        """Score an attribute-index subset (higher is better)."""
        raise NotImplementedError


class CfsSubsetEvaluator(SubsetEvaluator):
    """Hall's correlation-based feature selection merit:
    ``k*r_cf / sqrt(k + k(k-1) r_ff)`` using symmetrical uncertainty as the
    correlation measure."""

    name = "CfsSubset"

    def __init__(self, dataset: Dataset):
        super().__init__(dataset)
        self._su_class = {i: symmetrical_uncertainty(dataset, i)
                          for i in self.candidates}
        self._su_pair: dict[tuple[int, int], float] = {}

    def _pair(self, a: int, b: int) -> float:
        key = (min(a, b), max(a, b))
        if key not in self._su_pair:
            self._su_pair[key] = _su_between(self.dataset, *key)
        return self._su_pair[key]

    def evaluate(self, subset: Sequence[int]) -> float:
        """Score an attribute-index subset (higher is better)."""
        k = len(subset)
        if k == 0:
            return 0.0
        r_cf = sum(self._su_class[i] for i in subset) / k
        if k == 1:
            return r_cf
        pairs = [(a, b) for ai, a in enumerate(subset)
                 for b in subset[ai + 1:]]
        r_ff = sum(self._pair(a, b) for a, b in pairs) / len(pairs)
        return k * r_cf / math.sqrt(k + k * (k - 1) * r_ff)


def _su_between(dataset: Dataset, a: int, b: int) -> float:
    """Symmetrical uncertainty between two attributes."""
    ca = _discretised_column(dataset, a)
    cb = _discretised_column(dataset, b)
    keep = (ca >= 0) & (cb >= 0)
    ca, cb = ca[keep], cb[keep]
    if ca.size == 0:
        return 0.0
    table = np.zeros((ca.max() + 1, cb.max() + 1))
    np.add.at(table, (ca, cb), 1.0)
    h_a = entropy(table.sum(axis=1))
    h_b = entropy(table.sum(axis=0))
    total = table.sum()
    cond = sum(table[v].sum() / total * entropy(table[v])
               for v in range(table.shape[0]))
    gain = h_b - cond
    denom = h_a + h_b
    return 2.0 * gain / denom if denom > 1e-12 else 0.0


class WrapperEvaluator(SubsetEvaluator):
    """Accuracy of a classifier cross-validated on the projected subset."""

    name = "Wrapper"

    def __init__(self, dataset: Dataset, classifier_name: str = "NaiveBayes",
                 folds: int = 3, seed: int = 1):
        super().__init__(dataset)
        self.classifier_name = classifier_name
        self.folds = folds
        self.seed = seed

    def evaluate(self, subset: Sequence[int]) -> float:
        """Score an attribute-index subset (higher is better)."""
        if not subset:
            return 0.0
        from repro.ml.base import CLASSIFIERS
        from repro.ml.evaluation import cross_validate
        projected = self.dataset.select_attributes(
            list(subset) + [self.dataset.class_index])
        result = cross_validate(
            lambda: CLASSIFIERS.create(self.classifier_name),
            projected, k=min(self.folds, projected.num_instances),
            seed=self.seed)
        return result.accuracy


class ConsistencyEvaluator(SubsetEvaluator):
    """Liu & Setiono's consistency rate: 1 - inconsistency of the projected
    data (identical feature vectors with conflicting classes)."""

    name = "Consistency"

    def evaluate(self, subset: Sequence[int]) -> float:
        """Score an attribute-index subset (higher is better)."""
        if not subset:
            return 0.0
        codes = {i: _discretised_column(self.dataset, i) for i in subset}
        y = self.dataset.class_values()
        keep = ~np.isnan(y)
        y = y[keep].astype(int)
        table: dict[tuple, np.ndarray] = {}
        n_classes = self.dataset.num_classes
        rows = np.arange(len(keep))[keep]
        for pos, row in enumerate(rows):
            key = tuple(int(codes[i][row]) for i in subset)
            table.setdefault(key, np.zeros(n_classes))[y[pos]] += 1
        total = sum(c.sum() for c in table.values())
        inconsistent = sum(c.sum() - c.max() for c in table.values())
        return 1.0 - inconsistent / total if total else 0.0


SUBSET_EVALUATORS = {
    "CfsSubset": CfsSubsetEvaluator,
    "Wrapper": WrapperEvaluator,
    "Consistency": ConsistencyEvaluator,
}
