"""Attribute search and selection (the paper's "20 different approaches ...
such as a genetic search operator")."""

from repro.ml.attrsel.evaluators import (CfsSubsetEvaluator,
                                         ConsistencyEvaluator, RANKERS,
                                         SUBSET_EVALUATORS, SubsetEvaluator,
                                         WrapperEvaluator, chi_squared,
                                         gain_ratio, info_gain,
                                         one_r_accuracy, relief_f,
                                         symmetrical_uncertainty)
from repro.ml.attrsel.searchers import (BestFirst, ExhaustiveSearch,
                                        GeneticSearch, GreedyStepwise,
                                        Ranker, RandomSearch, RankSearch,
                                        Searcher, default_searchers)
from repro.ml.attrsel.selection import (Approach, approaches,
                                        rank_attributes, select_attributes)

__all__ = [
    "Approach", "approaches", "select_attributes", "rank_attributes",
    "BestFirst", "GreedyStepwise", "GeneticSearch", "RandomSearch",
    "ExhaustiveSearch", "RankSearch", "Ranker", "Searcher",
    "default_searchers",
    "SubsetEvaluator", "CfsSubsetEvaluator", "WrapperEvaluator",
    "ConsistencyEvaluator", "SUBSET_EVALUATORS", "RANKERS",
    "info_gain", "gain_ratio", "symmetrical_uncertainty", "chi_squared",
    "one_r_accuracy", "relief_f",
]
