"""Subset-search strategies, including the genetic search the paper names.

Each searcher explores subsets of a dataset's attribute indices, scoring them
with a :class:`~repro.ml.attrsel.evaluators.SubsetEvaluator`.  Combined with
the evaluators this yields the "20 different approaches" to attribute
search/selection advertised in the paper (see
:func:`repro.ml.attrsel.selection.approaches`).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.ml.attrsel.evaluators import SubsetEvaluator


class Searcher:
    """Search for a high-merit attribute subset."""

    name = "abstract"

    def search(self, evaluator: SubsetEvaluator) -> list[int]:
        """Run the search; returns the selected attribute indices."""
        raise NotImplementedError


class BestFirst(Searcher):
    """Forward best-first search with a stale-expansion stopping rule."""

    name = "BestFirst"

    def __init__(self, max_stale: int = 5):
        self.max_stale = max_stale

    def search(self, evaluator: SubsetEvaluator) -> list[int]:
        """Run the search; returns the selected attribute indices."""
        candidates = evaluator.candidates
        open_list: list[tuple[float, tuple[int, ...]]] = [(0.0, ())]
        best_score, best = 0.0, ()
        seen: set[tuple[int, ...]] = {()}
        stale = 0
        while open_list and stale < self.max_stale:
            open_list.sort(key=lambda t: t[0])
            score, subset = open_list.pop()
            improved = False
            for attr in candidates:
                if attr in subset:
                    continue
                child = tuple(sorted(subset + (attr,)))
                if child in seen:
                    continue
                seen.add(child)
                child_score = evaluator.evaluate(child)
                open_list.append((child_score, child))
                if child_score > best_score + 1e-12:
                    best_score, best = child_score, child
                    improved = True
            stale = 0 if improved else stale + 1
        return sorted(best)


class GreedyStepwise(Searcher):
    """Greedy hill-climbing, forward (grow) or backward (shrink)."""

    name = "GreedyStepwise"

    def __init__(self, backward: bool = False):
        self.backward = backward
        if backward:
            self.name = "GreedyStepwise-backward"

    def search(self, evaluator: SubsetEvaluator) -> list[int]:
        """Run the search; returns the selected attribute indices."""
        candidates = evaluator.candidates
        current = list(candidates) if self.backward else []
        current_score = evaluator.evaluate(current)
        while True:
            best_delta, best_move = 0.0, None
            moves = (candidates if not self.backward else list(current))
            for attr in moves:
                if not self.backward and attr in current:
                    continue
                trial = ([a for a in current if a != attr]
                         if self.backward else sorted(current + [attr]))
                score = evaluator.evaluate(trial)
                if score - current_score > best_delta + 1e-12:
                    best_delta, best_move = score - current_score, trial
            if best_move is None:
                return sorted(current)
            current = best_move
            current_score += best_delta


class GeneticSearch(Searcher):
    """Goldberg-style simple GA over bit-string subsets — the searcher the
    paper singles out ("such as a genetic search operator")."""

    name = "GeneticSearch"

    def __init__(self, population: int = 20, generations: int = 20,
                 crossover: float = 0.6, mutation: float = 0.033,
                 seed: int = 1):
        self.population = population
        self.generations = generations
        self.crossover = crossover
        self.mutation = mutation
        self.seed = seed

    def search(self, evaluator: SubsetEvaluator) -> list[int]:
        """Run the search; returns the selected attribute indices."""
        candidates = evaluator.candidates
        m = len(candidates)
        rng = np.random.default_rng(self.seed)
        pop = rng.random((self.population, m)) < 0.5

        def fitness(mask: np.ndarray) -> float:
            subset = [candidates[i] for i in range(m) if mask[i]]
            return evaluator.evaluate(subset)

        scores = np.array([fitness(ind) for ind in pop])
        best_idx = int(scores.argmax())
        best, best_score = pop[best_idx].copy(), float(scores[best_idx])
        for _ in range(self.generations):
            # roulette-wheel selection (with floor to keep probabilities sane)
            probs = scores - scores.min() + 1e-6
            probs = probs / probs.sum()
            parents = rng.choice(self.population,
                                 size=(self.population, 2), p=probs)
            children = []
            for a, b in parents:
                child = pop[a].copy()
                if rng.random() < self.crossover:
                    point = int(rng.integers(1, m)) if m > 1 else 0
                    child[point:] = pop[b][point:]
                flip = rng.random(m) < self.mutation
                child[flip] = ~child[flip]
                children.append(child)
            pop = np.array(children)
            scores = np.array([fitness(ind) for ind in pop])
            gen_best = int(scores.argmax())
            if scores[gen_best] > best_score:
                best, best_score = pop[gen_best].copy(), \
                    float(scores[gen_best])
            # elitism: keep the all-time best alive
            worst = int(scores.argmin())
            pop[worst] = best
            scores[worst] = best_score
        return sorted(candidates[i] for i in range(m) if best[i])


class RandomSearch(Searcher):
    """Uniform random subset probing."""

    name = "RandomSearch"

    def __init__(self, probes: int = 100, seed: int = 1):
        self.probes = probes
        self.seed = seed

    def search(self, evaluator: SubsetEvaluator) -> list[int]:
        """Run the search; returns the selected attribute indices."""
        candidates = evaluator.candidates
        rng = np.random.default_rng(self.seed)
        best_score, best = -1.0, []
        for _ in range(self.probes):
            mask = rng.random(len(candidates)) < 0.5
            subset = [c for c, keep in zip(candidates, mask) if keep]
            score = evaluator.evaluate(subset)
            if score > best_score:
                best_score, best = score, subset
        return sorted(best)


class ExhaustiveSearch(Searcher):
    """Every subset up to ``max_size`` (small datasets only)."""

    name = "ExhaustiveSearch"

    def __init__(self, max_size: int = 4):
        self.max_size = max_size

    def search(self, evaluator: SubsetEvaluator) -> list[int]:
        """Run the search; returns the selected attribute indices."""
        candidates = evaluator.candidates
        best_score, best = -1.0, []
        limit = min(self.max_size, len(candidates))
        for size in range(1, limit + 1):
            for subset in itertools.combinations(candidates, size):
                score = evaluator.evaluate(list(subset))
                if score > best_score:
                    best_score, best = score, list(subset)
        return sorted(best)


class RankSearch(Searcher):
    """Rank attributes with a single-attribute measure, then evaluate the
    prefixes of the ranking and keep the best one."""

    name = "RankSearch"

    def __init__(self, ranker_name: str = "InfoGain"):
        self.ranker_name = ranker_name
        self.name = f"RankSearch({ranker_name})"

    def search(self, evaluator: SubsetEvaluator) -> list[int]:
        """Run the search; returns the selected attribute indices."""
        from repro.ml.attrsel.evaluators import RANKERS
        ranker = RANKERS[self.ranker_name]
        scored = sorted(
            ((ranker(evaluator.dataset, i), i)
             for i in evaluator.candidates), reverse=True)
        ranking = [i for _, i in scored]
        best_score, best = -1.0, []
        for cut in range(1, len(ranking) + 1):
            subset = sorted(ranking[:cut])
            score = evaluator.evaluate(subset)
            if score > best_score:
                best_score, best = score, subset
        return best


class Ranker(Searcher):
    """Not a subset search: returns the top-N attributes by a
    single-attribute measure (WEKA's Ranker)."""

    name = "Ranker"

    def __init__(self, ranker_name: str = "InfoGain", top: int = 5):
        self.ranker_name = ranker_name
        self.top = top
        self.name = f"Ranker({ranker_name})"

    def search(self, evaluator: SubsetEvaluator) -> list[int]:
        """Run the search; returns the selected attribute indices."""
        from repro.ml.attrsel.evaluators import RANKERS
        ranker = RANKERS[self.ranker_name]
        scored = sorted(
            ((ranker(evaluator.dataset, i), i)
             for i in evaluator.candidates), reverse=True)
        return sorted(i for _, i in scored[:self.top])


def default_searchers() -> list[Searcher]:
    """The searcher inventory used to enumerate selection approaches."""
    return [BestFirst(), GreedyStepwise(), GreedyStepwise(backward=True),
            GeneticSearch(), RandomSearch(), ExhaustiveSearch(),
            RankSearch()]
