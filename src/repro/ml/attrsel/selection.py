"""Attribute-selection façade: named approaches and one-call selection.

An *approach* is a (searcher, evaluator) pairing.  :func:`approaches`
enumerates the full catalogue (>= 20 entries, honouring the paper's "20
different approaches ... such as a genetic search operator");
:func:`select_attributes` runs one approach end-to-end and returns both the
chosen attribute names and the projected dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import Dataset
from repro.errors import OptionError
from repro.ml.attrsel.evaluators import (CfsSubsetEvaluator,
                                         ConsistencyEvaluator, RANKERS,
                                         SubsetEvaluator, WrapperEvaluator)
from repro.ml.attrsel.searchers import (BestFirst, ExhaustiveSearch,
                                        GeneticSearch, GreedyStepwise,
                                        Ranker, RandomSearch, RankSearch,
                                        Searcher)


@dataclass(frozen=True)
class Approach:
    """A named attribute-selection approach."""

    name: str
    searcher: str
    evaluator: str
    description: str


def approaches() -> list[Approach]:
    """The selection-approach catalogue exposed by the attribute-selection
    Web Service (CAT-75 bench asserts ``len() >= 20``)."""
    subset_searchers = ["BestFirst", "GreedyStepwise",
                        "GreedyStepwise-backward", "GeneticSearch",
                        "RandomSearch", "ExhaustiveSearch", "RankSearch"]
    subset_evaluators = ["CfsSubset", "Consistency"]
    out: list[Approach] = []
    for searcher in subset_searchers:
        for evaluator in subset_evaluators:
            out.append(Approach(
                f"{searcher}+{evaluator}", searcher, evaluator,
                f"{searcher} search scored by the {evaluator} subset "
                f"evaluator"))
    # wrapper approaches are expensive; pair with the cheap searchers only
    for searcher in ("BestFirst", "GreedyStepwise", "GeneticSearch"):
        out.append(Approach(
            f"{searcher}+Wrapper", searcher, "Wrapper",
            f"{searcher} search scored by wrapped-classifier accuracy"))
    # ranking approaches: one per single-attribute measure
    for ranker in RANKERS:
        out.append(Approach(
            f"Ranker+{ranker}", f"Ranker({ranker})", ranker,
            f"Top attributes ranked by {ranker}"))
    return out


def _make_searcher(name: str) -> Searcher:
    if name == "BestFirst":
        return BestFirst()
    if name == "GreedyStepwise":
        return GreedyStepwise()
    if name == "GreedyStepwise-backward":
        return GreedyStepwise(backward=True)
    if name == "GeneticSearch":
        return GeneticSearch()
    if name == "RandomSearch":
        return RandomSearch()
    if name == "ExhaustiveSearch":
        return ExhaustiveSearch()
    if name == "RankSearch":
        return RankSearch()
    if name.startswith("Ranker"):
        ranker = name[name.find("(") + 1:name.find(")")] \
            if "(" in name else "InfoGain"
        return Ranker(ranker)
    raise OptionError(f"unknown searcher {name!r}")


def _make_evaluator(name: str, dataset: Dataset) -> SubsetEvaluator:
    if name == "CfsSubset":
        return CfsSubsetEvaluator(dataset)
    if name == "Consistency":
        return ConsistencyEvaluator(dataset)
    if name == "Wrapper":
        return WrapperEvaluator(dataset)
    if name in RANKERS:
        # ranking approaches only need the candidate list; CFS is a cheap
        # stand-in whose .dataset/.candidates the Ranker searcher uses
        return CfsSubsetEvaluator(dataset)
    raise OptionError(f"unknown evaluator {name!r}")


def select_attributes(dataset: Dataset, approach: str
                      ) -> tuple[list[str], Dataset]:
    """Run a named approach; return (selected names, projected dataset).

    The class attribute is always retained in the projection.
    """
    catalogue = {a.name: a for a in approaches()}
    if approach not in catalogue:
        raise OptionError(
            f"unknown approach {approach!r}; known: {sorted(catalogue)}")
    entry = catalogue[approach]
    searcher = _make_searcher(entry.searcher)
    evaluator = _make_evaluator(entry.evaluator, dataset)
    selected = searcher.search(evaluator)
    if not selected:
        selected = list(evaluator.candidates)
    names = [dataset.attribute(i).name for i in selected]
    projected = dataset.select_attributes(
        selected + [dataset.class_index])
    return names, projected


def rank_attributes(dataset: Dataset, measure: str = "InfoGain"
                    ) -> list[tuple[str, float]]:
    """All attributes ranked by a single-attribute measure (best first)."""
    if measure not in RANKERS:
        raise OptionError(
            f"unknown measure {measure!r}; known: {sorted(RANKERS)}")
    fn = RANKERS[measure]
    scored = []
    for i in range(dataset.num_attributes):
        if i == dataset.class_index or dataset.attribute(i).is_string:
            continue
        scored.append((dataset.attribute(i).name, float(fn(dataset, i))))
    scored.sort(key=lambda t: -t[1])
    return scored
