"""Algorithm option metadata.

The paper's general Classifier Web Service exposes ``getOptions(classifier)``
returning "a list of the required and optional properties that the user should
pass".  Every algorithm in this library therefore declares its options as
:class:`OptionSpec` records, which the service layer serialises verbatim and
the ``OptionSelector`` workflow tool renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import OptionError

INT = "int"
FLOAT = "float"
BOOL = "bool"
CHOICE = "choice"
STRING = "string"

_TYPES = (INT, FLOAT, BOOL, CHOICE, STRING)


@dataclass(frozen=True)
class OptionSpec:
    """One declared algorithm option.

    ``required`` options have no usable default and must be supplied;
    everything else falls back to ``default``.  ``minimum``/``maximum`` bound
    numeric options inclusively.
    """

    name: str
    type: str
    default: Any = None
    description: str = ""
    choices: tuple[str, ...] = field(default_factory=tuple)
    required: bool = False
    minimum: float | None = None
    maximum: float | None = None

    def __post_init__(self) -> None:
        if self.type not in _TYPES:
            raise OptionError(f"unknown option type {self.type!r}")
        if self.type == CHOICE and not self.choices:
            raise OptionError(f"choice option {self.name!r} needs choices")

    def validate(self, value: Any) -> Any:
        """Coerce + validate *value*, returning the canonical form."""
        if value is None:
            if self.required:
                raise OptionError(f"option {self.name!r} is required")
            return self.default
        if self.type == INT:
            try:
                out: Any = int(value)
            except (TypeError, ValueError):
                raise OptionError(
                    f"option {self.name!r} expects an int, got {value!r}"
                ) from None
        elif self.type == FLOAT:
            try:
                out = float(value)
            except (TypeError, ValueError):
                raise OptionError(
                    f"option {self.name!r} expects a float, got {value!r}"
                ) from None
        elif self.type == BOOL:
            if isinstance(value, bool):
                out = value
            elif isinstance(value, str) and value.lower() in (
                    "true", "false", "t", "f", "1", "0", "yes", "no"):
                out = value.lower() in ("true", "t", "1", "yes")
            elif isinstance(value, (int, float)) and value in (0, 1):
                out = bool(value)
            else:
                raise OptionError(
                    f"option {self.name!r} expects a bool, got {value!r}")
        elif self.type == CHOICE:
            out = str(value)
            if out not in self.choices:
                raise OptionError(
                    f"option {self.name!r} must be one of {self.choices}, "
                    f"got {value!r}")
        else:  # STRING
            out = str(value)
        if self.type in (INT, FLOAT):
            if self.minimum is not None and out < self.minimum:
                raise OptionError(
                    f"option {self.name!r} must be >= {self.minimum}, "
                    f"got {out}")
            if self.maximum is not None and out > self.maximum:
                raise OptionError(
                    f"option {self.name!r} must be <= {self.maximum}, "
                    f"got {out}")
        return out

    def describe(self) -> dict[str, Any]:
        """JSON-ready description (shipped by ``getOptions``)."""
        out: dict[str, Any] = {
            "name": self.name,
            "type": self.type,
            "default": self.default,
            "description": self.description,
            "required": self.required,
        }
        if self.choices:
            out["choices"] = list(self.choices)
        if self.minimum is not None:
            out["minimum"] = self.minimum
        if self.maximum is not None:
            out["maximum"] = self.maximum
        return out


def resolve_options(specs: Sequence[OptionSpec],
                    supplied: Mapping[str, Any]) -> dict[str, Any]:
    """Validate *supplied* against *specs*; unknown names are errors.

    Returns the full option dict (defaults filled in).
    """
    by_name = {s.name: s for s in specs}
    unknown = sorted(set(supplied) - set(by_name))
    if unknown:
        raise OptionError(
            f"unknown option(s) {unknown}; known: {sorted(by_name)}")
    out: dict[str, Any] = {}
    for spec in specs:
        out[spec.name] = spec.validate(supplied.get(spec.name))
    return out


def parse_option_string(text: str) -> dict[str, str]:
    """Parse ``"key=value key2=value2"`` option strings (CLI/service style)."""
    out: dict[str, str] = {}
    for token in text.split():
        if "=" not in token:
            raise OptionError(
                f"malformed option token {token!r} (expected key=value)")
        key, _, value = token.partition("=")
        out[key] = value
    return out
