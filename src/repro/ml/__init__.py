"""Machine-learning library (WEKA analogue).

Families: :mod:`~repro.ml.classifiers`, :mod:`~repro.ml.clusterers`,
:mod:`~repro.ml.associations`, :mod:`~repro.ml.attrsel` (attribute
search/selection), :mod:`~repro.ml.filters` and
:mod:`~repro.ml.evaluation`.  The registries in :mod:`~repro.ml.base` plus
the preset catalogue in :mod:`~repro.ml.catalogue` are what the paper's
``getClassifiers``/``getOptions`` service operations expose.
"""

from repro.ml.base import (ASSOCIATORS, CLASSIFIERS, CLUSTERERS,
                           AssociationLearner, Classifier, Clusterer,
                           IncrementalClassifier, Registry)
from repro.ml.options import OptionSpec, parse_option_string, resolve_options
from repro.ml import (advisor, associations, attrsel, catalogue,
                      classifiers, clusterers, evaluation, filters)

__all__ = [
    "Classifier", "IncrementalClassifier", "Clusterer",
    "AssociationLearner", "Registry",
    "CLASSIFIERS", "CLUSTERERS", "ASSOCIATORS",
    "OptionSpec", "resolve_options", "parse_option_string",
    "classifiers", "clusterers", "associations", "attrsel", "filters",
    "evaluation", "catalogue", "advisor",
]
