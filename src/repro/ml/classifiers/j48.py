"""J48 — a C4.5 release-8 style decision-tree learner.

This is the algorithm at the centre of the paper: the dedicated J48 Web
Service exposes ``classify`` (textual tree) and ``classify graph`` (plot-ready
tree), and the case study classifies the breast-cancer dataset with it,
yielding a tree rooted at ``node-caps`` (Figure 4).

Faithful C4.5 behaviours implemented here:

* gain-ratio attribute selection restricted to attributes whose information
  gain is at least the average positive gain;
* binary splits on numeric attributes with the per-attribute
  ``log2(distinct-1)/n`` gain correction;
* fractional instance weighting for missing split values, both during
  training (instances fan out across branches) and prediction;
* minimum-instances-per-branch constraint (``min_obj``, C4.5's ``-m``);
* pessimistic error-based pruning by subtree replacement using the
  confidence-factor upper bound (``confidence``, C4.5's ``-c``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLASSIFIERS, Classifier
from repro.ml.classifiers._tree import (TreeNode, distribute,
                                        distribute_many, entropy,
                                        graph_to_dot, info_gain, render_text,
                                        split_info, tree_graph)
from repro.ml.options import BOOL, FLOAT, INT, OptionSpec

_EPS = 1e-9


def _probit(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Avoids a SciPy dependency in the core library; accurate to ~1e-9, far
    beyond what pessimistic pruning needs.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"probit needs p in (0,1), got {p}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                * q + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q
                                + d[3]) * q + 1)
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                 * q + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q
                                 + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4])
            * r + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r
                                 + b[3]) * r + b[4]) * r + 1)


def added_errors(n: float, e: float, cf: float) -> float:
    """WEKA ``Stats.addErrs``: pessimistic extra errors for a leaf with *n*
    instances and *e* observed errors at confidence factor *cf*."""
    if cf > 0.5:
        raise DataError("confidence factor must be <= 0.5")
    if n <= 0:
        return 0.0
    if e < 1:
        base = n * (1 - cf ** (1.0 / n))
        if e <= 0:
            return base
        return base + e * (added_errors(n, 1.0, cf) - base)
    if e + 0.5 >= n:
        return max(n - e, 0.0)
    z = _probit(1 - cf)
    f = (e + 0.5) / n
    r = (f + z * z / (2 * n)
         + z * math.sqrt(f / n - f * f / n + z * z / (4 * n * n))) \
        / (1 + z * z / n)
    return r * n - e


@CLASSIFIERS.register("J48", "tree", "c4.5", "pruning", "missing-values")
class J48(Classifier):
    """C4.5 decision-tree classifier (WEKA J48 analogue)."""

    OPTIONS = (
        OptionSpec("confidence", FLOAT, 0.25,
                   "Pruning confidence factor (C4.5 -c); smaller prunes "
                   "more aggressively.", minimum=1e-4, maximum=0.5),
        OptionSpec("min_obj", INT, 2,
                   "Minimum instances per branch (C4.5 -m).", minimum=1),
        OptionSpec("unpruned", BOOL, False,
                   "Build the full tree without pessimistic pruning."),
        OptionSpec("use_gain_ratio", BOOL, True,
                   "Select splits by gain ratio (True, C4.5) or raw "
                   "information gain (False, ID3-style)."),
    )

    def __init__(self, **options):
        super().__init__(**options)
        self.root: TreeNode | None = None

    # ------------------------------------------------------------------ fit
    def _fit(self, dataset: Dataset) -> None:
        matrix = dataset.to_matrix()
        y = dataset.class_values()
        weights = dataset.weights()
        keep = ~np.isnan(y)
        if not keep.any():
            raise DataError("all training instances have a missing class")
        self._matrix = matrix[keep]
        self._y = y[keep].astype(int)
        self._weights = weights[keep].astype(float)
        self._n_classes = dataset.num_classes
        self._attrs = dataset.attributes
        self._class_index = dataset.class_index
        rows = np.arange(self._matrix.shape[0])
        used = frozenset({self._class_index})
        self.root = self._build(rows, self._weights[rows].copy(), used)
        if not self.opt("unpruned"):
            self._prune(self.root)
        # free training buffers; the tree is self-contained
        del self._matrix, self._y, self._weights

    def _counts(self, rows: np.ndarray, w: np.ndarray) -> np.ndarray:
        counts = np.zeros(self._n_classes)
        np.add.at(counts, self._y[rows], w)
        return counts

    def _build(self, rows: np.ndarray, w: np.ndarray,
               used: frozenset[int]) -> TreeNode:
        counts = self._counts(rows, w)
        node = TreeNode(class_counts=counts)
        total = counts.sum()
        min_obj = self.opt("min_obj")
        if (total < 2 * min_obj
                or np.count_nonzero(counts) <= 1
                or len(used) >= len(self._attrs)):
            return node
        best = self._select_split(rows, w, counts, used)
        if best is None:
            return node
        attr_idx, threshold, branches = best
        node.attribute = attr_idx
        node.threshold = threshold
        if threshold is None:
            node.branch_values = list(self._attrs[attr_idx].values)
        child_used = used | ({attr_idx}
                             if self._attrs[attr_idx].is_nominal
                             else set())
        for branch_rows, branch_w in branches:
            if branch_rows.size == 0 or branch_w.sum() < _EPS:
                child = TreeNode(class_counts=counts.copy())
            else:
                child = self._build(branch_rows, branch_w, child_used)
            node.children.append(child)
        return node

    # ------------------------------------------------------------ splitting
    def _select_split(self, rows: np.ndarray, w: np.ndarray,
                      counts: np.ndarray, used: frozenset[int]):
        """Return ``(attr_idx, threshold, branches)`` of the best split.

        *branches* is a list of ``(row_indices, weights)`` covering present
        rows plus fractionally-weighted missing rows.
        """
        candidates = []
        for attr_idx, attr in enumerate(self._attrs):
            if attr_idx in used or attr.is_string:
                continue
            if attr.is_nominal:
                cand = self._nominal_candidate(attr_idx, rows, w, counts)
            else:
                cand = self._numeric_candidate(attr_idx, rows, w, counts)
            if cand is not None:
                candidates.append(cand)
        if not candidates:
            return None
        gains = [c[0] for c in candidates]
        avg_gain = sum(gains) / len(gains)
        eligible = [c for c in candidates if c[0] >= avg_gain - _EPS]
        if self.opt("use_gain_ratio"):
            best = max(eligible, key=lambda c: c[1])
        else:
            best = max(eligible, key=lambda c: c[0])
        _, _, attr_idx, threshold = best
        return (attr_idx, threshold,
                self._partition(attr_idx, threshold, rows, w))

    def _nominal_candidate(self, attr_idx: int, rows: np.ndarray,
                           w: np.ndarray, counts: np.ndarray):
        col = self._matrix[rows, attr_idx]
        present = ~np.isnan(col)
        present_w = w[present]
        total_w = w.sum()
        present_total = present_w.sum()
        if present_total < _EPS:
            return None
        n_values = self._attrs[attr_idx].num_values
        branch_counts = [np.zeros(self._n_classes) for _ in range(n_values)]
        vals = col[present].astype(int)
        ys = self._y[rows][present]
        for v, y, weight in zip(vals, ys, present_w):
            branch_counts[v][y] += weight
        sizes = [float(c.sum()) for c in branch_counts]
        nonempty = sum(1 for s in sizes if s >= self.opt("min_obj"))
        if nonempty < 2:
            return None
        present_counts = np.zeros(self._n_classes)
        np.add.at(present_counts, ys, present_w)
        gain = info_gain(present_counts, branch_counts)
        # C4.5 scales gain by the fraction of instances with a known value
        gain *= present_total / total_w
        if gain < _EPS:
            return None
        si = split_info(branch_counts)
        ratio = gain / si if si > _EPS else 0.0
        return (gain, ratio, attr_idx, None)

    def _numeric_candidate(self, attr_idx: int, rows: np.ndarray,
                           w: np.ndarray, counts: np.ndarray):
        col = self._matrix[rows, attr_idx]
        present = ~np.isnan(col)
        total_w = w.sum()
        values = col[present]
        ys = self._y[rows][present]
        ws = w[present]
        present_total = ws.sum()
        if present_total < _EPS or values.size < 2 * self.opt("min_obj"):
            return None
        order = np.argsort(values, kind="stable")
        values, ys, ws = values[order], ys[order], ws[order]
        distinct = np.unique(values)
        if distinct.size < 2:
            return None
        present_counts = np.zeros(self._n_classes)
        np.add.at(present_counts, ys, ws)
        base_entropy = entropy(present_counts)
        below = np.zeros(self._n_classes)
        best_gain, best_threshold, best_ratio = -1.0, None, 0.0
        min_obj = self.opt("min_obj")
        i = 0
        n = values.size
        while i < n - 1:
            below[ys[i]] += ws[i]
            if values[i + 1] <= values[i] + _EPS:
                i += 1
                continue
            left_total = below.sum()
            right = present_counts - below
            right_total = right.sum()
            if left_total < min_obj or right_total < min_obj:
                i += 1
                continue
            avg = (left_total * entropy(below)
                   + right_total * entropy(right)) / present_total
            gain = base_entropy - avg
            if gain > best_gain:
                best_gain = gain
                best_threshold = (values[i] + values[i + 1]) / 2.0
                si = entropy(np.array([left_total, right_total]))
                best_ratio = gain / si if si > _EPS else 0.0
            i += 1
        if best_threshold is None:
            return None
        # C4.5 release-8 correction: charge for choosing among thresholds
        best_gain -= math.log2(max(distinct.size - 1, 1)) / present_total
        best_gain *= present_total / total_w
        if best_gain < _EPS:
            return None
        return (best_gain, best_ratio, attr_idx, float(best_threshold))

    def _partition(self, attr_idx: int, threshold: float | None,
                   rows: np.ndarray, w: np.ndarray):
        """Split rows into branches, fanning missing rows out fractionally."""
        col = self._matrix[rows, attr_idx]
        missing = np.isnan(col)
        present = ~missing
        if threshold is None:
            n_branches = self._attrs[attr_idx].num_values
            masks = [present & (col == v) for v in range(n_branches)]
        else:
            masks = [present & (col <= threshold),
                     present & (col > threshold)]
        branch_w_present = [w[m].sum() for m in masks]
        present_total = sum(branch_w_present)
        branches = []
        miss_rows = rows[missing]
        miss_w = w[missing]
        for mask, wp in zip(masks, branch_w_present):
            r = rows[mask]
            ws = w[mask]
            if present_total > _EPS and miss_rows.size:
                frac = wp / present_total
                if frac > _EPS:
                    r = np.concatenate([r, miss_rows])
                    ws = np.concatenate([ws, miss_w * frac])
            branches.append((r, ws))
        return branches

    # -------------------------------------------------------------- pruning
    def _prune(self, node: TreeNode) -> float:
        """Post-order pessimistic pruning; returns the estimated subtree
        error after pruning."""
        cf = self.opt("confidence")
        if node.is_leaf:
            return node.errors() + added_errors(node.total_weight,
                                                node.errors(), cf)
        subtree_est = sum(self._prune(child) for child in node.children)
        leaf_est = node.errors() + added_errors(node.total_weight,
                                                node.errors(), cf)
        if leaf_est <= subtree_est + 0.1:
            node.make_leaf()
            return leaf_est
        return subtree_est

    # ----------------------------------------------------------- prediction
    def _distribution(self, instance: Instance) -> np.ndarray:
        assert self.root is not None
        return distribute(self.root, instance, self.header.num_classes)

    def _distribution_many(self, matrix: np.ndarray) -> np.ndarray:
        assert self.root is not None
        return distribute_many(self.root, matrix,
                               self.header.num_classes)

    # ------------------------------------------------------------- reporting
    def model_text(self) -> str:
        if self.root is None:
            return "(not fitted)"
        kind = "unpruned" if self.opt("unpruned") else "pruned"
        return (f"J48 {kind} tree\n------------------\n"
                + render_text(self.root, self.header))

    def to_graph(self) -> dict:
        """Node/edge payload for the ``classifyGraph`` operation."""
        assert self.root is not None
        return tree_graph(self.root, self.header)

    def to_dot(self) -> str:
        """Graphviz dot text for the TreeVisualizer tool."""
        return graph_to_dot(self.to_graph(), "J48")

    @property
    def root_attribute(self) -> str:
        """Name of the attribute at the tree root (Figure 4 check)."""
        assert self.root is not None
        if self.root.is_leaf:
            raise DataError("tree is a single leaf")
        return self.header.attribute(self.root.attribute).name
