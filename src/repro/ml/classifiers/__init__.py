"""Classifier family.

Importing this package registers every classifier with
:data:`repro.ml.base.CLASSIFIERS`, which is what the general Classifier Web
Service's ``getClassifiers`` operation enumerates.
"""

from repro.ml.classifiers.j48 import J48
from repro.ml.classifiers.id3 import Id3
from repro.ml.classifiers.simple import DecisionStump, OneR, ZeroR
from repro.ml.classifiers.naive_bayes import NaiveBayes, NaiveBayesUpdateable
from repro.ml.classifiers.ibk import IBk
from repro.ml.classifiers.logistic import Logistic
from repro.ml.classifiers.mlp import MultilayerPerceptron
from repro.ml.classifiers.meta import (AdaBoostM1, Bagging, RandomForest,
                                       RandomTree, Vote)
from repro.ml.classifiers.rules import DecisionTable, Prism
from repro.ml.classifiers.extra import (HyperPipes, KStar, SMO, SGDClassifier,
                                        VFI, VotedPerceptron)
from repro.ml.classifiers.meta2 import (ClassificationViaClustering,
                                        FilteredClassifier, MultiScheme,
                                        Stacking)
from repro.ml.classifiers.wave2 import (AttributeSelectedClassifier,
                                        ConjunctiveRule,
                                        CVParameterSelection, LWL,
                                        MultiClassClassifier)
from repro.ml.classifiers.reptree import REPTree

__all__ = [
    "J48", "Id3", "DecisionStump", "OneR", "ZeroR",
    "NaiveBayes", "NaiveBayesUpdateable", "IBk", "Logistic",
    "MultilayerPerceptron", "AdaBoostM1", "Bagging", "RandomForest",
    "RandomTree", "Vote", "DecisionTable", "Prism",
    "HyperPipes", "KStar", "SMO", "SGDClassifier", "VFI", "VotedPerceptron",
    "ClassificationViaClustering", "FilteredClassifier", "MultiScheme",
    "Stacking",
    "ConjunctiveRule", "LWL", "MultiClassClassifier",
    "CVParameterSelection", "AttributeSelectedClassifier",
    "REPTree",
]
