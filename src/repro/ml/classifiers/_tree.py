"""Shared decision-tree machinery for the tree-based classifiers (ID3, J48,
DecisionStump, RandomTree).

The node structure doubles as the *graph* the paper's ``classifyGraph``
operation ships to the TreeVisualizer tool: :func:`tree_graph` flattens a tree
into nodes + labelled edges, and :func:`render_text` prints WEKA's
pipe-indented layout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance


def entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a count vector."""
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    # guard against subnormal counts underflowing to exactly 0 in the
    # division above (0 * log2(0) would be NaN)
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


def split_entropy(branch_counts: list[np.ndarray]) -> float:
    """Weighted average entropy after a split."""
    total = sum(float(c.sum()) for c in branch_counts)
    if total <= 0:
        return 0.0
    return sum(float(c.sum()) / total * entropy(c) for c in branch_counts)


def info_gain(parent_counts: np.ndarray,
              branch_counts: list[np.ndarray]) -> float:
    """Information gain of a split."""
    return entropy(parent_counts) - split_entropy(branch_counts)


def split_info(branch_counts: list[np.ndarray]) -> float:
    """Intrinsic information of the partition (gain-ratio denominator)."""
    sizes = np.array([float(c.sum()) for c in branch_counts])
    return entropy(sizes)


@dataclass
class TreeNode:
    """One decision-tree node.

    A leaf holds only ``class_counts``.  An internal node holds the split
    attribute index plus either per-value children (nominal) or a numeric
    ``threshold`` with exactly two children (``<=`` then ``>``).
    """

    class_counts: np.ndarray
    attribute: int = -1
    threshold: float | None = None
    children: list["TreeNode"] = field(default_factory=list)
    branch_values: list[str] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def total_weight(self) -> float:
        return float(self.class_counts.sum())

    @property
    def majority_class(self) -> int:
        return int(np.argmax(self.class_counts))

    def errors(self) -> float:
        """Training errors if this node were a leaf."""
        return self.total_weight - float(self.class_counts.max())

    def subtree_errors(self) -> float:
        """Training errors of the full subtree."""
        if self.is_leaf:
            return self.errors()
        return sum(child.subtree_errors() for child in self.children)

    def num_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return sum(child.num_leaves() for child in self.children)

    def size(self) -> int:
        """Total node count (WEKA's 'Size of the tree')."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def make_leaf(self) -> None:
        """Collapse this subtree into a leaf (pruning primitive)."""
        self.children = []
        self.branch_values = []
        self.attribute = -1
        self.threshold = None

    def walk(self) -> Iterator["TreeNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def distribute(node: TreeNode, instance: Instance,
               n_classes: int) -> np.ndarray:
    """C4.5 prediction: missing split values fan out over all branches
    weighted by training mass."""
    if node.is_leaf:
        total = node.total_weight
        if total <= 0:
            return np.full(n_classes, 1.0 / n_classes)
        return node.class_counts / total
    value = instance.value(node.attribute)
    if math.isnan(value):
        weights = np.array([max(c.total_weight, 0.0)
                            for c in node.children])
        if weights.sum() <= 0:
            weights = np.ones(len(node.children))
        weights = weights / weights.sum()
        out = np.zeros(n_classes)
        for w, child in zip(weights, node.children):
            out += w * distribute(child, instance, n_classes)
        return out
    if node.threshold is not None:
        child = node.children[0] if value <= node.threshold \
            else node.children[1]
        return distribute(child, instance, n_classes)
    idx = int(value)
    if not 0 <= idx < len(node.children):
        total = node.total_weight
        if total <= 0:
            return np.full(n_classes, 1.0 / n_classes)
        return node.class_counts / total
    return distribute(node.children[idx], instance, n_classes)


def _node_distribution(node: TreeNode, n_classes: int) -> np.ndarray:
    total = node.total_weight
    if total <= 0:
        return np.full(n_classes, 1.0 / n_classes)
    return node.class_counts / total


def _distributions_for(node: TreeNode, matrix: np.ndarray,
                       rows: np.ndarray, n_classes: int) -> np.ndarray:
    """Batched descent: distributions for ``matrix[rows]`` under *node*.

    Each tree node partitions its row subset with one vectorised mask
    instead of the scalar path's per-row Python descent; semantics match
    :func:`distribute` cell for cell (missing values fan out over the
    children weighted by training mass, out-of-table nominal indices
    stop at the node's own distribution).
    """
    res = np.empty((rows.size, n_classes))
    if node.is_leaf:
        res[:] = _node_distribution(node, n_classes)
        return res
    vals = matrix[rows, node.attribute]
    miss = np.isnan(vals)
    if miss.any():
        weights = np.array([max(c.total_weight, 0.0)
                            for c in node.children])
        if weights.sum() <= 0:
            weights = np.ones(len(node.children))
        weights = weights / weights.sum()
        acc = np.zeros((int(miss.sum()), n_classes))
        for w, child in zip(weights, node.children):
            acc += w * _distributions_for(child, matrix, rows[miss],
                                          n_classes)
        res[miss] = acc
    present = ~miss
    if present.any():
        pvals = vals[present]
        prows = rows[present]
        sub = np.empty((prows.size, n_classes))
        if node.threshold is not None:
            left = pvals <= node.threshold
            if left.any():
                sub[left] = _distributions_for(
                    node.children[0], matrix, prows[left], n_classes)
            if not left.all():
                sub[~left] = _distributions_for(
                    node.children[1], matrix, prows[~left], n_classes)
        else:
            idx = pvals.astype(int)
            known = (idx >= 0) & (idx < len(node.children))
            if not known.all():
                sub[~known] = _node_distribution(node, n_classes)
            for j, child in enumerate(node.children):
                branch = known & (idx == j)
                if branch.any():
                    sub[branch] = _distributions_for(
                        child, matrix, prows[branch], n_classes)
        res[present] = sub
    return res


def distribute_many(node: TreeNode, matrix: np.ndarray,
                    n_classes: int) -> np.ndarray:
    """Vectorised :func:`distribute` over every row of *matrix*."""
    mat = np.asarray(matrix, dtype=float)
    rows = np.arange(mat.shape[0], dtype=np.intp)
    return _distributions_for(node, mat, rows, n_classes)


def _branch_label(node: TreeNode, branch: int, header: Dataset) -> str:
    attr = header.attribute(node.attribute)
    if node.threshold is not None:
        op = "<=" if branch == 0 else ">"
        return f"{attr.name} {op} {node.threshold:g}"
    return f"{attr.name} = {node.branch_values[branch]}"


def render_text(node: TreeNode, header: Dataset) -> str:
    """WEKA J48-style pipe-indented rendering."""
    class_values = header.class_attribute.values
    lines: list[str] = []

    def leaf_suffix(leaf: TreeNode) -> str:
        label = class_values[leaf.majority_class]
        total = leaf.total_weight
        wrong = leaf.errors()
        if wrong > 0:
            return f": {label} ({total:g}/{wrong:g})"
        return f": {label} ({total:g})"

    def rec(n: TreeNode, depth: int) -> None:
        for branch, child in enumerate(n.children):
            prefix = "|   " * depth
            label = _branch_label(n, branch, header)
            if child.is_leaf:
                lines.append(prefix + label + leaf_suffix(child))
            else:
                lines.append(prefix + label)
                rec(child, depth + 1)

    if node.is_leaf:
        lines.append(leaf_suffix(node)[2:])
    else:
        rec(node, 0)
    lines.append("")
    lines.append(f"Number of Leaves  : {node.num_leaves()}")
    lines.append(f"Size of the tree  : {node.size()}")
    return "\n".join(lines)


def tree_graph(node: TreeNode, header: Dataset) -> dict:
    """Flatten a tree into the node/edge payload of ``classifyGraph``."""
    class_values = header.class_attribute.values
    nodes: list[dict] = []
    edges: list[dict] = []

    def rec(n: TreeNode) -> int:
        nid = len(nodes)
        if n.is_leaf:
            label = (f"{class_values[n.majority_class]} "
                     f"({n.total_weight:g}/{n.errors():g})")
            nodes.append({"id": nid, "label": label, "leaf": True})
        else:
            attr = header.attribute(n.attribute)
            nodes.append({"id": nid, "label": attr.name, "leaf": False})
        for branch, child in enumerate(n.children):
            if n.threshold is not None:
                edge_label = ("<= " if branch == 0 else "> ") + \
                    f"{n.threshold:g}"
            else:
                edge_label = n.branch_values[branch]
            cid = rec(child)
            edges.append({"source": nid, "target": cid,
                          "label": edge_label})
        return nid

    rec(node)
    return {"nodes": nodes, "edges": edges}


def graph_to_dot(graph: dict, title: str = "tree") -> str:
    """Render a tree graph dict as Graphviz dot text (visualiser input)."""
    lines = [f'digraph "{title}" {{']
    for n in graph["nodes"]:
        shape = "box" if n["leaf"] else "ellipse"
        lines.append(f'  n{n["id"]} [label="{n["label"]}", shape={shape}];')
    for e in graph["edges"]:
        lines.append(f'  n{e["source"]} -> n{e["target"]} '
                     f'[label="{e["label"]}"];')
    lines.append("}")
    return "\n".join(lines)
