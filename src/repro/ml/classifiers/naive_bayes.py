"""Naive Bayes classifiers.

``NaiveBayes`` fits in one pass over the dataset; ``NaiveBayesUpdateable`` is
the streaming variant (the paper: "data sets may be ... streamed from a remote
location provided the algorithm being used has support for streaming" — this
is that algorithm).  Nominal attributes use Laplace-smoothed frequency
estimates; numeric attributes use per-class Gaussians with incremental
mean/variance (Welford).
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.ml.base import CLASSIFIERS, IncrementalClassifier
from repro.ml.options import FLOAT, OptionSpec

_MIN_STD = 1e-3


class _NominalEstimator:
    """Laplace-smoothed value-frequency estimator."""

    def __init__(self, n_values: int, smoothing: float):
        self.counts = np.full(n_values, smoothing)

    def add(self, value_index: int, weight: float) -> None:
        self.counts[value_index] += weight

    def prob(self, value_index: int) -> float:
        return float(self.counts[value_index] / self.counts.sum())


class _GaussianEstimator:
    """Weighted incremental Gaussian (Welford's algorithm)."""

    def __init__(self) -> None:
        self.weight = 0.0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float, weight: float) -> None:
        self.weight += weight
        delta = value - self.mean
        self.mean += (weight / self.weight) * delta
        self._m2 += weight * delta * (value - self.mean)

    @property
    def std(self) -> float:
        if self.weight <= 1.0:
            # a class observed (at most) once has no spread information:
            # use a vague unit Gaussian rather than a confident spike
            return 1.0
        return max(math.sqrt(self._m2 / self.weight), _MIN_STD)

    def prob(self, value: float) -> float:
        if self.weight <= 0:
            # a class never observed must not outscore observed classes
            return 1e-9
        std = self.std
        z = (value - self.mean) / std
        return math.exp(-0.5 * z * z) / (std * math.sqrt(2 * math.pi))


@CLASSIFIERS.register("NaiveBayesUpdateable", "bayes", "incremental",
                      "streaming")
class NaiveBayesUpdateable(IncrementalClassifier):
    """Streaming naive Bayes (one estimator per attribute per class)."""

    OPTIONS = (
        OptionSpec("smoothing", FLOAT, 1.0,
                   "Laplace smoothing added to every nominal value count.",
                   minimum=1e-9),
    )

    def _begin(self) -> None:
        header = self.header
        k = header.num_classes
        self._class_counts = np.full(k, self.opt("smoothing"))
        self._estimators: list[list[object] | None] = []
        for idx, attr in enumerate(header.attributes):
            if idx == header.class_index or attr.is_string:
                self._estimators.append(None)
                continue
            if attr.is_nominal:
                self._estimators.append(
                    [_NominalEstimator(attr.num_values,
                                       self.opt("smoothing"))
                     for _ in range(k)])
            else:
                self._estimators.append(
                    [_GaussianEstimator() for _ in range(k)])

    def _update(self, instance: Instance) -> None:
        header = self.header
        if instance.is_missing(header.class_index):
            return
        cls = int(instance.value(header.class_index))
        self._class_counts[cls] += instance.weight
        for idx, est in enumerate(self._estimators):
            if est is None or instance.is_missing(idx):
                continue
            value = instance.value(idx)
            if header.attribute(idx).is_nominal:
                est[cls].add(int(value), instance.weight)  # type: ignore
            else:
                est[cls].add(value, instance.weight)  # type: ignore

    def _distribution(self, instance: Instance) -> np.ndarray:
        k = self.header.num_classes
        log_probs = np.log(self._class_counts / self._class_counts.sum())
        for idx, est in enumerate(self._estimators):
            if est is None or instance.is_missing(idx):
                continue
            value = instance.value(idx)
            nominal = self.header.attribute(idx).is_nominal
            for cls in range(k):
                p = (est[cls].prob(int(value)) if nominal  # type: ignore
                     else est[cls].prob(value))  # type: ignore
                log_probs[cls] += math.log(max(p, 1e-300))
        log_probs -= log_probs.max()
        probs = np.exp(log_probs)
        return probs / probs.sum()

    def _distribution_many(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_distribution`: one numpy pass over a
        ``(n, m)`` value matrix (NaN = missing), same estimator maths
        attribute by attribute as the scalar path."""
        header = self.header
        n = rows.shape[0]
        log_probs = np.tile(
            np.log(self._class_counts / self._class_counts.sum()),
            (n, 1))
        for idx, est in enumerate(self._estimators):
            if est is None:
                continue
            col = rows[:, idx]
            present = ~np.isnan(col)
            if not present.any():
                continue
            if header.attribute(idx).is_nominal:
                # (classes, values) probability table, indexed per row
                table = np.vstack([e.counts / e.counts.sum()  # type: ignore
                                   for e in est])
                probs = table[:, col[present].astype(int)].T
            else:
                stds = np.array([e.std for e in est])  # type: ignore
                means = np.array([e.mean for e in est])  # type: ignore
                weights = np.array([e.weight for e in est])  # type: ignore
                z = (col[present, None] - means[None, :]) / stds[None, :]
                probs = np.exp(-0.5 * z * z) / (stds *
                                                math.sqrt(2 * math.pi))
                # a class never observed must not outscore observed ones
                probs = np.where(weights > 0, probs, 1e-9)
            log_probs[present] += np.log(np.maximum(probs, 1e-300))
        log_probs -= log_probs.max(axis=1, keepdims=True)
        probs = np.exp(log_probs)
        return probs / probs.sum(axis=1, keepdims=True)

    def model_text(self) -> str:
        header = self.header
        lines = ["Naive Bayes model", ""]
        labels = header.class_attribute.values
        priors = self._class_counts / self._class_counts.sum()
        for cls, label in enumerate(labels):
            lines.append(f"Class {label}: prior {priors[cls]:.3f}")
            for idx, est in enumerate(self._estimators):
                if est is None:
                    continue
                attr = header.attribute(idx)
                if attr.is_nominal:
                    nom = est[cls]  # type: ignore[index]
                    probs = nom.counts / nom.counts.sum()
                    body = ", ".join(
                        f"{v}:{p:.2f}" for v, p in zip(attr.values, probs))
                    lines.append(f"  {attr.name}: {body}")
                else:
                    g = est[cls]  # type: ignore[index]
                    lines.append(f"  {attr.name}: N(mu={g.mean:.3f}, "
                                 f"sigma={g.std:.3f})")
            lines.append("")
        return "\n".join(lines)


@CLASSIFIERS.register("NaiveBayes", "bayes")
class NaiveBayes(NaiveBayesUpdateable):
    """Batch naive Bayes (identical model; trains in one :meth:`fit` pass)."""

    def _fit(self, dataset: Dataset) -> None:
        self._begin()
        for inst in dataset:
            self._update(inst)
