"""IBk — k-nearest-neighbour classification (WEKA's instance-based learner).

Distance is the WEKA mixed-attribute metric: numeric attributes are min-max
normalised and contribute squared differences; nominal attributes contribute
0/1 mismatch; a missing cell contributes the worst case (1).  IBk is also
updateable, so it participates in the streaming scenario alongside
``NaiveBayesUpdateable``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLASSIFIERS, IncrementalClassifier
from repro.ml.options import BOOL, INT, OptionSpec


@CLASSIFIERS.register("IBk", "lazy", "knn", "incremental", "streaming")
class IBk(IncrementalClassifier):
    """k-NN with optional inverse-distance weighting."""

    OPTIONS = (
        OptionSpec("k", INT, 1, "Number of neighbours.", minimum=1),
        OptionSpec("distance_weighting", BOOL, False,
                   "Weight votes by 1/(distance + eps)."),
    )

    def _begin(self) -> None:
        self._rows: list[np.ndarray] = []
        self._labels: list[int] = []
        self._weights: list[float] = []
        header = self.header
        self._numeric = np.array([
            attr.is_numeric and i != header.class_index
            for i, attr in enumerate(header.attributes)])
        self._nominal = np.array([
            attr.is_nominal and i != header.class_index
            for i, attr in enumerate(header.attributes)])
        m = header.num_attributes
        self._min = np.full(m, math.inf)
        self._max = np.full(m, -math.inf)

    def _update(self, instance: Instance) -> None:
        if instance.is_missing(self.header.class_index):
            return
        values = instance.values.copy()
        self._rows.append(values)
        self._labels.append(int(instance.value(self.header.class_index)))
        self._weights.append(instance.weight)
        numeric_vals = np.where(self._numeric, values, np.nan)
        with np.errstate(invalid="ignore"):
            self._min = np.fmin(self._min, numeric_vals)
            self._max = np.fmax(self._max, numeric_vals)

    def _normalise(self, matrix: np.ndarray) -> np.ndarray:
        out = matrix.copy()
        span = self._max - self._min
        for j in np.where(self._numeric)[0]:
            if math.isfinite(span[j]) and span[j] > 0:
                out[:, j] = (out[:, j] - self._min[j]) / span[j]
            else:
                out[:, j] = 0.0
        return out

    def _distances(self, instance: Instance) -> np.ndarray:
        if not self._rows:
            raise DataError("IBk has no stored instances")
        matrix = self._normalise(np.vstack(self._rows))
        query = self._normalise(instance.values[None, :])[0]
        diffs = np.zeros(matrix.shape[0])
        for j in range(matrix.shape[1]):
            if not (self._numeric[j] or self._nominal[j]):
                continue
            col = matrix[:, j]
            q = query[j]
            if math.isnan(q):
                d = np.ones_like(col)
            elif self._numeric[j]:
                d = np.where(np.isnan(col), 1.0, np.abs(col - q))
            else:
                d = np.where(np.isnan(col), 1.0,
                             (col != q).astype(float))
            diffs += d * d
        return np.sqrt(diffs)

    def _distribution(self, instance: Instance) -> np.ndarray:
        dists = self._distances(instance)
        k = min(self.opt("k"), len(dists))
        nearest = np.argsort(dists, kind="stable")[:k]
        out = np.zeros(self.header.num_classes)
        for idx in nearest:
            vote = self._weights[int(idx)]
            if self.opt("distance_weighting"):
                vote /= (dists[int(idx)] + 1e-6)
            out[self._labels[int(idx)]] += vote
        return out

    def _distribution_many(self, matrix: np.ndarray) -> np.ndarray:
        """Matrix kernel: one ``(n_queries, n_stored)`` distance table
        per attribute instead of a stored-matrix rebuild per query."""
        if not self._rows:
            raise DataError("IBk has no stored instances")
        stored = self._normalise(np.vstack(self._rows))
        queries = self._normalise(np.asarray(matrix, dtype=float))
        d2 = np.zeros((queries.shape[0], stored.shape[0]))
        for j in range(stored.shape[1]):
            if not (self._numeric[j] or self._nominal[j]):
                continue
            col = stored[:, j][None, :]
            q = queries[:, j][:, None]
            if self._numeric[j]:
                d = np.abs(q - col)
            else:
                d = (q != col).astype(float)
            d = np.where(np.isnan(col) | np.isnan(q), 1.0, d)
            d2 += d * d
        dists = np.sqrt(d2)
        k = min(self.opt("k"), dists.shape[1])
        nearest = np.argsort(dists, axis=1, kind="stable")[:, :k]
        labels = np.asarray(self._labels)
        votes = np.asarray(self._weights)[nearest]
        if self.opt("distance_weighting"):
            votes = votes / (np.take_along_axis(dists, nearest, axis=1)
                             + 1e-6)
        out = np.zeros((queries.shape[0], self.header.num_classes))
        row_ids = np.repeat(np.arange(queries.shape[0]), k)
        np.add.at(out, (row_ids, labels[nearest].ravel()), votes.ravel())
        return out

    def model_text(self) -> str:
        return (f"IB{self.opt('k')} instance-based classifier\n"
                f"Stored instances: {len(self._rows)}")
