"""Additional classifiers rounding out the WEKA-style catalogue:
HyperPipes, VFI, KStar, VotedPerceptron, SMO (linear kernel) and an SGD
log-loss learner.

Fidelity notes (also recorded in DESIGN.md): ``KStar`` uses an exponential
kernel over the mixed-attribute distance rather than Cleary & Trigg's full
entropic transform, and ``SMO`` trains a linear-kernel SVM by Pegasos-style
subgradient descent rather than Platt's working-set algorithm.  Both keep the
WEKA names because the services expose them under those names; their
decision behaviour matches the originals' linear/instance-kernel regimes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.ml.base import CLASSIFIERS, Classifier
from repro.ml.classifiers._encode import FeatureEncoder
from repro.ml.options import FLOAT, INT, OptionSpec


@CLASSIFIERS.register("HyperPipes", "misc", "fast")
class HyperPipes(Classifier):
    """Per-class bounding 'pipes': an instance votes for the classes whose
    observed attribute ranges/value-sets contain it."""

    def _fit(self, dataset: Dataset) -> None:
        k = dataset.num_classes
        m = dataset.num_attributes
        self._lo = np.full((k, m), math.inf)
        self._hi = np.full((k, m), -math.inf)
        self._seen = [[set() for _ in range(m)] for _ in range(k)]
        self._class_index = dataset.class_index
        self._nominal = [a.is_nominal for a in dataset.attributes]
        for inst in dataset:
            if inst.class_is_missing(dataset):
                continue
            cls = int(inst.class_value(dataset))
            for j in range(m):
                if j == self._class_index or inst.is_missing(j):
                    continue
                v = inst.value(j)
                if self._nominal[j]:
                    self._seen[cls][j].add(int(v))
                else:
                    self._lo[cls, j] = min(self._lo[cls, j], v)
                    self._hi[cls, j] = max(self._hi[cls, j], v)

    def _distribution(self, instance: Instance) -> np.ndarray:
        k = self.header.num_classes
        m = self.header.num_attributes
        scores = np.zeros(k)
        for cls in range(k):
            fit = 0.0
            for j in range(m):
                if j == self._class_index:
                    continue
                if instance.is_missing(j):
                    fit += 1.0  # a missing value fits every pipe
                    continue
                v = instance.value(j)
                if self._nominal[j]:
                    fit += 1.0 if int(v) in self._seen[cls][j] else 0.0
                else:
                    fit += 1.0 if self._lo[cls, j] <= v <= self._hi[cls, j] \
                        else 0.0
            scores[cls] = fit / max(m - 1, 1)
        if scores.sum() <= 0:
            scores[:] = 1.0
        return scores

    def model_text(self) -> str:
        return "HyperPipes: one attribute-range pipe per class"


@CLASSIFIERS.register("VFI", "misc", "voting")
class VFI(Classifier):
    """Voting Feature Intervals: each attribute votes with its per-interval
    class distribution; votes are summed across attributes."""

    OPTIONS = (
        OptionSpec("bins", INT, 10,
                   "Equal-width bins per numeric attribute.", minimum=2),
    )

    def _fit(self, dataset: Dataset) -> None:
        k = dataset.num_classes
        self._class_index = dataset.class_index
        self._tables: dict[int, np.ndarray] = {}
        self._cuts: dict[int, np.ndarray] = {}
        matrix = dataset.to_matrix()
        y = dataset.class_values()
        keep = ~np.isnan(y)
        y = y[keep].astype(int)
        for j, attr in enumerate(dataset.attributes):
            if j == self._class_index or attr.is_string:
                continue
            col = matrix[keep, j]
            if attr.is_nominal:
                codes = col
                n_bins = attr.num_values
            else:
                present = col[~np.isnan(col)]
                if present.size == 0:
                    continue
                lo, hi = float(present.min()), float(present.max())
                cuts = (np.linspace(lo, hi, self.opt("bins") + 1)[1:-1]
                        if hi > lo else np.array([]))
                self._cuts[j] = cuts
                codes = np.where(np.isnan(col), np.nan,
                                 np.searchsorted(cuts, col, side="right"))
                n_bins = len(cuts) + 1
            table = np.full((n_bins, k), 0.5)  # Laplace-ish smoothing
            present_mask = ~np.isnan(codes)
            np.add.at(table, (codes[present_mask].astype(int),
                              y[present_mask]), 1.0)
            # normalise per class first (VFI's class-conditional votes)
            table = table / table.sum(axis=0, keepdims=True)
            self._tables[j] = table

    def _distribution(self, instance: Instance) -> np.ndarray:
        k = self.header.num_classes
        votes = np.zeros(k)
        for j, table in self._tables.items():
            if instance.is_missing(j):
                continue
            v = instance.value(j)
            if j in self._cuts:
                code = int(np.searchsorted(self._cuts[j], v, side="right"))
            else:
                code = int(v)
            if 0 <= code < table.shape[0]:
                row = table[code]
                if row.sum() > 0:
                    votes += row / row.sum()
        if votes.sum() <= 0:
            votes[:] = 1.0
        return votes

    def model_text(self) -> str:
        return f"VFI over {len(self._tables)} feature interval tables"


@CLASSIFIERS.register("KStar", "lazy", "instance-based")
class KStar(Classifier):
    """Instance-based learner with an exponential similarity kernel over the
    mixed-attribute distance (simplified K*; see module docstring)."""

    OPTIONS = (
        OptionSpec("blend", FLOAT, 0.2,
                   "Kernel bandwidth as a fraction of the mean pairwise "
                   "distance.", minimum=1e-3, maximum=10.0),
    )

    def _fit(self, dataset: Dataset) -> None:
        from repro.ml.clusterers._distance import MixedDistance
        self._metric = MixedDistance().fit(dataset)
        matrix = self._metric.normalise(dataset.to_matrix())
        y = dataset.class_values()
        keep = ~np.isnan(y)
        self._train = matrix[keep]
        self._labels = y[keep].astype(int)
        if self._train.shape[0] > 1:
            sample = self._train[:min(200, self._train.shape[0])]
            dists = self._metric.pairwise_to(sample, sample)
            mean = float(dists[dists > 0].mean()) if (dists > 0).any() \
                else 1.0
        else:
            mean = 1.0
        self._bandwidth = max(mean * self.opt("blend"), 1e-6)

    def _distribution(self, instance: Instance) -> np.ndarray:
        row = self._metric.normalise(instance.values[None, :])
        dists = self._metric.pairwise_to(row, self._train)[0]
        kernel = np.exp(-dists / self._bandwidth)
        out = np.zeros(self.header.num_classes)
        np.add.at(out, self._labels, kernel)
        if out.sum() <= 0:
            out[:] = 1.0
        return out

    def model_text(self) -> str:
        return (f"K* (exponential kernel), bandwidth "
                f"{self._bandwidth:.4f}, {self._train.shape[0]} instances")


@CLASSIFIERS.register("VotedPerceptron", "functions", "linear", "online")
class VotedPerceptron(Classifier):
    """Freund & Schapire's voted perceptron (one-vs-rest for multiclass)."""

    OPTIONS = (
        OptionSpec("epochs", INT, 5, "Passes over the data.", minimum=1),
        OptionSpec("seed", INT, 1, "Shuffling seed."),
    )

    def _fit(self, dataset: Dataset) -> None:
        self._encoder = FeatureEncoder().fit(dataset)
        X, y, _ = self._encoder.encode_dataset(dataset)
        n, d = X.shape
        k = dataset.num_classes
        Xb = np.hstack([X, np.ones((n, 1))])
        rng = np.random.default_rng(self.opt("seed"))
        self._machines: list[list[tuple[np.ndarray, int]]] = []
        for cls in range(k):
            target = np.where(y == cls, 1.0, -1.0)
            w = np.zeros(d + 1)
            survived = 0
            machine: list[tuple[np.ndarray, int]] = []
            for _ in range(self.opt("epochs")):
                for i in rng.permutation(n):
                    if target[i] * (w @ Xb[i]) <= 0:
                        if survived:
                            machine.append((w.copy(), survived))
                        w = w + target[i] * Xb[i]
                        survived = 1
                    else:
                        survived += 1
            machine.append((w.copy(), max(survived, 1)))
            self._machines.append(machine)

    def _distribution(self, instance: Instance) -> np.ndarray:
        x = self._encoder.encode_instance(instance)
        xb = np.concatenate([x, [1.0]])
        scores = np.zeros(self.header.num_classes)
        for cls, machine in enumerate(self._machines):
            vote = sum(c * np.sign(w @ xb) for w, c in machine)
            total = sum(c for _, c in machine)
            scores[cls] = (vote / total + 1.0) / 2.0  # map [-1,1] -> [0,1]
        if scores.sum() <= 0:
            scores[:] = 1.0
        return scores

    def model_text(self) -> str:
        sizes = [len(m) for m in self._machines]
        return (f"Voted perceptron, {len(self._machines)} one-vs-rest "
                f"machines, {sum(sizes)} stored weight vectors")


@CLASSIFIERS.register("SMO", "functions", "svm", "linear")
class SMO(Classifier):
    """Linear-kernel SVM via Pegasos subgradient descent, one-vs-rest."""

    OPTIONS = (
        OptionSpec("c", FLOAT, 1.0, "Soft-margin cost.", minimum=1e-6),
        OptionSpec("epochs", INT, 50, "Pegasos epochs.", minimum=1),
        OptionSpec("seed", INT, 1, "Sampling seed."),
    )

    def _fit(self, dataset: Dataset) -> None:
        self._encoder = FeatureEncoder().fit(dataset)
        X, y, _ = self._encoder.encode_dataset(dataset)
        n, d = X.shape
        k = dataset.num_classes
        lam = 1.0 / (self.opt("c") * n)
        rng = np.random.default_rng(self.opt("seed"))
        self._W = np.zeros((k, d))
        self._b = np.zeros(k)
        for cls in range(k):
            target = np.where(y == cls, 1.0, -1.0)
            w = np.zeros(d)
            b = 0.0
            t = 0
            for _ in range(self.opt("epochs")):
                for i in rng.permutation(n):
                    t += 1
                    eta = 1.0 / (lam * t)
                    margin = target[i] * (w @ X[i] + b)
                    w *= (1 - eta * lam)
                    if margin < 1:
                        w += eta * target[i] * X[i]
                        b += eta * target[i]
            self._W[cls] = w
            self._b[cls] = b

    def _distribution(self, instance: Instance) -> np.ndarray:
        x = self._encoder.encode_instance(instance)
        margins = self._W @ x + self._b
        # squash margins through a logistic link for a usable distribution
        probs = 1.0 / (1.0 + np.exp(-np.clip(margins, -60, 60)))
        if probs.sum() <= 0:
            probs[:] = 1.0
        return probs

    def model_text(self) -> str:
        norms = np.linalg.norm(self._W, axis=1)
        return (f"Linear SVM (Pegasos), C={self.opt('c')}\n"
                f"Weight norms: " + ", ".join(f"{v:.3f}" for v in norms))


@CLASSIFIERS.register("SGDClassifier", "functions", "linear", "online")
class SGDClassifier(Classifier):
    """Online multinomial logistic regression by plain SGD (streaming-style
    counterpart of the batch :class:`Logistic` learner)."""

    OPTIONS = (
        OptionSpec("learning_rate", FLOAT, 0.1, "SGD step size.",
                   minimum=1e-6),
        OptionSpec("epochs", INT, 30, "Passes over the data.", minimum=1),
        OptionSpec("seed", INT, 1, "Shuffling seed."),
    )

    def _fit(self, dataset: Dataset) -> None:
        self._encoder = FeatureEncoder().fit(dataset)
        X, y, _ = self._encoder.encode_dataset(dataset)
        n, d = X.shape
        k = dataset.num_classes
        Xb = np.hstack([X, np.ones((n, 1))])
        rng = np.random.default_rng(self.opt("seed"))
        W = np.zeros((d + 1, k))
        lr = self.opt("learning_rate")
        for epoch in range(self.opt("epochs")):
            step = lr / (1 + 0.1 * epoch)
            for i in rng.permutation(n):
                z = Xb[i] @ W
                z -= z.max()
                p = np.exp(z)
                p /= p.sum()
                p[y[i]] -= 1.0
                W -= step * np.outer(Xb[i], p)
        self._W = W

    def _distribution(self, instance: Instance) -> np.ndarray:
        x = self._encoder.encode_instance(instance)
        xb = np.concatenate([x, [1.0]])
        z = xb @ self._W
        z -= z.max()
        p = np.exp(z)
        return p / p.sum()

    def model_text(self) -> str:
        return (f"SGD multinomial logistic, lr={self.opt('learning_rate')}, "
                f"{self.opt('epochs')} epochs")
