"""Multinomial logistic regression (ridge-penalised, full-batch gradient
descent with backtracking step control).

WEKA's ``Logistic`` is one of the statistical algorithms the paper's
requirement R2 contrasts with machine-learning ones; it is the library's
canonical linear baseline.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.ml.base import CLASSIFIERS, Classifier
from repro.ml.classifiers._encode import FeatureEncoder
from repro.ml.options import FLOAT, INT, OptionSpec


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


@CLASSIFIERS.register("Logistic", "functions", "linear", "statistical")
class Logistic(Classifier):
    """Ridge-penalised multinomial logistic regression."""

    OPTIONS = (
        OptionSpec("ridge", FLOAT, 1e-4, "L2 penalty on the weights.",
                   minimum=0.0),
        OptionSpec("max_iterations", INT, 300,
                   "Gradient-descent iteration cap.", minimum=1),
        OptionSpec("tolerance", FLOAT, 1e-6,
                   "Stop when the loss improves by less than this.",
                   minimum=0.0),
    )

    def _fit(self, dataset: Dataset) -> None:
        self._encoder = FeatureEncoder().fit(dataset)
        X, y, w = self._encoder.encode_dataset(dataset)
        n, d = X.shape
        k = dataset.num_classes
        Xb = np.hstack([X, np.ones((n, 1))])
        W = np.zeros((d + 1, k))
        Y = np.zeros((n, k))
        Y[np.arange(n), y] = 1.0
        sw = w[:, None] / w.sum()
        ridge = self.opt("ridge")
        step = 1.0
        prev_loss = np.inf
        for _ in range(self.opt("max_iterations")):
            probs = _softmax(Xb @ W)
            loss = -float((sw * Y * np.log(probs + 1e-300)).sum()) \
                + 0.5 * ridge * float((W[:-1] ** 2).sum())
            grad = Xb.T @ ((probs - Y) * sw)
            grad[:-1] += ridge * W[:-1]
            # backtracking: halve the step until the loss decreases
            while step > 1e-8:
                candidate = W - step * grad
                probs_c = _softmax(Xb @ candidate)
                loss_c = -float((sw * Y * np.log(probs_c + 1e-300)).sum()) \
                    + 0.5 * ridge * float((candidate[:-1] ** 2).sum())
                if loss_c <= loss:
                    break
                step *= 0.5
            W = W - step * grad
            step = min(step * 1.5, 100.0)
            if abs(prev_loss - loss) < self.opt("tolerance"):
                break
            prev_loss = loss
        self._W = W
        self._final_loss = float(loss)

    def _distribution(self, instance: Instance) -> np.ndarray:
        x = self._encoder.encode_instance(instance)
        xb = np.concatenate([x, [1.0]])
        return _softmax((xb @ self._W)[None, :])[0]

    def _distribution_many(self, matrix: np.ndarray) -> np.ndarray:
        X = self._encoder.encode_matrix(matrix)
        Xb = np.hstack([X, np.ones((X.shape[0], 1))])
        return _softmax(Xb @ self._W)

    def model_text(self) -> str:
        lines = ["Multinomial logistic regression",
                 f"Features: {self._W.shape[0] - 1}   "
                 f"Classes: {self._W.shape[1]}",
                 f"Final loss: {self._final_loss:.6f}", "",
                 "Intercepts: " + ", ".join(
                     f"{v:.3f}" for v in self._W[-1])]
        return "\n".join(lines)
