"""Second-wave classifiers completing the WEKA-style catalogue:
ConjunctiveRule, LWL (locally weighted learning), MultiClassClassifier,
CVParameterSelection and AttributeSelectedClassifier.

``AttributeSelectedClassifier`` closes the loop with :mod:`repro.ml.attrsel`
— it is the meta scheme behind the case study's remark that "the attribute
selection process can also be automated through the use of a genetic search
service".
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLASSIFIERS, Classifier
from repro.ml.classifiers._tree import entropy
from repro.ml.options import INT, STRING, OptionSpec, \
    parse_option_string


def _make(name: str, option_string: str = "") -> Classifier:
    options = parse_option_string(option_string) if option_string else {}
    return CLASSIFIERS.create(name, options)


@CLASSIFIERS.register("ConjunctiveRule", "rules")
class ConjunctiveRule(Classifier):
    """A single AND-rule grown greedily by information gain; everything the
    rule misses falls to the training prior of the uncovered set."""

    OPTIONS = (
        OptionSpec("max_conditions", INT, 3,
                   "Maximum antecedent length.", minimum=1),
    )

    def _fit(self, dataset: Dataset) -> None:
        matrix = dataset.to_matrix()
        y = dataset.class_values()
        keep = ~np.isnan(y)
        matrix, y = matrix[keep], y[keep].astype(int)
        k = dataset.num_classes
        covered = np.ones(matrix.shape[0], dtype=bool)
        self._conditions: list[tuple[int, str, float]] = []
        used: set[int] = set()
        for _ in range(self.opt("max_conditions")):
            parent = np.bincount(y[covered], minlength=k).astype(float)
            best_gain, best = 1e-9, None
            for j, attr in enumerate(dataset.attributes):
                if j == dataset.class_index or j in used or attr.is_string:
                    continue
                col = matrix[:, j]
                if attr.is_nominal:
                    for v in range(attr.num_values):
                        mask = covered & (col == v)
                        gain = self._gain(parent, y, mask, covered, k)
                        if gain > best_gain:
                            best_gain, best = gain, (j, "eq", float(v),
                                                     mask)
                else:
                    present = col[covered & ~np.isnan(col)]
                    if present.size < 2:
                        continue
                    for thr in np.quantile(present,
                                           [0.25, 0.5, 0.75]):
                        for op in ("le", "gt"):
                            if op == "le":
                                mask = covered & (col <= thr)
                            else:
                                mask = covered & (col > thr)
                            gain = self._gain(parent, y, mask, covered, k)
                            if gain > best_gain:
                                best_gain, best = gain, (j, op, float(thr),
                                                         mask)
            if best is None:
                break
            j, op, value, mask = best
            self._conditions.append((j, op, value))
            used.add(j)
            covered = mask
            if np.unique(y[covered]).size <= 1:
                break
        inside = np.bincount(y[covered], minlength=k).astype(float)
        outside = np.bincount(y[~covered], minlength=k).astype(float)
        self._inside = (inside + 0.5) / (inside.sum() + 0.5 * k)
        self._outside = (outside + 0.5) / (outside.sum() + 0.5 * k)

    @staticmethod
    def _gain(parent, y, mask, covered, k) -> float:
        if not mask.any():
            return -1.0
        inside = np.bincount(y[mask], minlength=k).astype(float)
        rest = parent - inside
        total = parent.sum()
        avg = (inside.sum() * entropy(inside)
               + rest.sum() * entropy(rest)) / total
        return entropy(parent) - avg

    def _matches(self, instance: Instance) -> bool:
        for j, op, value in self._conditions:
            cell = instance.value(j)
            if math.isnan(cell):
                return False
            if op == "eq" and cell != value:
                return False
            if op == "le" and not cell <= value:
                return False
            if op == "gt" and not cell > value:
                return False
        return True

    def _distribution(self, instance: Instance) -> np.ndarray:
        return (self._inside if self._matches(instance)
                else self._outside).copy()

    def model_text(self) -> str:
        header = self.header
        parts = []
        for j, op, value in self._conditions:
            attr = header.attribute(j)
            shown = attr.values[int(value)] if attr.is_nominal else \
                f"{value:g}"
            symbol = {"eq": "=", "le": "<=", "gt": ">"}[op]
            parts.append(f"{attr.name} {symbol} {shown}")
        rule = " and ".join(parts) or "(always)"
        label = header.class_attribute.values[int(np.argmax(self._inside))]
        other = header.class_attribute.values[
            int(np.argmax(self._outside))]
        return (f"Conjunctive rule\nIF {rule} THEN {label}\n"
                f"ELSE {other}")


@CLASSIFIERS.register("LWL", "lazy", "locally-weighted")
class LWL(Classifier):
    """Locally weighted learning: train the base classifier per query on
    the k nearest neighbours, weighted by a linear distance kernel."""

    OPTIONS = (
        OptionSpec("base", STRING, "NaiveBayes", "Base classifier name."),
        OptionSpec("k", INT, 30, "Neighbourhood size.", minimum=2),
    )

    def _fit(self, dataset: Dataset) -> None:
        from repro.ml.clusterers._distance import MixedDistance
        self._metric = MixedDistance().fit(dataset)
        self._train = dataset.copy()
        self._matrix = self._metric.normalise(dataset.to_matrix())

    def _distribution(self, instance: Instance) -> np.ndarray:
        row = self._metric.normalise(instance.values[None, :])
        dists = self._metric.pairwise_to(row, self._matrix)[0]
        k = min(self.opt("k"), len(dists))
        nearest = np.argsort(dists, kind="stable")[:k]
        bandwidth = max(float(dists[nearest[-1]]), 1e-9)
        local = self._train.copy_header()
        for idx in nearest:
            inst = self._train[int(idx)].copy()
            inst.weight = max(1.0 - dists[int(idx)] / bandwidth, 1e-3)
            local.add(inst)
        try:
            base = _make(self.opt("base"))
            base.fit(local)
            return base.distribution(instance)
        except DataError:
            counts = local.class_counts()
            total = counts.sum()
            if total <= 0:
                k_classes = self.header.num_classes
                return np.full(k_classes, 1.0 / k_classes)
            return counts / total

    def model_text(self) -> str:
        return (f"LWL: {self.opt('base')} trained per query on "
                f"{self.opt('k')} neighbours")


@CLASSIFIERS.register("MultiClassClassifier", "meta", "one-vs-rest")
class MultiClassClassifier(Classifier):
    """One-vs-rest reduction wrapping any (possibly binary-only) base."""

    OPTIONS = (
        OptionSpec("base", STRING, "Logistic", "Base classifier name."),
        OptionSpec("base_options", STRING, "", "Base options."),
    )

    def _fit(self, dataset: Dataset) -> None:
        from repro.data.attribute import Attribute
        k = dataset.num_classes
        self._machines: list[Classifier] = []
        for cls in range(k):
            attrs = [a.copy() if i != dataset.class_index
                     else Attribute.nominal(a.name, ("rest", "target"))
                     for i, a in enumerate(dataset.attributes)]
            binary = Dataset(dataset.relation, attrs,
                             class_index=dataset.class_index)
            for inst in dataset:
                if inst.class_is_missing(dataset):
                    continue
                values = inst.values.copy()
                values[dataset.class_index] = float(
                    int(inst.class_value(dataset)) == cls)
                binary.add(Instance(values, inst.weight))
            clf = _make(self.opt("base"), self.opt("base_options"))
            clf.fit(binary)
            self._machines.append(clf)

    def _distribution(self, instance: Instance) -> np.ndarray:
        scores = np.array([m.distribution(instance)[1]
                           for m in self._machines])
        if scores.sum() <= 0:
            scores[:] = 1.0
        return scores

    def model_text(self) -> str:
        return (f"One-vs-rest over {len(self._machines)} x "
                f"{self.opt('base')}")


@CLASSIFIERS.register("CVParameterSelection", "meta", "tuning")
class CVParameterSelection(Classifier):
    """Grid-search one integer option of the base classifier by CV
    accuracy (WEKA's CVParameterSelection, single-parameter form)."""

    OPTIONS = (
        OptionSpec("base", STRING, "J48", "Base classifier name."),
        OptionSpec("parameter", STRING, "min_obj", "Option to sweep."),
        OptionSpec("values", STRING, "2,5,10,20",
                   "Comma-separated candidate values."),
        OptionSpec("folds", INT, 3, "CV folds per candidate.", minimum=2),
    )

    def _fit(self, dataset: Dataset) -> None:
        from repro.ml.evaluation import cross_validate
        candidates = [v.strip() for v in self.opt("values").split(",")
                      if v.strip()]
        if not candidates:
            raise DataError("no candidate values to sweep")
        folds = min(self.opt("folds"), dataset.num_instances)
        self.scores: dict[str, float] = {}
        best_acc, best_value = -1.0, candidates[0]
        for value in candidates:
            result = cross_validate(
                lambda v=value: CLASSIFIERS.create(
                    self.opt("base"), {self.opt("parameter"): v}),
                dataset, k=folds)
            self.scores[value] = result.accuracy
            if result.accuracy > best_acc:
                best_acc, best_value = result.accuracy, value
        self.chosen_value = best_value
        self._model = CLASSIFIERS.create(
            self.opt("base"), {self.opt("parameter"): best_value})
        self._model.fit(dataset)

    def _distribution(self, instance: Instance) -> np.ndarray:
        return self._model.distribution(instance)

    def model_text(self) -> str:
        lines = [f"CVParameterSelection: {self.opt('base')} "
                 f"{self.opt('parameter')}={self.chosen_value}"]
        for value, acc in self.scores.items():
            lines.append(f"  {self.opt('parameter')}={value}: {acc:.3f}")
        return "\n".join(lines)


@CLASSIFIERS.register("AttributeSelectedClassifier", "meta",
                      "attribute-selection")
class AttributeSelectedClassifier(Classifier):
    """Run an attribute-selection approach, then train the base classifier
    on the projected data (WEKA's AttributeSelectedClassifier)."""

    OPTIONS = (
        OptionSpec("approach", STRING, "GeneticSearch+CfsSubset",
                   "Selection approach name (see attrsel.approaches)."),
        OptionSpec("base", STRING, "J48", "Base classifier name."),
        OptionSpec("base_options", STRING, "", "Base options."),
    )

    def _fit(self, dataset: Dataset) -> None:
        from repro.ml.attrsel import select_attributes
        self.selected, projected = select_attributes(
            dataset, self.opt("approach"))
        self._indices = [dataset.attribute_index(n) for n in self.selected]
        self._model = _make(self.opt("base"), self.opt("base_options"))
        self._model.fit(projected)
        self._projected_header = projected.copy_header()

    def _distribution(self, instance: Instance) -> np.ndarray:
        cells = list(instance.values[self._indices])
        cells.append(instance.value(self.header.class_index))
        return self._model.distribution(Instance(np.array(cells)))

    def model_text(self) -> str:
        return (f"AttributeSelectedClassifier "
                f"({self.opt('approach')} -> {self.opt('base')})\n"
                f"Selected: {self.selected}\n\n"
                + self._model.model_text())
