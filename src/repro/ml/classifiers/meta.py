"""Meta / ensemble classifiers: Bagging, AdaBoostM1, RandomForest (over
RandomTree) and Vote.

These mirror the WEKA meta family the paper's Classifier Web Service lists via
``getClassifiers``.  Each meta learner takes a ``base`` option naming any
registered classifier, so compositions like bagged J48 work over the service
interface with string options alone — no Java-style object plumbing.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLASSIFIERS, Classifier
from repro.ml.classifiers._tree import TreeNode, distribute, render_text
from repro.ml.options import INT, STRING, OptionSpec, parse_option_string


def _make_base(name: str, option_string: str) -> Classifier:
    from repro.ml import base as mlbase
    options = parse_option_string(option_string) if option_string else {}
    return mlbase.CLASSIFIERS.create(name, options)


def _bootstrap(dataset: Dataset, rng: np.random.Generator) -> Dataset:
    n = dataset.num_instances
    idx = rng.integers(0, n, size=n)
    return dataset.subset([int(i) for i in idx])


@CLASSIFIERS.register("Bagging", "meta", "ensemble")
class Bagging(Classifier):
    """Bootstrap aggregation over any registered base classifier."""

    OPTIONS = (
        OptionSpec("base", STRING, "J48", "Base classifier name."),
        OptionSpec("base_options", STRING, "",
                   "Base options as 'key=value key=value'."),
        OptionSpec("iterations", INT, 10, "Ensemble size.", minimum=1),
        OptionSpec("seed", INT, 1, "Bootstrap seed."),
    )

    def _fit(self, dataset: Dataset) -> None:
        rng = np.random.default_rng(self.opt("seed"))
        self._members: list[Classifier] = []
        for _ in range(self.opt("iterations")):
            clf = _make_base(self.opt("base"), self.opt("base_options"))
            clf.fit(_bootstrap(dataset, rng))
            self._members.append(clf)

    def _distribution(self, instance: Instance) -> np.ndarray:
        out = np.zeros(self.header.num_classes)
        for member in self._members:
            out += member.distribution(instance)
        return out

    def model_text(self) -> str:
        return (f"Bagging of {len(self._members)} x {self.opt('base')}\n"
                f"First member:\n\n{self._members[0].model_text()}")


@CLASSIFIERS.register("AdaBoostM1", "meta", "ensemble", "boosting")
class AdaBoostM1(Classifier):
    """Freund & Schapire's AdaBoost.M1 with instance reweighting."""

    OPTIONS = (
        OptionSpec("base", STRING, "DecisionStump", "Base classifier name."),
        OptionSpec("base_options", STRING, "",
                   "Base options as 'key=value key=value'."),
        OptionSpec("iterations", INT, 10, "Boosting rounds.", minimum=1),
    )

    def _fit(self, dataset: Dataset) -> None:
        work = dataset.copy()
        n = work.num_instances
        total = sum(inst.weight for inst in work)
        for inst in work:
            inst.weight = inst.weight / total * n
        self._members: list[tuple[Classifier, float]] = []
        for _ in range(self.opt("iterations")):
            clf = _make_base(self.opt("base"), self.opt("base_options"))
            clf.fit(work)
            wrong = np.array([
                clf.predict_instance(inst) != int(inst.class_value(work))
                if not inst.class_is_missing(work) else False
                for inst in work])
            weights = np.array([inst.weight for inst in work])
            err = float(weights[wrong].sum() / weights.sum())
            if err >= 0.5:
                if not self._members:
                    self._members.append((clf, 1.0))
                break
            err = max(err, 1e-10)
            alpha = math.log((1 - err) / err)
            self._members.append((clf, alpha))
            if err < 1e-9:
                break
            # reweight: mistakes up, correct down; renormalise to n
            factor = np.where(wrong, (1 - err) / err, 1.0)
            new_weights = weights * factor
            new_weights *= n / new_weights.sum()
            for inst, w in zip(work, new_weights):
                inst.weight = float(w)

    def _distribution(self, instance: Instance) -> np.ndarray:
        out = np.zeros(self.header.num_classes)
        for clf, alpha in self._members:
            out[clf.predict_instance(instance)] += alpha
        if out.sum() <= 0:
            out[:] = 1.0
        return out

    def model_text(self) -> str:
        lines = [f"AdaBoostM1 with {len(self._members)} member(s) of "
                 f"{self.opt('base')}"]
        for i, (_, alpha) in enumerate(self._members):
            lines.append(f"  round {i}: weight {alpha:.4f}")
        return "\n".join(lines)


@CLASSIFIERS.register("RandomTree", "tree", "randomised")
class RandomTree(Classifier):
    """Unpruned tree choosing among a random attribute subset at each node
    (the RandomForest building block)."""

    OPTIONS = (
        OptionSpec("k", INT, 0,
                   "Attributes sampled per node (0 = sqrt of count).",
                   minimum=0),
        OptionSpec("min_obj", INT, 1, "Minimum instances per leaf.",
                   minimum=1),
        OptionSpec("seed", INT, 1, "Attribute-sampling seed."),
    )

    def __init__(self, **options):
        super().__init__(**options)
        self.root: TreeNode | None = None

    def _fit(self, dataset: Dataset) -> None:
        matrix = dataset.to_matrix()
        y = dataset.class_values()
        keep = ~np.isnan(y)
        self._matrix = matrix[keep]
        self._y = y[keep].astype(int)
        self._w = dataset.weights()[keep]
        self._n_classes = dataset.num_classes
        self._attrs = dataset.attributes
        self._class_index = dataset.class_index
        self._rng = np.random.default_rng(self.opt("seed"))
        usable = [i for i, a in enumerate(self._attrs)
                  if i != self._class_index and not a.is_string]
        if not usable:
            raise DataError("no usable attributes")
        self._usable = usable
        k = self.opt("k") or max(1, int(math.sqrt(len(usable))))
        self._k = min(k, len(usable))
        rows = np.arange(self._matrix.shape[0])
        self.root = self._build(rows)
        del self._matrix, self._y, self._w

    def _counts(self, rows: np.ndarray) -> np.ndarray:
        counts = np.zeros(self._n_classes)
        np.add.at(counts, self._y[rows], self._w[rows])
        return counts

    def _build(self, rows: np.ndarray) -> TreeNode:
        counts = self._counts(rows)
        node = TreeNode(class_counts=counts)
        if (counts.sum() < 2 * self.opt("min_obj")
                or np.count_nonzero(counts) <= 1):
            return node
        pool = self._rng.choice(self._usable, size=self._k, replace=False)
        from repro.ml.classifiers._tree import entropy
        parent_entropy = entropy(counts)
        best_gain, best = 0.0, None
        for attr_idx in pool:
            attr = self._attrs[attr_idx]
            col = self._matrix[rows, attr_idx]
            present = ~np.isnan(col)
            if attr.is_nominal:
                branch = []
                for v in range(attr.num_values):
                    branch.append(self._counts(rows[present & (col == v)]))
                total = sum(float(b.sum()) for b in branch)
                if total <= 0:
                    continue
                avg = sum(float(b.sum()) / total * entropy(b)
                          for b in branch)
                gain = parent_entropy - avg
                if gain > best_gain:
                    best_gain, best = gain, (int(attr_idx), None)
            else:
                values = np.unique(col[present])
                if values.size < 2:
                    continue
                thresholds = (values[:-1] + values[1:]) / 2.0
                if thresholds.size > 16:
                    thresholds = self._rng.choice(thresholds, size=16,
                                                  replace=False)
                for thr in thresholds:
                    left = self._counts(rows[present & (col <= thr)])
                    right = self._counts(rows[present & (col > thr)])
                    total = float(left.sum() + right.sum())
                    if total <= 0:
                        continue
                    avg = (float(left.sum()) * entropy(left)
                           + float(right.sum()) * entropy(right)) / total
                    gain = parent_entropy - avg
                    if gain > best_gain:
                        best_gain, best = gain, (int(attr_idx), float(thr))
        if best is None:
            return node
        attr_idx, threshold = best
        attr = self._attrs[attr_idx]
        col = self._matrix[rows, attr_idx]
        present = ~np.isnan(col)
        node.attribute = attr_idx
        node.threshold = threshold
        if threshold is None:
            node.branch_values = list(attr.values)
            masks = [present & (col == v) for v in range(attr.num_values)]
        else:
            masks = [present & (col <= threshold),
                     present & (col > threshold)]
        for mask in masks:
            sub = rows[mask]
            if sub.size == 0:
                node.children.append(TreeNode(class_counts=counts.copy()))
            else:
                node.children.append(self._build(sub))
        return node

    def _distribution(self, instance: Instance) -> np.ndarray:
        assert self.root is not None
        return distribute(self.root, instance, self.header.num_classes)

    def model_text(self) -> str:
        assert self.root is not None
        return "RandomTree\n----------\n" + render_text(self.root,
                                                        self.header)


@CLASSIFIERS.register("RandomForest", "meta", "ensemble", "tree")
class RandomForest(Classifier):
    """Bagged random trees."""

    OPTIONS = (
        OptionSpec("trees", INT, 20, "Number of trees.", minimum=1),
        OptionSpec("k", INT, 0,
                   "Attributes sampled per node (0 = sqrt of count).",
                   minimum=0),
        OptionSpec("seed", INT, 1, "Forest seed."),
    )

    def _fit(self, dataset: Dataset) -> None:
        rng = np.random.default_rng(self.opt("seed"))
        self._members = []
        for i in range(self.opt("trees")):
            tree = RandomTree(k=self.opt("k"),
                              seed=int(rng.integers(1, 2 ** 31)))
            tree.fit(_bootstrap(dataset, rng))
            self._members.append(tree)

    def _distribution(self, instance: Instance) -> np.ndarray:
        out = np.zeros(self.header.num_classes)
        for tree in self._members:
            out += tree.distribution(instance)
        return out

    def model_text(self) -> str:
        sizes = [m.root.size() for m in self._members if m.root]
        return (f"RandomForest of {len(self._members)} trees\n"
                f"Tree sizes: min={min(sizes)} max={max(sizes)} "
                f"mean={sum(sizes) / len(sizes):.1f}")


@CLASSIFIERS.register("Vote", "meta", "ensemble")
class Vote(Classifier):
    """Average-of-probabilities combination of heterogeneous classifiers."""

    OPTIONS = (
        OptionSpec("members", STRING, "J48,NaiveBayes,IBk",
                   "Comma-separated registered classifier names."),
    )

    def _fit(self, dataset: Dataset) -> None:
        names = [n.strip() for n in self.opt("members").split(",")
                 if n.strip()]
        if not names:
            raise DataError("Vote needs at least one member")
        self._members = []
        for name in names:
            clf = _make_base(name, "")
            clf.fit(dataset)
            self._members.append(clf)

    def _distribution(self, instance: Instance) -> np.ndarray:
        out = np.zeros(self.header.num_classes)
        for member in self._members:
            out += member.distribution(instance)
        return out

    def model_text(self) -> str:
        return "Vote over: " + ", ".join(
            type(m).__name__ for m in self._members)
