"""Baseline classifiers: ZeroR, OneR and DecisionStump.

These are the first-generation single-algorithm tools the paper's related-work
section describes, and they serve as the floor for every evaluation: any
service-composed pipeline should beat ZeroR.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLASSIFIERS, Classifier
from repro.ml.classifiers._tree import entropy
from repro.ml.options import INT, OptionSpec


@CLASSIFIERS.register("ZeroR", "baseline", "rules")
class ZeroR(Classifier):
    """Predict the majority class, always."""

    def _fit(self, dataset: Dataset) -> None:
        counts = dataset.class_counts()
        if counts.sum() == 0:
            raise DataError("no labelled instances")
        self._dist = counts / counts.sum()

    def _distribution(self, instance: Instance) -> np.ndarray:
        return self._dist.copy()

    def _distribution_many(self, rows: np.ndarray) -> np.ndarray:
        return np.tile(self._dist, (rows.shape[0], 1))

    def model_text(self) -> str:
        label = self.header.class_attribute.values[int(np.argmax(self._dist))]
        return f"ZeroR predicts class value: {label}"


@CLASSIFIERS.register("OneR", "baseline", "rules")
class OneR(Classifier):
    """Holte's 1R: one rule on the single most predictive attribute.

    Numeric attributes are bucketed greedily with a minimum bucket size
    (option ``min_bucket``, Holte's SMALL parameter).
    """

    OPTIONS = (
        OptionSpec("min_bucket", INT, 6,
                   "Minimum instances per numeric bucket.", minimum=1),
    )

    def _fit(self, dataset: Dataset) -> None:
        best_correct = -1.0
        best = None
        y = dataset.class_values()
        weights = dataset.weights()
        n_classes = dataset.num_classes
        for idx, attr in enumerate(dataset.attributes):
            if idx == dataset.class_index or attr.is_string:
                continue
            col = dataset.column(idx)
            if attr.is_nominal:
                rule = self._nominal_rule(col, y, weights, attr.num_values,
                                          n_classes)
            else:
                rule = self._numeric_rule(col, y, weights, n_classes)
            if rule is None:
                continue
            correct, mapping = rule
            if correct > best_correct:
                best_correct = correct
                best = (idx, mapping)
        if best is None:
            raise DataError("OneR found no usable attribute")
        self._attr, self._mapping = best
        counts = dataset.class_counts()
        self._default = int(np.argmax(counts))
        self._n_classes = n_classes

    def _nominal_rule(self, col, y, w, n_values, n_classes):
        table = np.zeros((n_values, n_classes))
        for v, cls, weight in zip(col, y, w):
            if not (math.isnan(v) or math.isnan(cls)):
                table[int(v), int(cls)] += weight
        mapping = ("nominal", table.argmax(axis=1))
        return float(table.max(axis=1).sum()), mapping

    def _numeric_rule(self, col, y, w, n_classes):
        present = ~(np.isnan(col) | np.isnan(y))
        if present.sum() < 2:
            return None
        values = col[present]
        classes = y[present].astype(int)
        ws = w[present]
        order = np.argsort(values, kind="stable")
        values, classes, ws = values[order], classes[order], ws[order]
        min_bucket = self.opt("min_bucket")
        cuts: list[float] = []
        preds: list[int] = []
        counts = np.zeros(n_classes)
        size = 0.0
        correct = 0.0
        i = 0
        n = len(values)
        while i < n:
            counts[classes[i]] += ws[i]
            size += ws[i]
            boundary = (i == n - 1) or (values[i + 1] > values[i])
            # close the bucket once it holds min_bucket of the majority class
            if boundary and counts.max() >= min_bucket and i < n - 1:
                cuts.append((values[i] + values[i + 1]) / 2.0)
                preds.append(int(np.argmax(counts)))
                correct += float(counts.max())
                counts = np.zeros(n_classes)
                size = 0.0
            i += 1
        preds.append(int(np.argmax(counts)) if size else 0)
        correct += float(counts.max()) if size else 0.0
        return correct, ("numeric", (np.array(cuts), np.array(preds)))

    def _distribution(self, instance: Instance) -> np.ndarray:
        kind, payload = self._mapping
        value = instance.value(self._attr)
        out = np.zeros(self._n_classes)
        if math.isnan(value):
            out[self._default] = 1.0
            return out
        if kind == "nominal":
            out[int(payload[int(value)])] = 1.0
        else:
            cuts, preds = payload
            bucket = int(np.searchsorted(cuts, value, side="right"))
            out[int(preds[bucket])] = 1.0
        return out

    def model_text(self) -> str:
        attr = self.header.attribute(self._attr)
        kind, payload = self._mapping
        lines = [f"{attr.name}:"]
        class_values = self.header.class_attribute.values
        if kind == "nominal":
            for value, cls in zip(attr.values, payload):
                lines.append(f"    {value} -> {class_values[int(cls)]}")
        else:
            cuts, preds = payload
            lo = "-inf"
            for cut, cls in zip(cuts, preds[:-1]):
                lines.append(f"    ({lo}, {cut:g}] -> "
                             f"{class_values[int(cls)]}")
                lo = f"{cut:g}"
            lines.append(f"    ({lo}, +inf) -> "
                         f"{class_values[int(preds[-1])]}")
        return "\n".join(lines)


@CLASSIFIERS.register("DecisionStump", "tree", "baseline")
class DecisionStump(Classifier):
    """A one-split decision tree chosen by information gain.

    Missing values form a third branch, matching WEKA's stump.
    """

    def _fit(self, dataset: Dataset) -> None:
        y = dataset.class_values()
        w = dataset.weights()
        n_classes = dataset.num_classes
        parent = dataset.class_counts()
        best_gain, best = -1.0, None
        for idx, attr in enumerate(dataset.attributes):
            if idx == dataset.class_index or attr.is_string:
                continue
            col = dataset.column(idx)
            present = ~(np.isnan(col) | np.isnan(y))
            if attr.is_nominal:
                for v in range(attr.num_values):
                    split = self._binary_counts(
                        col, y, w, present, col == v, n_classes)
                    gain = entropy(parent) - self._avg_entropy(split)
                    if gain > best_gain:
                        best_gain, best = gain, (idx, float(v), "eq", split)
            else:
                values = np.unique(col[present])
                for lo, hi in zip(values[:-1], values[1:]):
                    thr = (lo + hi) / 2.0
                    split = self._binary_counts(
                        col, y, w, present, col <= thr, n_classes)
                    gain = entropy(parent) - self._avg_entropy(split)
                    if gain > best_gain:
                        best_gain, best = gain, (idx, thr, "le", split)
        if best is None:
            raise DataError("DecisionStump found no usable split")
        self._attr, self._value, self._op, counts = best
        self._branch_dists = []
        for c in counts:
            total = c.sum()
            self._branch_dists.append(
                c / total if total > 0 else parent / parent.sum())

    @staticmethod
    def _binary_counts(col, y, w, present, mask, n_classes):
        in_counts = np.zeros(n_classes)
        out_counts = np.zeros(n_classes)
        miss_counts = np.zeros(n_classes)
        for i in range(len(col)):
            if math.isnan(y[i]):
                continue
            cls = int(y[i])
            if not present[i] or math.isnan(col[i]):
                miss_counts[cls] += w[i]
            elif mask[i]:
                in_counts[cls] += w[i]
            else:
                out_counts[cls] += w[i]
        return [in_counts, out_counts, miss_counts]

    @staticmethod
    def _avg_entropy(branch_counts) -> float:
        total = sum(float(c.sum()) for c in branch_counts)
        if total <= 0:
            return 0.0
        return sum(float(c.sum()) / total * entropy(c)
                   for c in branch_counts)

    def _distribution(self, instance: Instance) -> np.ndarray:
        value = instance.value(self._attr)
        if math.isnan(value):
            return self._branch_dists[2].copy()
        if self._op == "eq":
            hit = value == self._value
        else:
            hit = value <= self._value
        return self._branch_dists[0 if hit else 1].copy()

    def model_text(self) -> str:
        attr = self.header.attribute(self._attr)
        class_values = self.header.class_attribute.values
        if self._op == "eq":
            cond = f"{attr.name} = {attr.values[int(self._value)]}"
        else:
            cond = f"{attr.name} <= {self._value:g}"
        names = [class_values[int(np.argmax(d))] for d in self._branch_dists]
        return (f"Decision Stump\n\n{cond} : {names[0]}\n"
                f"not ({cond}) : {names[1]}\n"
                f"{attr.name} is missing : {names[2]}")
