"""ID3 — Quinlan's original information-gain tree over nominal attributes.

Listed here because the paper's related work places C4.5's ancestor among the
"first-generation" tools; it also gives the Classifier Web Service a second
tree learner whose behaviour differs visibly from J48 (no pruning, no numeric
or missing-value support).
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLASSIFIERS, Classifier
from repro.ml.classifiers._tree import (TreeNode, graph_to_dot, info_gain,
                                        render_text, tree_graph)


@CLASSIFIERS.register("Id3", "tree", "nominal-only")
class Id3(Classifier):
    """Unpruned information-gain decision tree (nominal attributes only)."""

    def __init__(self, **options):
        super().__init__(**options)
        self.root: TreeNode | None = None

    def _fit(self, dataset: Dataset) -> None:
        for idx, attr in enumerate(dataset.attributes):
            if idx != dataset.class_index and not attr.is_nominal:
                raise DataError(
                    f"Id3 handles nominal attributes only; "
                    f"{attr.name!r} is {attr.kind}")
        matrix = dataset.to_matrix()
        if np.isnan(matrix).any():
            raise DataError("Id3 cannot handle missing values "
                            "(use the ReplaceMissing filter first)")
        self._matrix = matrix
        self._y = dataset.class_values().astype(int)
        self._w = dataset.weights()
        self._n_classes = dataset.num_classes
        self._attrs = dataset.attributes
        rows = np.arange(matrix.shape[0])
        self.root = self._build(rows, frozenset({dataset.class_index}))
        del self._matrix, self._y, self._w

    def _counts(self, rows: np.ndarray) -> np.ndarray:
        counts = np.zeros(self._n_classes)
        np.add.at(counts, self._y[rows], self._w[rows])
        return counts

    def _build(self, rows: np.ndarray, used: frozenset[int]) -> TreeNode:
        counts = self._counts(rows)
        node = TreeNode(class_counts=counts)
        if np.count_nonzero(counts) <= 1 or len(used) >= len(self._attrs):
            return node
        best_gain, best_idx = 0.0, None
        for idx, attr in enumerate(self._attrs):
            if idx in used:
                continue
            branch_counts = []
            for v in range(attr.num_values):
                mask = self._matrix[rows, idx] == v
                branch_counts.append(self._counts(rows[mask]))
            gain = info_gain(counts, branch_counts)
            if gain > best_gain + 1e-12:
                best_gain, best_idx = gain, idx
        if best_idx is None:
            return node
        attr = self._attrs[best_idx]
        node.attribute = best_idx
        node.branch_values = list(attr.values)
        child_used = used | {best_idx}
        for v in range(attr.num_values):
            mask = self._matrix[rows, best_idx] == v
            sub = rows[mask]
            if sub.size == 0:
                node.children.append(TreeNode(class_counts=counts.copy()))
            else:
                node.children.append(self._build(sub, child_used))
        return node

    def _distribution(self, instance: Instance) -> np.ndarray:
        assert self.root is not None
        node = self.root
        while not node.is_leaf:
            value = instance.value(node.attribute)
            if math.isnan(value):
                raise DataError("Id3 cannot classify a missing value")
            node = node.children[int(value)]
        total = node.total_weight
        if total <= 0:
            k = self.header.num_classes
            return np.full(k, 1.0 / k)
        return node.class_counts / total

    def model_text(self) -> str:
        if self.root is None:
            return "(not fitted)"
        return "Id3\n---\n" + render_text(self.root, self.header)

    def to_graph(self) -> dict:
        """The model as a node/edge graph dict (visualiser payload)."""
        assert self.root is not None
        return tree_graph(self.root, self.header)

    def to_dot(self) -> str:
        """The model as Graphviz dot text."""
        return graph_to_dot(self.to_graph(), "Id3")
