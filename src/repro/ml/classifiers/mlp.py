"""Multilayer perceptron trained by backpropagation.

The paper singles this algorithm's options out: "in the case of a neural
network backpropagation algorithm such run-time options include the number of
neurons in the hidden layer, the momentum and the learning rate" — so those
are exactly the options this class declares (plus epochs/seed), and they are
what ``getOptions('MultilayerPerceptron')`` returns over SOAP.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.ml.base import CLASSIFIERS, Classifier
from repro.ml.classifiers._encode import FeatureEncoder
from repro.ml.options import FLOAT, INT, OptionSpec


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


@CLASSIFIERS.register("MultilayerPerceptron", "functions", "neural-network",
                      "backpropagation")
class MultilayerPerceptron(Classifier):
    """One-hidden-layer sigmoid network with softmax output, trained by
    mini-batch backpropagation with classical momentum."""

    OPTIONS = (
        OptionSpec("hidden_neurons", INT, 8,
                   "Number of neurons in the hidden layer.", minimum=1),
        OptionSpec("learning_rate", FLOAT, 0.3,
                   "Backpropagation step size.", minimum=1e-6, maximum=10.0),
        OptionSpec("momentum", FLOAT, 0.2,
                   "Fraction of the previous weight update applied again.",
                   minimum=0.0, maximum=0.99),
        OptionSpec("epochs", INT, 200, "Training epochs.", minimum=1),
        OptionSpec("batch_size", INT, 32, "Mini-batch size.", minimum=1),
        OptionSpec("seed", INT, 1, "Weight-initialisation seed."),
    )

    def _fit(self, dataset: Dataset) -> None:
        self._encoder = FeatureEncoder().fit(dataset)
        X, y, w = self._encoder.encode_dataset(dataset)
        n, d = X.shape
        k = dataset.num_classes
        h = self.opt("hidden_neurons")
        rng = np.random.default_rng(self.opt("seed"))
        scale1 = 1.0 / np.sqrt(d)
        scale2 = 1.0 / np.sqrt(h)
        W1 = rng.normal(0, scale1, size=(d, h))
        b1 = np.zeros(h)
        W2 = rng.normal(0, scale2, size=(h, k))
        b2 = np.zeros(k)
        vW1 = np.zeros_like(W1)
        vb1 = np.zeros_like(b1)
        vW2 = np.zeros_like(W2)
        vb2 = np.zeros_like(b2)
        Y = np.zeros((n, k))
        Y[np.arange(n), y] = 1.0
        lr = self.opt("learning_rate")
        mom = self.opt("momentum")
        batch = min(self.opt("batch_size"), n)
        sw = w / w.mean()
        for _ in range(self.opt("epochs")):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start:start + batch]
                xb, yb, wb = X[idx], Y[idx], sw[idx][:, None]
                hidden = _sigmoid(xb @ W1 + b1)
                probs = _softmax(hidden @ W2 + b2)
                delta_out = (probs - yb) * wb / len(idx)
                grad_W2 = hidden.T @ delta_out
                grad_b2 = delta_out.sum(axis=0)
                delta_hidden = (delta_out @ W2.T) * hidden * (1 - hidden)
                grad_W1 = xb.T @ delta_hidden
                grad_b1 = delta_hidden.sum(axis=0)
                vW2 = mom * vW2 - lr * grad_W2
                vb2 = mom * vb2 - lr * grad_b2
                vW1 = mom * vW1 - lr * grad_W1
                vb1 = mom * vb1 - lr * grad_b1
                W2 += vW2
                b2 += vb2
                W1 += vW1
                b1 += vb1
        self._params = (W1, b1, W2, b2)

    def _distribution(self, instance: Instance) -> np.ndarray:
        W1, b1, W2, b2 = self._params
        x = self._encoder.encode_instance(instance)[None, :]
        hidden = _sigmoid(x @ W1 + b1)
        return _softmax(hidden @ W2 + b2)[0]

    def model_text(self) -> str:
        W1, _, W2, _ = self._params
        return (f"Multilayer perceptron\n"
                f"Architecture: {W1.shape[0]} -> {W1.shape[1]} -> "
                f"{W2.shape[1]}\n"
                f"learning_rate={self.opt('learning_rate')} "
                f"momentum={self.opt('momentum')} "
                f"epochs={self.opt('epochs')}")
