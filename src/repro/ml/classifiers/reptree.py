"""REPTree — a fast decision tree with reduced-error pruning.

WEKA's other tree learner: build an information-gain tree on a grow split,
then prune bottom-up against a held-out *prune split* (reduced-error
pruning), replacing any subtree whose held-out error is not better than a
leaf's.  Included both for catalogue parity and as the ablation partner to
J48's pessimistic (training-data-only) pruning.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLASSIFIERS, Classifier
from repro.ml.classifiers._tree import (TreeNode, distribute,
                                        distribute_many, entropy,
                                        render_text, tree_graph)
from repro.ml.options import FLOAT, INT, OptionSpec


@CLASSIFIERS.register("REPTree", "tree", "reduced-error-pruning")
class REPTree(Classifier):
    """Information-gain tree pruned by reduced error on a hold-out split."""

    OPTIONS = (
        OptionSpec("prune_fraction", FLOAT, 0.33,
                   "Fraction of the data held out for pruning.",
                   minimum=0.05, maximum=0.5),
        OptionSpec("min_obj", INT, 2, "Minimum instances per leaf.",
                   minimum=1),
        OptionSpec("max_depth", INT, 0, "Depth cap (0 = unlimited).",
                   minimum=0),
        OptionSpec("seed", INT, 1, "Grow/prune split seed."),
    )

    def __init__(self, **options):
        super().__init__(**options)
        self.root: TreeNode | None = None

    def _fit(self, dataset: Dataset) -> None:
        labelled = dataset.filter_rows(
            lambda inst: not inst.class_is_missing(dataset))
        if labelled.num_instances == 0:
            raise DataError("all training instances have a missing class")
        if labelled.num_instances >= 4:
            grow, prune = labelled.split(
                1.0 - self.opt("prune_fraction"), self.opt("seed"))
        else:
            grow, prune = labelled, labelled
        self._matrix = grow.to_matrix()
        self._y = grow.class_values().astype(int)
        self._w = grow.weights()
        self._n_classes = dataset.num_classes
        self._attrs = dataset.attributes
        self._class_index = dataset.class_index
        rows = np.arange(self._matrix.shape[0])
        self.root = self._build(rows, frozenset({self._class_index}), 0)
        self._reduced_error_prune(self.root, list(prune))
        del self._matrix, self._y, self._w

    def _counts(self, rows: np.ndarray) -> np.ndarray:
        counts = np.zeros(self._n_classes)
        np.add.at(counts, self._y[rows], self._w[rows])
        return counts

    def _build(self, rows: np.ndarray, used: frozenset[int],
               depth: int) -> TreeNode:
        counts = self._counts(rows)
        node = TreeNode(class_counts=counts)
        max_depth = self.opt("max_depth")
        if (counts.sum() < 2 * self.opt("min_obj")
                or np.count_nonzero(counts) <= 1
                or (max_depth and depth >= max_depth)
                or len(used) >= len(self._attrs)):
            return node
        parent_entropy = entropy(counts)
        best_gain, best = 1e-9, None
        for idx, attr in enumerate(self._attrs):
            if idx in used or attr.is_string:
                continue
            col = self._matrix[rows, idx]
            present = ~np.isnan(col)
            if attr.is_nominal:
                branch = [self._counts(rows[present & (col == v)])
                          for v in range(attr.num_values)]
                total = sum(float(b.sum()) for b in branch)
                if total <= 0:
                    continue
                avg = sum(float(b.sum()) / total * entropy(b)
                          for b in branch)
                gain = parent_entropy - avg
                if gain > best_gain:
                    best_gain, best = gain, (idx, None)
            else:
                values = np.unique(col[present])
                if values.size < 2:
                    continue
                for thr in (values[:-1] + values[1:]) / 2.0:
                    left = self._counts(rows[present & (col <= thr)])
                    right = self._counts(rows[present & (col > thr)])
                    total = float(left.sum() + right.sum())
                    if total <= 0:
                        continue
                    avg = (float(left.sum()) * entropy(left)
                           + float(right.sum()) * entropy(right)) / total
                    gain = parent_entropy - avg
                    if gain > best_gain:
                        best_gain, best = gain, (idx, float(thr))
        if best is None:
            return node
        attr_idx, threshold = best
        attr = self._attrs[attr_idx]
        col = self._matrix[rows, attr_idx]
        present = ~np.isnan(col)
        node.attribute = attr_idx
        node.threshold = threshold
        if threshold is None:
            node.branch_values = list(attr.values)
            masks = [present & (col == v) for v in range(attr.num_values)]
            child_used = used | {attr_idx}
        else:
            masks = [present & (col <= threshold),
                     present & (col > threshold)]
            child_used = used
        for mask in masks:
            sub = rows[mask]
            if sub.size == 0:
                node.children.append(TreeNode(class_counts=counts.copy()))
            else:
                node.children.append(
                    self._build(sub, child_used, depth + 1))
        return node

    # -- reduced-error pruning -------------------------------------------------
    def _route(self, node: TreeNode, instances: list[Instance]
               ) -> list[list[Instance]]:
        """Split hold-out instances across the node's branches (missing
        values follow the heaviest branch)."""
        buckets: list[list[Instance]] = [[] for _ in node.children]
        heavy = int(np.argmax([c.total_weight for c in node.children]))
        for inst in instances:
            value = inst.value(node.attribute)
            if math.isnan(value):
                buckets[heavy].append(inst)
            elif node.threshold is not None:
                buckets[0 if value <= node.threshold else 1].append(inst)
            else:
                idx = int(value)
                if idx < len(buckets):
                    buckets[idx].append(inst)
                else:
                    buckets[heavy].append(inst)
        return buckets

    def _holdout_errors(self, node: TreeNode,
                        instances: list[Instance]) -> float:
        errors = 0.0
        for inst in instances:
            dist = distribute(node, inst, self._n_classes)
            if int(np.argmax(dist)) != int(inst.value(self._class_index)):
                errors += inst.weight
        return errors

    def _leaf_errors(self, node: TreeNode,
                     instances: list[Instance]) -> float:
        majority = node.majority_class
        return sum(inst.weight for inst in instances
                   if int(inst.value(self._class_index)) != majority)

    def _reduced_error_prune(self, node: TreeNode,
                             instances: list[Instance]) -> None:
        if node.is_leaf:
            return
        for child, bucket in zip(node.children,
                                 self._route(node, instances)):
            self._reduced_error_prune(child, bucket)
        subtree_errors = self._holdout_errors(node, instances)
        leaf_errors = self._leaf_errors(node, instances)
        if leaf_errors <= subtree_errors:
            node.make_leaf()

    # -- prediction / reporting ---------------------------------------------
    def _distribution(self, instance: Instance) -> np.ndarray:
        assert self.root is not None
        return distribute(self.root, instance, self.header.num_classes)

    def _distribution_many(self, matrix: np.ndarray) -> np.ndarray:
        assert self.root is not None
        return distribute_many(self.root, matrix,
                               self.header.num_classes)

    def model_text(self) -> str:
        if self.root is None:
            return "(not fitted)"
        return ("REPTree (reduced-error pruning)\n"
                "-------------------------------\n"
                + render_text(self.root, self.header))

    def to_graph(self) -> dict:
        """The model as a node/edge graph dict (visualiser payload)."""
        assert self.root is not None
        return tree_graph(self.root, self.header)
