"""Composition meta-classifiers: FilteredClassifier, Stacking, MultiScheme
and ClassificationViaClustering.

These mirror the WEKA meta schemes that make the Classifier Web Service's
string-configurable catalogue compose: every sub-component is named by its
registry string, so remote users can assemble them from `getClassifiers` +
`getOptions` output alone.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.attribute import Attribute
from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLASSIFIERS, CLUSTERERS, Classifier
from repro.ml.evaluation import stratified_folds
from repro.ml.options import INT, STRING, OptionSpec, parse_option_string


def _make(name: str, option_string: str) -> Classifier:
    options = parse_option_string(option_string) if option_string else {}
    return CLASSIFIERS.create(name, options)


_FILTERS = ("ReplaceMissing", "Normalize", "Standardize", "Discretize")


@CLASSIFIERS.register("FilteredClassifier", "meta", "filter")
class FilteredClassifier(Classifier):
    """Apply a named filter before training/classifying with a base learner."""

    OPTIONS = (
        OptionSpec("filter", STRING, "ReplaceMissing",
                   f"Filter name, one of {_FILTERS}."),
        OptionSpec("base", STRING, "J48", "Base classifier name."),
        OptionSpec("base_options", STRING, "",
                   "Base options as 'key=value key=value'."),
    )

    def _make_filter(self):
        from repro.ml.filters.core import (Discretize, Normalize,
                                           ReplaceMissing, Standardize)
        name = self.opt("filter")
        table = {"ReplaceMissing": ReplaceMissing, "Normalize": Normalize,
                 "Standardize": Standardize, "Discretize": Discretize}
        if name not in table:
            raise DataError(f"unknown filter {name!r}; known: {_FILTERS}")
        return table[name]()

    def _fit(self, dataset: Dataset) -> None:
        self._filter = self._make_filter()
        filtered = self._filter.fit_apply(dataset)
        self._base = _make(self.opt("base"), self.opt("base_options"))
        self._base.fit(filtered)
        self._filtered_header = filtered.copy_header()

    def _distribution(self, instance: Instance) -> np.ndarray:
        carrier = self.header.copy_header()
        carrier.add(instance.copy())
        filtered = self._filter.apply(carrier)
        return self._base.distribution(filtered[0])

    def model_text(self) -> str:
        return (f"FilteredClassifier: {self.opt('filter')} -> "
                f"{self.opt('base')}\n\n{self._base.model_text()}")


@CLASSIFIERS.register("Stacking", "meta", "ensemble")
class Stacking(Classifier):
    """Wolpert stacking: level-0 members produce cross-validated class
    probabilities that train a level-1 meta learner."""

    OPTIONS = (
        OptionSpec("members", STRING, "J48,NaiveBayes,IBk",
                   "Comma-separated level-0 classifier names."),
        OptionSpec("meta", STRING, "Logistic", "Level-1 classifier name."),
        OptionSpec("folds", INT, 5, "CV folds for level-1 training data.",
                   minimum=2),
        OptionSpec("seed", INT, 1, "Fold seed."),
    )

    def _fit(self, dataset: Dataset) -> None:
        names = [n.strip() for n in self.opt("members").split(",")
                 if n.strip()]
        if not names:
            raise DataError("Stacking needs at least one member")
        k = dataset.num_classes
        n = dataset.num_instances
        folds = stratified_folds(dataset,
                                 min(self.opt("folds"), n), self.opt("seed"))
        meta_X = np.zeros((n, k * len(names)))
        covered = np.zeros(n, dtype=bool)
        all_idx = set(range(n))
        for fold in folds:
            train_idx = sorted(all_idx - set(fold))
            if not train_idx or not fold:
                continue
            train = dataset.subset(train_idx)
            for m, name in enumerate(names):
                clf = _make(name, "")
                clf.fit(train)
                for row in fold:
                    dist = clf.distribution(dataset[row])
                    meta_X[row, m * k:(m + 1) * k] = dist
                    covered[row] = True
        # level-1 training set: probability features + original class
        attrs = [Attribute.numeric(f"p{m}_{c}")
                 for m in range(len(names)) for c in range(k)]
        attrs.append(dataset.class_attribute.copy())
        meta_train = Dataset("stacking-meta", attrs)
        meta_train.class_index = len(attrs) - 1
        for row in range(n):
            if not covered[row] or dataset[row].class_is_missing(dataset):
                continue
            meta_train.add(Instance(
                np.concatenate([meta_X[row],
                                [dataset[row].class_value(dataset)]])))
        self._meta = _make(self.opt("meta"), "")
        self._meta.fit(meta_train)
        self._meta_header = meta_train.copy_header()
        # final level-0 members train on everything
        self._members = []
        for name in names:
            clf = _make(name, "")
            clf.fit(dataset)
            self._members.append(clf)

    def _distribution(self, instance: Instance) -> np.ndarray:
        features = np.concatenate(
            [m.distribution(instance) for m in self._members] + [[np.nan]])
        return self._meta.distribution(Instance(features))

    def model_text(self) -> str:
        return (f"Stacking of {[type(m).__name__ for m in self._members]} "
                f"with meta learner {type(self._meta).__name__}")


@CLASSIFIERS.register("MultiScheme", "meta", "selection")
class MultiScheme(Classifier):
    """Train several schemes; keep the one with the best CV accuracy."""

    OPTIONS = (
        OptionSpec("members", STRING, "J48,NaiveBayes,ZeroR",
                   "Comma-separated candidate classifier names."),
        OptionSpec("folds", INT, 5, "Model-selection CV folds.", minimum=2),
        OptionSpec("seed", INT, 1, "Fold seed."),
    )

    def _fit(self, dataset: Dataset) -> None:
        from repro.ml.evaluation import cross_validate
        names = [n.strip() for n in self.opt("members").split(",")
                 if n.strip()]
        if not names:
            raise DataError("MultiScheme needs at least one member")
        folds = min(self.opt("folds"), dataset.num_instances)
        best_acc, best_name = -1.0, names[0]
        self.cv_scores: dict[str, float] = {}
        for name in names:
            result = cross_validate(lambda: _make(name, ""), dataset,
                                    k=folds, seed=self.opt("seed"))
            self.cv_scores[name] = result.accuracy
            if result.accuracy > best_acc:
                best_acc, best_name = result.accuracy, name
        self.chosen = best_name
        self._model = _make(best_name, "")
        self._model.fit(dataset)

    def _distribution(self, instance: Instance) -> np.ndarray:
        return self._model.distribution(instance)

    def model_text(self) -> str:
        lines = [f"MultiScheme chose {self.chosen}"]
        for name, acc in sorted(self.cv_scores.items()):
            lines.append(f"  {name}: CV accuracy {acc:.3f}")
        return "\n".join(lines)


@CLASSIFIERS.register("ClassificationViaClustering", "meta", "clustering")
class ClassificationViaClustering(Classifier):
    """Fit a clusterer, then label each cluster with its training-majority
    class."""

    OPTIONS = (
        OptionSpec("clusterer", STRING, "SimpleKMeans",
                   "Registered clusterer name."),
        OptionSpec("clusterer_options", STRING, "",
                   "Clusterer options as 'key=value'."),
    )

    def _fit(self, dataset: Dataset) -> None:
        options = parse_option_string(self.opt("clusterer_options")) \
            if self.opt("clusterer_options") else {}
        name = self.opt("clusterer")
        if name == "SimpleKMeans" and "k" not in options:
            options["k"] = dataset.num_classes
        self._clusterer = CLUSTERERS.create(name, options)
        self._clusterer.fit(dataset)
        n_clusters = self._clusterer.n_clusters
        k = dataset.num_classes
        votes = np.zeros((n_clusters + 1, k))  # +1 for DBSCAN's noise bucket
        for inst in dataset:
            if inst.class_is_missing(dataset):
                continue
            c = self._clusterer.cluster_instance(inst)
            votes[c, int(inst.class_value(dataset))] += inst.weight
        totals = votes.sum(axis=1, keepdims=True)
        fallback = dataset.class_counts()
        fallback = fallback / fallback.sum()
        self._cluster_dist = np.where(totals > 0, votes /
                                      np.maximum(totals, 1e-12), fallback)

    def _distribution(self, instance: Instance) -> np.ndarray:
        c = self._clusterer.cluster_instance(instance)
        return self._cluster_dist[c].copy()

    def model_text(self) -> str:
        labels = self.header.class_attribute.values
        lines = [f"ClassificationViaClustering over "
                 f"{type(self._clusterer).__name__}"]
        for c in range(self._clusterer.n_clusters):
            majority = labels[int(np.argmax(self._cluster_dist[c]))]
            lines.append(f"  cluster {c} -> {majority}")
        return "\n".join(lines)
