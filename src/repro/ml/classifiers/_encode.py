"""Numeric feature encoding shared by the gradient-based learners
(Logistic, MultilayerPerceptron).

Nominal attributes are one-hot encoded; numeric attributes are standardised
with training-set mean/std; missing cells are imputed to the training mean
(numeric) or contribute an all-zero one-hot block (nominal).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError


class FeatureEncoder:
    """Fit on a training dataset; encode instances to dense float vectors."""

    def __init__(self) -> None:
        self._fitted = False

    def fit(self, dataset: Dataset) -> "FeatureEncoder":
        self.class_index = dataset.class_index
        self.attrs = dataset.attributes
        matrix = dataset.to_matrix()
        self.numeric_mean: dict[int, float] = {}
        self.numeric_std: dict[int, float] = {}
        self.width = 0
        self.offsets: dict[int, int] = {}
        for idx, attr in enumerate(self.attrs):
            if idx == self.class_index or attr.is_string:
                continue
            self.offsets[idx] = self.width
            if attr.is_numeric:
                col = matrix[:, idx]
                present = col[~np.isnan(col)]
                mean = float(present.mean()) if present.size else 0.0
                std = float(present.std()) if present.size else 1.0
                self.numeric_mean[idx] = mean
                self.numeric_std[idx] = std if std > 1e-12 else 1.0
                self.width += 1
            else:
                self.width += attr.num_values
        if self.width == 0:
            raise DataError("no usable input attributes to encode")
        self._fitted = True
        return self

    def encode_instance(self, instance: Instance) -> np.ndarray:
        if not self._fitted:
            raise DataError("FeatureEncoder is not fitted")
        out = np.zeros(self.width)
        for idx, offset in self.offsets.items():
            attr = self.attrs[idx]
            value = instance.value(idx)
            if attr.is_numeric:
                if np.isnan(value):
                    value = self.numeric_mean[idx]
                out[offset] = (value - self.numeric_mean[idx]) \
                    / self.numeric_std[idx]
            else:
                if not np.isnan(value):
                    out[offset + int(value)] = 1.0
        return out

    def encode_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`encode_instance` over a ``(n, m)`` raw value
        matrix: one column pass per attribute, no per-row Python work."""
        if not self._fitted:
            raise DataError("FeatureEncoder is not fitted")
        mat = np.asarray(matrix, dtype=float)
        out = np.zeros((mat.shape[0], self.width))
        for idx, offset in self.offsets.items():
            attr = self.attrs[idx]
            col = mat[:, idx]
            if attr.is_numeric:
                filled = np.where(np.isnan(col), self.numeric_mean[idx],
                                  col)
                out[:, offset] = (filled - self.numeric_mean[idx]) \
                    / self.numeric_std[idx]
            else:
                known = np.where(~np.isnan(col))[0]
                out[known, offset + col[known].astype(int)] = 1.0
        return out

    def encode_dataset(self, dataset: Dataset
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(X, y, sample_weights)`` dropping missing-class rows."""
        matrix = dataset.to_matrix()
        y = matrix[:, self.class_index]
        keep = ~np.isnan(y)
        if not keep.any():
            raise DataError("no labelled instances to encode")
        X = self.encode_matrix(matrix[keep])
        return X, y[keep].astype(int), dataset.weights()[keep].astype(float)
