"""Rule-based classifiers: PRISM and DecisionTable.

Together with OneR/ZeroR these populate the "rules" family that WEKA's
classifier tree (and therefore the paper's ClassifierSelector tool, which
shows "the classifiers list ... as a tree according to their types") groups
separately from trees and functions.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError
from repro.ml.base import CLASSIFIERS, Classifier
from repro.ml.options import INT, OptionSpec


@CLASSIFIERS.register("Prism", "rules", "nominal-only")
class Prism(Classifier):
    """Cendrowska's PRISM: per-class rule induction by precision-greedy
    condition growth (nominal attributes, no missing values)."""

    def _fit(self, dataset: Dataset) -> None:
        for idx, attr in enumerate(dataset.attributes):
            if idx != dataset.class_index and not attr.is_nominal:
                raise DataError(
                    f"Prism handles nominal attributes only; "
                    f"{attr.name!r} is {attr.kind}")
        if np.isnan(dataset.to_matrix()).any():
            raise DataError("Prism cannot handle missing values")
        self._rules: list[tuple[list[tuple[int, int]], int]] = []
        matrix = dataset.to_matrix()
        y = dataset.class_values().astype(int)
        self._majority = int(np.argmax(dataset.class_counts()))
        for cls in range(dataset.num_classes):
            # classic PRISM: shrink the working set E as rules cover it
            alive = np.ones(matrix.shape[0], dtype=bool)
            while (y[alive] == cls).any():
                rule = self._grow_rule(dataset, matrix, y, cls, alive)
                if rule is None:
                    break
                self._rules.append((rule, cls))
                covered = self._covered(matrix, rule)
                if not (covered & alive).any():
                    break  # no progress; avoid an infinite loop
                alive &= ~covered

    @staticmethod
    def _covered(matrix: np.ndarray, rule) -> np.ndarray:
        mask = np.ones(matrix.shape[0], dtype=bool)
        for attr_idx, value in rule:
            mask &= matrix[:, attr_idx] == value
        return mask

    def _grow_rule(self, dataset: Dataset, matrix: np.ndarray,
                   y: np.ndarray, cls: int, alive: np.ndarray):
        rule: list[tuple[int, int]] = []
        used: set[int] = set()
        current = alive.copy()
        while True:
            covered_y = y[current]
            if covered_y.size and (covered_y == cls).all():
                return rule if rule else None
            best_prec, best_cover, best = -1.0, -1, None
            for attr_idx, attr in enumerate(dataset.attributes):
                if attr_idx == dataset.class_index or attr_idx in used:
                    continue
                col = matrix[:, attr_idx]
                for v in range(attr.num_values):
                    mask = current & (col == v)
                    total = int(mask.sum())
                    if total == 0:
                        continue
                    pos = int((y[mask] == cls).sum())
                    prec = pos / total
                    if prec > best_prec or (prec == best_prec
                                            and pos > best_cover):
                        best_prec, best_cover = prec, pos
                        best = (attr_idx, v, mask)
            if best is None or best_cover == 0:
                return rule if rule else None
            attr_idx, v, mask = best
            rule.append((attr_idx, v))
            used.add(attr_idx)
            current = mask
            if len(used) >= dataset.num_attributes - 1:
                return rule if rule else None

    def _distribution(self, instance: Instance) -> np.ndarray:
        out = np.zeros(self.header.num_classes)
        for rule, cls in self._rules:
            if all(not instance.is_missing(a)
                   and int(instance.value(a)) == v
                   for a, v in rule):
                out[cls] = 1.0
                return out
        out[self._majority] = 1.0
        return out

    def model_text(self) -> str:
        lines = ["Prism rules", "----------"]
        header = self.header
        for rule, cls in self._rules:
            conds = " and ".join(
                f"{header.attribute(a).name} = "
                f"{header.attribute(a).values[v]}"
                for a, v in rule)
            label = header.class_attribute.values[cls]
            lines.append(f"If {conds} then {label}")
        lines.append(f"Otherwise {header.class_attribute.values[self._majority]}")
        return "\n".join(lines)


@CLASSIFIERS.register("DecisionTable", "rules")
class DecisionTable(Classifier):
    """Kohavi's decision table with best-first feature-subset search
    evaluated by leave-one-out majority accuracy."""

    OPTIONS = (
        OptionSpec("max_subset", INT, 4,
                   "Maximum attributes in the table key.", minimum=1),
        OptionSpec("bins", INT, 6,
                   "Equal-frequency bins for numeric attributes.",
                   minimum=2),
    )

    def _numeric_cuts(self, dataset: Dataset) -> dict[int, np.ndarray]:
        cuts: dict[int, np.ndarray] = {}
        for j, attr in enumerate(dataset.attributes):
            if j == dataset.class_index or not attr.is_numeric:
                continue
            col = dataset.column(j)
            present = col[~np.isnan(col)]
            if present.size == 0:
                cuts[j] = np.array([])
                continue
            qs = np.quantile(present,
                             np.linspace(0, 1, self.opt("bins") + 1)[1:-1])
            cuts[j] = np.unique(qs)
        return cuts

    def _fit(self, dataset: Dataset) -> None:
        usable = [i for i, a in enumerate(dataset.attributes)
                  if i != dataset.class_index
                  and (a.is_nominal or a.is_numeric)]
        if not usable:
            raise DataError("DecisionTable needs usable attributes")
        self._cuts = self._numeric_cuts(dataset)
        y = dataset.class_values()
        keep = ~np.isnan(y)
        matrix = dataset.to_matrix()[keep].copy()
        # bin numeric columns into integer codes so table keys are discrete
        for j, cuts in self._cuts.items():
            col = matrix[:, j]
            present = ~np.isnan(col)
            col[present] = np.searchsorted(cuts, col[present],
                                           side="right")
            matrix[:, j] = col
        y = y[keep].astype(int)
        k = dataset.num_classes
        best_acc, best_subset = -1.0, None
        limit = min(self.opt("max_subset"), len(usable))
        for size in range(1, limit + 1):
            for subset in itertools.combinations(usable, size):
                acc = self._loo_accuracy(matrix, y, subset, k)
                if acc > best_acc:
                    best_acc, best_subset = acc, subset
        assert best_subset is not None
        self._subset = best_subset
        self._k = k
        self._table: dict[tuple, np.ndarray] = {}
        for row, cls in zip(matrix, y):
            # matrix cells are already discrete codes here
            if any(math.isnan(row[idx]) for idx in self._subset):
                continue
            key = tuple(int(row[idx]) for idx in self._subset)
            self._table.setdefault(key, np.zeros(k))[cls] += 1
        counts = np.zeros(k)
        np.add.at(counts, y, 1.0)
        self._default = counts / counts.sum()
        self._train_acc = best_acc

    def _key(self, row: np.ndarray):
        cells = []
        for idx in self._subset:
            v = row[idx]
            if math.isnan(v):
                return None
            if idx in self._cuts:
                v = float(np.searchsorted(self._cuts[idx], v,
                                          side="right"))
            cells.append(int(v))
        return tuple(cells)

    @staticmethod
    def _loo_accuracy(matrix: np.ndarray, y: np.ndarray,
                      subset, k: int) -> float:
        table: dict[tuple, np.ndarray] = {}
        keys = []
        for row in matrix:
            cells = tuple(-1 if math.isnan(row[i]) else int(row[i])
                          for i in subset)
            keys.append(cells)
        for key, cls in zip(keys, y):
            table.setdefault(key, np.zeros(k))[cls] += 1
        correct = 0
        for key, cls in zip(keys, y):
            counts = table[key].copy()
            counts[cls] -= 1  # leave this row out
            if counts.sum() <= 0:
                continue
            if int(np.argmax(counts)) == cls:
                correct += 1
        return correct / len(y)

    def _distribution(self, instance: Instance) -> np.ndarray:
        key = self._key(instance.values)
        if key is not None and key in self._table:
            counts = self._table[key]
            return counts / counts.sum()
        return self._default.copy()

    def model_text(self) -> str:
        names = [self.header.attribute(i).name for i in self._subset]
        return (f"Decision table over {names}\n"
                f"Rules: {len(self._table)}  "
                f"LOO accuracy: {self._train_acc:.3f}")
