"""Model evaluation (§3: "the framework should have a set of tools to test the
discovered knowledge with real data and produce a result for the accuracy of
the knowledge").

Provides hold-out evaluation, stratified k-fold cross-validation, confusion
matrices, per-class precision/recall/F1, Cohen's kappa, and a WEKA-style text
report (the textual summary the Classifier Web Service returns alongside the
tree).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ml.base import Classifier


@dataclass
class EvaluationResult:
    """Aggregated outcome of evaluating a classifier on labelled data."""

    class_labels: tuple[str, ...]
    confusion: np.ndarray = field(default=None)  # type: ignore[assignment]
    total: float = 0.0
    correct: float = 0.0

    def __post_init__(self) -> None:
        k = len(self.class_labels)
        if self.confusion is None:
            self.confusion = np.zeros((k, k))

    # -- accumulation --------------------------------------------------------
    def record(self, actual: int, predicted: int, weight: float = 1.0
               ) -> None:
        """Tally one (actual, predicted) pair."""
        self.confusion[actual, predicted] += weight
        self.total += weight
        if actual == predicted:
            self.correct += weight

    def merge(self, other: "EvaluationResult") -> None:
        """Fold another result (e.g. one CV fold) into this one."""
        if self.class_labels != other.class_labels:
            raise DataError("cannot merge evaluations over different classes")
        self.confusion += other.confusion
        self.total += other.total
        self.correct += other.correct

    # -- headline metrics --------------------------------------------------------
    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    @property
    def error_rate(self) -> float:
        return 1.0 - self.accuracy

    @property
    def kappa(self) -> float:
        """Cohen's kappa against the chance agreement of the marginals."""
        if self.total == 0:
            return 0.0
        row = self.confusion.sum(axis=1)
        col = self.confusion.sum(axis=0)
        expected = float((row * col).sum()) / (self.total ** 2)
        observed = self.correct / self.total
        if math.isclose(expected, 1.0):
            return 0.0
        return (observed - expected) / (1.0 - expected)

    # -- per-class metrics -----------------------------------------------------
    def precision(self, cls: int) -> float:
        """Per-class precision."""
        denom = self.confusion[:, cls].sum()
        return float(self.confusion[cls, cls] / denom) if denom else 0.0

    def recall(self, cls: int) -> float:
        """Per-class recall."""
        denom = self.confusion[cls, :].sum()
        return float(self.confusion[cls, cls] / denom) if denom else 0.0

    def f1(self, cls: int) -> float:
        """Per-class F1 score."""
        p, r = self.precision(cls), self.recall(cls)
        return 2 * p * r / (p + r) if (p + r) else 0.0

    # -- reporting -----------------------------------------------------------
    def summary(self) -> str:
        """WEKA-style evaluation summary."""
        lines = [
            "=== Evaluation summary ===",
            f"Correctly Classified Instances   {self.correct:10.0f}   "
            f"{100 * self.accuracy:7.3f} %",
            f"Incorrectly Classified Instances {self.total - self.correct:10.0f}   "
            f"{100 * self.error_rate:7.3f} %",
            f"Kappa statistic                  {self.kappa:10.4f}",
            f"Total Number of Instances        {self.total:10.0f}",
        ]
        return "\n".join(lines)

    def confusion_text(self) -> str:
        """Confusion matrix with class letters, WEKA layout."""
        k = len(self.class_labels)
        letters = [chr(ord("a") + i) for i in range(k)]
        width = max(6, int(self.confusion.max()) // 1 + 6)
        lines = ["=== Confusion Matrix ===", ""]
        lines.append("  ".join(f"{letter:>{width}}" for letter in letters)
                     + "   <-- classified as")
        for i in range(k):
            row = "  ".join(f"{self.confusion[i, j]:>{width}.0f}"
                            for j in range(k))
            lines.append(f"{row}   | {letters[i]} = {self.class_labels[i]}")
        return "\n".join(lines)

    def detailed_text(self) -> str:
        """Per-class precision / recall / F1 table."""
        lines = ["=== Detailed Accuracy By Class ===", "",
                 f"{'Class':<24}{'Precision':>10}{'Recall':>10}{'F1':>10}"]
        for i, label in enumerate(self.class_labels):
            lines.append(f"{label:<24}{self.precision(i):>10.3f}"
                         f"{self.recall(i):>10.3f}{self.f1(i):>10.3f}")
        return "\n".join(lines)

    def full_report(self) -> str:
        """Summary + per-class table + confusion matrix."""
        return "\n\n".join([self.summary(), self.detailed_text(),
                            self.confusion_text()])


def evaluate(classifier: "Classifier", test: Dataset) -> EvaluationResult:
    """Evaluate a *fitted* classifier on *test* (rows with missing class are
    skipped, mirroring WEKA).

    Scoring runs through :meth:`Classifier.distribution_many`, so models
    with a vectorised kernel evaluate the whole test set in one matrix
    pass; the confusion matrix is accumulated with one weighted
    scatter-add instead of a per-row tally.
    """
    labels = classifier.header.class_attribute.values
    result = EvaluationResult(labels)
    if test.num_instances == 0:
        return result
    y = test.class_values()
    keep = np.where(~np.isnan(y))[0]
    if not keep.size:
        return result
    dists = classifier.distribution_many(test, keep)
    predicted = np.argmax(dists, axis=1)
    actual = y[keep].astype(int)
    weights = test.weights()[keep]
    np.add.at(result.confusion, (actual, predicted), weights)
    result.total += float(weights.sum())
    result.correct += float(weights[actual == predicted].sum())
    return result


def train_test_evaluate(classifier: "Classifier", dataset: Dataset,
                        train_fraction: float = 0.66,
                        seed: int = 1) -> EvaluationResult:
    """Split, train, evaluate (the paper's step-5 'verified through the use
    of a test set')."""
    train, test = dataset.split(train_fraction, seed)
    classifier.fit(train)
    return evaluate(classifier, test)


def roc_points(classifier: "Classifier", test: Dataset,
               positive_class: int = 1
               ) -> list[tuple[float, float, float]]:
    """ROC curve of a fitted classifier on *test*.

    Returns ``(fpr, tpr, threshold)`` triples sorted by threshold
    descending, starting at (0, 0) and ending at (1, 1).  *positive_class*
    is the class index scored by :meth:`Classifier.distribution`.
    """
    scored: list[tuple[float, bool]] = []
    for inst in test:
        if inst.class_is_missing(test):
            continue
        score = float(classifier.distribution(inst)[positive_class])
        scored.append((score, int(inst.class_value(test))
                       == positive_class))
    if not scored:
        raise DataError("no labelled instances to build a ROC curve")
    n_pos = sum(1 for _, pos in scored if pos)
    n_neg = len(scored) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataError("ROC needs both classes present in the test set")
    scored.sort(key=lambda t: -t[0])
    points = [(0.0, 0.0, math.inf)]
    tp = fp = 0
    i = 0
    while i < len(scored):
        threshold = scored[i][0]
        # consume every instance tied at this threshold together
        while i < len(scored) and scored[i][0] == threshold:
            if scored[i][1]:
                tp += 1
            else:
                fp += 1
            i += 1
        points.append((fp / n_neg, tp / n_pos, threshold))
    return points


def auc(classifier: "Classifier", test: Dataset,
        positive_class: int = 1) -> float:
    """Area under the ROC curve (trapezoidal rule over
    :func:`roc_points`)."""
    points = roc_points(classifier, test, positive_class)
    area = 0.0
    for (x0, y0, _), (x1, y1, _) in zip(points, points[1:]):
        area += (x1 - x0) * (y0 + y1) / 2.0
    return area


def stratified_folds(dataset: Dataset, k: int, seed: int = 1
                     ) -> list[list[int]]:
    """Index folds with per-class round-robin assignment (stratified)."""
    if k < 2:
        raise DataError("need at least 2 folds")
    if k > dataset.num_instances:
        raise DataError(
            f"cannot make {k} folds from {dataset.num_instances} instances")
    rng = np.random.default_rng(seed)
    order = list(rng.permutation(dataset.num_instances))
    # group by class, then deal out round-robin so folds are stratified
    by_class: dict[int, list[int]] = {}
    no_class: list[int] = []
    for idx in order:
        inst = dataset[int(idx)]
        if inst.class_is_missing(dataset):
            no_class.append(int(idx))
        else:
            by_class.setdefault(int(inst.class_value(dataset)),
                                []).append(int(idx))
    folds: list[list[int]] = [[] for _ in range(k)]
    cursor = 0
    for cls in sorted(by_class):
        for idx in by_class[cls]:
            folds[cursor % k].append(idx)
            cursor += 1
    for idx in no_class:
        folds[cursor % k].append(idx)
        cursor += 1
    return folds


def learning_curve(make_classifier, dataset: Dataset,
                   fractions=(0.1, 0.25, 0.5, 0.75, 1.0),
                   test_fraction: float = 0.3, seed: int = 1
                   ) -> list[tuple[float, int, float]]:
    """Accuracy as a function of training-set size.

    Splits off a fixed test set, then trains fresh models on growing
    prefixes of the remaining data.  Returns ``(fraction, n_train,
    accuracy)`` triples — the series behind "how much data does this
    problem need?", a question the §3 algorithm-choice requirement begs.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DataError("test_fraction must be in (0, 1)")
    shuffled = dataset.shuffled(seed)
    n_test = max(int(round(test_fraction * len(shuffled))), 1)
    test = shuffled.subset(range(n_test))
    pool = shuffled.subset(range(n_test, len(shuffled)))
    out: list[tuple[float, int, float]] = []
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise DataError(f"bad training fraction {fraction}")
        n_train = max(int(round(fraction * len(pool))), 1)
        train = pool.subset(range(n_train))
        if np.count_nonzero(train.class_counts()) == 0:
            continue
        clf = make_classifier()
        clf.fit(train)
        out.append((fraction, n_train, evaluate(clf, test).accuracy))
    return out


def bulk_score(classifier: "Classifier", dataset: Dataset,
               rows: list | None = None) -> dict:
    """Score many rows of *dataset* in one vectorized pass.

    *rows* is an ordered list of row indices (``None`` = every row).
    Returns a JSON-shaped dict: ``labels`` and ``distributions`` hold
    one entry per requested row in input order (``None`` where the row
    was unscorable), ``errors`` lists ``[position, message]`` pairs for
    the bad positions, and ``scored`` counts the rows actually scored —
    so per-item fault positions survive the trip through a batched
    service operation exactly as a sequence of single calls would
    report them.
    """
    requested = list(range(dataset.num_instances)) if rows is None \
        else [int(r) for r in rows]
    n = dataset.num_instances
    valid_positions, valid_rows, errors = [], [], []
    for position, row in enumerate(requested):
        if 0 <= row < n:
            valid_positions.append(position)
            valid_rows.append(row)
        else:
            errors.append([position,
                           f"row index {row} out of range for "
                           f"{n} instance(s)"])
    labels_out: list = [None] * len(requested)
    dists_out: list = [None] * len(requested)
    if valid_rows:
        dists = classifier.distribution_many(dataset, valid_rows)
        values = classifier.header.class_attribute.values
        picks = np.argmax(dists, axis=1)
        for position, dist, pick in zip(valid_positions, dists, picks):
            labels_out[position] = values[int(pick)]
            dists_out[position] = [float(p) for p in dist]
    return {"labels": labels_out, "distributions": dists_out,
            "errors": errors, "scored": len(valid_rows)}


def cross_validate(make_classifier, dataset: Dataset, k: int = 10,
                   seed: int = 1) -> EvaluationResult:
    """Stratified k-fold cross-validation.

    *make_classifier* is a zero-argument factory so each fold trains a fresh
    model (matching WEKA's semantics, and matching Grid WEKA's distributed
    cross-validation task).
    """
    folds = stratified_folds(dataset, k, seed)
    labels = dataset.class_attribute.values
    total = EvaluationResult(labels)
    all_indices = set(range(dataset.num_instances))
    for fold in folds:
        train_idx = sorted(all_indices - set(fold))
        if not train_idx or not fold:
            continue
        # folds are zero-copy views of the dataset's column store —
        # no rows are duplicated to train or score a fold
        train = dataset.view(train_idx)
        test = dataset.view(sorted(fold))
        clf = make_classifier()
        clf.fit(train)
        total.merge(evaluate(clf, test))
    return total
