"""Exception hierarchy shared across the toolkit.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch toolkit failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all toolkit errors."""


class DataError(ReproError):
    """Malformed dataset, attribute mismatch, or parse failure."""


class ArffParseError(DataError):
    """An ARFF document could not be parsed."""

    def __init__(self, message: str, line_no: int | None = None):
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class OptionError(ReproError):
    """An algorithm option was unknown or had an invalid value."""


class NotFittedError(ReproError):
    """A model was used before :meth:`fit` was called."""


class ServiceError(ReproError):
    """A web-service level failure (maps to a SOAP fault)."""


class TransportError(ServiceError):
    """The message could not be delivered to the endpoint."""


class CircuitOpenError(TransportError):
    """A circuit breaker is open: the call failed fast without a send.

    Subclasses :class:`TransportError` so retry/migration machinery treats
    an open circuit exactly like an unreachable endpoint — migrate, don't
    wait.
    """


class DeadlineExceeded(ReproError):
    """A call's time budget ran out (client-side or propagated fault).

    Deliberately *not* a :class:`ServiceError`: retrying a call whose
    deadline has already expired only burns more of nothing, so the
    default transient-error retry set must not cover it.
    """


class OverloadedError(ReproError):
    """The callee shed this call under admission control.

    Carried across the wire as a ``repro:Overloaded`` SOAP fault (see
    :mod:`repro.ws.admission`).  Deliberately *not* a
    :class:`ServiceError`: the default transient-error retry set must
    not hammer a server that just said it is saturated, and circuit
    breakers must not count a shed as endpoint death — an overloaded
    endpoint *answered*, cheaply and on purpose.  Callers back off
    instead (``retry_after_s`` is the server's hint, if it gave one).
    """

    def __init__(self, message: str = "overloaded",
                 retry_after_s: float | None = None):
        self.retry_after_s = retry_after_s
        super().__init__(message)


class WsdlError(ServiceError):
    """A WSDL document was malformed or inconsistent."""


class RegistryError(ServiceError):
    """UDDI-style registry lookup/publication failure."""


class WorkflowError(ReproError):
    """Workflow graph construction or enactment failure."""


class CableError(WorkflowError):
    """An illegal cable connection between task nodes."""


class EnactmentError(WorkflowError):
    """A task failed during workflow execution."""

    def __init__(self, task_name: str, cause: BaseException):
        self.task_name = task_name
        self.cause = cause
        super().__init__(f"task {task_name!r} failed: {cause!r}")
