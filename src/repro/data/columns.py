"""Typed column-block storage backing :class:`~repro.data.Dataset`.

A :class:`ColumnStore` owns one contiguous ``(capacity, n_attributes)``
float64 block plus a parallel weight vector.  Cells follow the WEKA
encoding the rest of the toolkit speaks: numeric cells are plain values,
nominal/string cells hold value-table indices, and ``NaN`` marks a
missing cell regardless of kind.

Why one float64 block instead of per-kind typed arrays?  Every consumer
of bulk data in this library — the vectorised classifier kernels, the
distance metrics, the filters — wants the WEKA ``(n, m)`` float matrix,
and a row-major block hands out *both* zero-copy column views
(``block[:, j]``) and zero-copy contiguous row slices (``block[a:b]``).
Per-kind typed buffers exist where they pay off: on the wire (see
:mod:`repro.data.codec`, which packs nominal columns into the smallest
unsigned dtype that fits the value table).

The store is append-mostly with amortised doubling growth.  Reallocation
never invalidates logical rows: :class:`~repro.data.Instance` objects
attached to a store address their row *by index* and re-derive the view
on every access, so a grown (reallocated) block is transparent to them.
A monotonically increasing :attr:`version` stamps every mutation —
anything that caches derived state (gathered fold matrices, encoded wire
frames) keys its cache on it, which is what makes a stale ``to_matrix``
view structurally impossible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError

#: Initial row capacity of a fresh store.
_INITIAL_CAPACITY = 8


class ColumnStore:
    """Row-major float64 block + weights with amortised growth.

    All mutation goes through :meth:`append` / :meth:`remove` /
    :meth:`set_cell` / :meth:`set_weight`; each bumps :attr:`version`
    (cell writes too — a write-through row view cannot be observed as
    stale, but *gathered* copies keyed on the version can).
    """

    __slots__ = ("_values", "_weights", "_n", "version")

    def __init__(self, n_attributes: int):
        if n_attributes < 1:
            raise DataError("a column store needs at least one attribute")
        self._values = np.empty((_INITIAL_CAPACITY, n_attributes))
        self._weights = np.ones(_INITIAL_CAPACITY)
        self._n = 0
        self.version = 0

    # -- shape ---------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._n

    @property
    def n_attributes(self) -> int:
        return int(self._values.shape[1])

    def __len__(self) -> int:
        return self._n

    # -- zero-copy views -----------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """Live ``(n_rows, n_attributes)`` view of the block (zero-copy)."""
        return self._values[:self._n]

    @property
    def weights(self) -> np.ndarray:
        """Live weight vector view (zero-copy)."""
        return self._weights[:self._n]

    def row(self, index: int) -> np.ndarray:
        """Zero-copy view of one row."""
        if not 0 <= index < self._n:
            raise DataError(f"row {index} out of range ({self._n} rows)")
        return self._values[index]

    def column(self, index: int) -> np.ndarray:
        """Zero-copy view of one column."""
        return self._values[:self._n, index]

    # -- mutation ------------------------------------------------------------
    def _grow_to(self, capacity: int) -> None:
        new_cap = max(int(self._values.shape[0]) * 2, capacity,
                      _INITIAL_CAPACITY)
        values = np.empty((new_cap, self.n_attributes))
        weights = np.ones(new_cap)
        values[:self._n] = self._values[:self._n]
        weights[:self._n] = self._weights[:self._n]
        self._values = values
        self._weights = weights

    def append(self, values: np.ndarray, weight: float = 1.0) -> int:
        """Copy one row in; returns its row index."""
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1 or arr.shape[0] != self.n_attributes:
            raise DataError(
                f"row has shape {arr.shape}, store holds "
                f"{self.n_attributes} attributes")
        if self._n == self._values.shape[0]:
            self._grow_to(self._n + 1)
        self._values[self._n] = arr
        self._weights[self._n] = weight
        self._n += 1
        self.version += 1
        return self._n - 1

    def extend_matrix(self, matrix: np.ndarray,
                      weights: np.ndarray | None = None) -> int:
        """Bulk-append ``(k, m)`` rows in one copy; returns the first new
        row index."""
        mat = np.asarray(matrix, dtype=float)
        if mat.ndim != 2 or mat.shape[1] != self.n_attributes:
            raise DataError(
                f"matrix has shape {mat.shape}, store holds "
                f"{self.n_attributes} attributes")
        k = mat.shape[0]
        if self._n + k > self._values.shape[0]:
            self._grow_to(self._n + k)
        start = self._n
        self._values[start:start + k] = mat
        if weights is not None:
            self._weights[start:start + k] = np.asarray(weights,
                                                        dtype=float)
        else:
            self._weights[start:start + k] = 1.0
        self._n += k
        self.version += 1
        return start

    def remove(self, index: int) -> None:
        """Delete one row, shifting later rows up."""
        if not 0 <= index < self._n:
            raise DataError(f"row {index} out of range ({self._n} rows)")
        self._values[index:self._n - 1] = self._values[index + 1:self._n]
        self._weights[index:self._n - 1] = self._weights[index + 1:self._n]
        self._n -= 1
        self.version += 1

    def set_cell(self, row: int, col: int, value: float) -> None:
        """Write one cell (write-through for attached instances)."""
        if not 0 <= row < self._n:
            raise DataError(f"row {row} out of range ({self._n} rows)")
        self._values[row, col] = value
        self.version += 1

    def set_weight(self, row: int, weight: float) -> None:
        """Write one row weight."""
        if not 0 <= row < self._n:
            raise DataError(f"row {row} out of range ({self._n} rows)")
        self._weights[row] = weight
        self.version += 1

    def __repr__(self) -> str:
        return (f"ColumnStore({self._n} x {self.n_attributes}, "
                f"version={self.version})")
