"""Instance streaming (§1: "data sets may be read from the local filespace or
streamed from a remote location provided the algorithm being used has support
for streaming").

A stream is an iterator of :class:`~repro.data.Instance` rows plus a header
(schema-only :class:`~repro.data.Dataset`).  Streams can be chunked for
transport: :class:`ChunkedStreamReader` reassembles a stream from ARFF header
+ CSV-encoded row chunks, which is exactly what the remote streaming service
ships over SOAP.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.data import arff
from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.errors import DataError


class InstanceStream:
    """A pull-based stream of instances sharing one schema."""

    def __init__(self, header: Dataset, rows: Iterable[Instance]):
        if len(header) != 0:
            header = header.copy_header()
        self.header = header
        self._rows = iter(rows)
        self._consumed = 0

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "InstanceStream":
        """Stream an in-memory dataset (copies each row)."""
        return cls(dataset.copy_header(),
                   (inst.copy() for inst in dataset))

    def __iter__(self) -> Iterator[Instance]:
        for inst in self._rows:
            if len(inst) != self.header.num_attributes:
                raise DataError("streamed instance arity mismatch")
            self._consumed += 1
            yield inst

    @property
    def consumed(self) -> int:
        """Number of instances pulled so far."""
        return self._consumed

    def collect(self, limit: int | None = None) -> Dataset:
        """Materialise up to *limit* instances into a dataset."""
        out = self.header.copy_header()
        for i, inst in enumerate(self):
            if limit is not None and i >= limit:
                break
            out.add(inst)
        return out

    def map(self, fn: Callable[[Instance], Instance]) -> "InstanceStream":
        """A derived stream applying *fn* to each instance."""
        return InstanceStream(self.header, (fn(i) for i in self))

    def filter(self, pred: Callable[[Instance], bool]) -> "InstanceStream":
        """A derived stream keeping instances for which *pred* holds."""
        return InstanceStream(self.header, (i for i in self if pred(i)))


def chunk_rows(dataset: Dataset, chunk_size: int) -> list[str]:
    """Encode *dataset* rows as CSV chunks of *chunk_size* rows each.

    The header travels separately (see :func:`arff.header_of`); chunks carry
    only data rows so repeated chunks do not repeat the schema.
    """
    if chunk_size < 1:
        raise DataError("chunk_size must be >= 1")
    chunks: list[str] = []
    buf: list[str] = []
    for inst in dataset:
        cells = []
        for value in inst.decoded(dataset):
            if value is None:
                cells.append("?")
            elif isinstance(value, float) and value == int(value):
                cells.append(str(int(value)))
            else:
                cells.append(str(value))
        buf.append(",".join(cells))
        if len(buf) == chunk_size:
            chunks.append("\n".join(buf))
            buf = []
    if buf:
        chunks.append("\n".join(buf))
    return chunks


class ChunkedStreamReader:
    """Rebuild an :class:`InstanceStream` from a header + row chunks."""

    def __init__(self, header_arff: str):
        self.header = arff.loads(header_arff)
        if len(self.header) != 0:
            raise DataError("stream header must carry no data rows")
        self._pending: list[Instance] = []
        self._closed = False

    def feed(self, chunk: str) -> int:
        """Decode one CSV row chunk; returns the number of rows added."""
        if self._closed:
            raise DataError("stream already closed")
        count = 0
        for line in chunk.splitlines():
            line = line.strip()
            if not line:
                continue
            fields = [None if f.strip() in ("?", "") else f.strip()
                      for f in line.split(",")]
            if len(fields) != self.header.num_attributes:
                raise DataError(
                    f"chunk row has {len(fields)} fields, expected "
                    f"{self.header.num_attributes}")
            cells = [attr.encode(f)
                     for attr, f in zip(self.header.attributes, fields)]
            self._pending.append(Instance(cells))
            count += 1
        return count

    def close(self) -> None:
        """Release underlying resources."""
        self._closed = True

    def stream(self) -> InstanceStream:
        """Stream over everything fed so far (after :meth:`close`)."""
        return InstanceStream(self.header, list(self._pending))

    def dataset(self) -> Dataset:
        """Materialise everything fed so far."""
        out = self.header.copy_header()
        out.extend(self._pending)
        return out


def replay(dataset: Dataset, chunk_size: int = 50
           ) -> tuple[str, Sequence[str]]:
    """Split *dataset* into (header ARFF, row chunks) for transport."""
    return arff.header_of(dataset), chunk_rows(dataset, chunk_size)
