"""Dataset layer: attributes, instances, datasets, the columnar store,
ARFF/CSV/binary-frame IO, converters, summary statistics, synthetic
generators and instance streaming.

Public surface::

    from repro.data import Attribute, Instance, Dataset, DatasetView
    from repro.data import ColumnStore, arff, codec, csvio, dataio
    from repro.data import converters, summary, synthetic, stream
"""

from repro.data.attribute import (Attribute, MISSING, NOMINAL, NUMERIC,
                                  STRING, is_missing)
from repro.data.columns import ColumnStore
from repro.data.dataset import Dataset, DatasetView
from repro.data.instance import Instance
from repro.data import (arff, codec, converters, csvio, dataio, stream,
                        summary, synthetic)

__all__ = [
    "Attribute", "Instance", "Dataset", "DatasetView", "ColumnStore",
    "MISSING", "NOMINAL", "NUMERIC", "STRING", "is_missing",
    "arff", "codec", "csvio", "converters", "dataio", "stream", "summary",
    "synthetic",
]
