"""Dataset layer: attributes, instances, datasets, ARFF/CSV IO, converters,
summary statistics, synthetic generators and instance streaming.

Public surface::

    from repro.data import Attribute, Instance, Dataset, arff, csvio
    from repro.data import converters, summary, synthetic, stream
"""

from repro.data.attribute import (Attribute, MISSING, NOMINAL, NUMERIC,
                                  STRING, is_missing)
from repro.data.dataset import Dataset
from repro.data.instance import Instance
from repro.data import arff, converters, csvio, stream, summary, synthetic

__all__ = [
    "Attribute", "Instance", "Dataset",
    "MISSING", "NOMINAL", "NUMERIC", "STRING", "is_missing",
    "arff", "csvio", "converters", "stream", "summary", "synthetic",
]
