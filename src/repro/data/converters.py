"""Format converter library (§3: "a library of such converters may be
necessary").

Converters are registered in a small registry keyed by ``(src, dst)`` format
names so the workflow layer and the data Web Service can discover them — the
same role the paper's "data set manipulation tools" folder plays.
"""

from __future__ import annotations

from typing import Callable

from repro.data import arff, csvio
from repro.data.dataset import Dataset
from repro.errors import DataError

Converter = Callable[[str], str]

_REGISTRY: dict[tuple[str, str], Converter] = {}


def register(src: str, dst: str, fn: Converter) -> None:
    """Register *fn* converting documents from format *src* to *dst*."""
    _REGISTRY[(src.lower(), dst.lower())] = fn


def convert(text: str, src: str, dst: str) -> str:
    """Convert document *text* between registered formats."""
    src, dst = src.lower(), dst.lower()
    if src == dst:
        return text
    try:
        fn = _REGISTRY[(src, dst)]
    except KeyError:
        raise DataError(f"no converter registered for {src} -> {dst}; "
                        f"available: {sorted(_REGISTRY)}") from None
    return fn(text)


def available() -> list[tuple[str, str]]:
    """All registered ``(src, dst)`` conversion pairs."""
    return sorted(_REGISTRY)


def csv_to_arff(text: str, relation: str = "converted") -> str:
    """CSV document → ARFF document (schema inferred per :mod:`csvio`)."""
    return arff.dumps(csvio.loads(text, relation=relation))


def arff_to_csv(text: str) -> str:
    """ARFF document → CSV document (header row from attribute names)."""
    return csvio.dumps(arff.loads(text))


def parse(text: str, fmt: str, class_attribute: str | None = None) -> Dataset:
    """Parse *text* in format *fmt* ('arff' or 'csv') into a Dataset."""
    fmt = fmt.lower()
    if fmt == "arff":
        return arff.loads(text, class_attribute)
    if fmt == "csv":
        return csvio.loads(text, class_attribute=class_attribute)
    raise DataError(f"unknown data format {fmt!r}")


def serialise(dataset: Dataset, fmt: str) -> str:
    """Serialise *dataset* in format *fmt* ('arff' or 'csv')."""
    fmt = fmt.lower()
    if fmt == "arff":
        return arff.dumps(dataset)
    if fmt == "csv":
        return csvio.dumps(dataset)
    raise DataError(f"unknown data format {fmt!r}")


register("csv", "arff", csv_to_arff)
register("arff", "csv", arff_to_csv)
