"""Dataset summary statistics in the layout of the paper's Figure 3.

Figure 3 of the paper prints, for the breast-cancer dataset: instance count,
attribute count, continuous/int/real/discrete attribute counts, total missing
values (count and percentage), and one row per attribute with its name, type,
percentage of int/real/missing cells and number of distinct values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset


@dataclass(frozen=True)
class AttributeSummary:
    """Per-attribute row of the Figure-3 table."""

    index: int
    name: str
    type_label: str          # "Enum" | "Real" | "String"
    percent_nonmissing: int  # percentage of rows with a value
    missing: int             # count of missing cells
    distinct: int            # distinct non-missing values observed


@dataclass(frozen=True)
class DatasetSummary:
    """Whole-dataset header block of the Figure-3 table."""

    relation: str
    num_instances: int
    num_attributes: int
    num_continuous: int
    num_discrete: int
    missing_values: int
    missing_percent: float
    attributes: tuple[AttributeSummary, ...]


def _distinct(col: np.ndarray) -> int:
    present = col[~np.isnan(col)]
    return int(np.unique(present).size)


def summarise(dataset: Dataset) -> DatasetSummary:
    """Compute the Figure-3 statistics for *dataset*."""
    matrix = dataset.to_matrix()
    rows: list[AttributeSummary] = []
    n = max(dataset.num_instances, 1)
    for i, attr in enumerate(dataset.attributes):
        col = matrix[:, i] if len(dataset) else np.empty(0)
        missing = int(np.isnan(col).sum()) if col.size else 0
        if attr.is_nominal:
            label = "Enum"
        elif attr.is_numeric:
            label = "Real"
        else:
            label = "String"
        rows.append(AttributeSummary(
            index=i + 1,
            name=attr.name,
            type_label=label,
            percent_nonmissing=int(round(100.0 * (n - missing) / n)),
            missing=missing,
            distinct=_distinct(col) if col.size else 0,
        ))
    total_cells = dataset.num_instances * dataset.num_attributes
    total_missing = dataset.num_missing()
    pct = (100.0 * total_missing / total_cells) if total_cells else 0.0
    num_discrete = sum(1 for a in dataset.attributes
                       if a.is_nominal or a.is_string)
    return DatasetSummary(
        relation=dataset.relation,
        num_instances=dataset.num_instances,
        num_attributes=dataset.num_attributes,
        num_continuous=sum(1 for a in dataset.attributes if a.is_numeric),
        num_discrete=num_discrete,
        missing_values=total_missing,
        missing_percent=pct,
        attributes=tuple(rows),
    )


def format_figure3(summary: DatasetSummary) -> str:
    """Render *summary* in the paper's Figure-3 text layout."""
    pct = summary.missing_percent
    pct_text = f"{pct:.1f}%" if pct else "0.0%"
    lines = [
        f"Num Instances:  {summary.num_instances}",
        f"Num Attributes: {summary.num_attributes}",
        f"Num Continuous: {summary.num_continuous}  "
        f"(Int 0 / Real {summary.num_continuous})",
        f"Num Discrete:   {summary.num_discrete}",
        f"Missing values: {summary.missing_values} ({pct_text})",
        "",
        f"{'':>2} {'name':<14}{'type':<7}{'nonmiss':>8}"
        f"{'missing':>9}{'distinct':>9}",
    ]
    for row in summary.attributes:
        miss_pct = ""
        if summary.num_instances:
            frac = 100.0 * row.missing / summary.num_instances
            miss_pct = f" ({frac:.0f}%)" if row.missing else ""
        lines.append(
            f"{row.index:>2} {row.name:<14}{row.type_label:<7}"
            f"{row.percent_nonmissing:>7}%"
            f"{row.missing:>6}{miss_pct:<4}{row.distinct:>8}")
    return "\n".join(lines)


def summary_text(dataset: Dataset) -> str:
    """Shortcut: summarise and format in one call."""
    return format_figure3(summarise(dataset))


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def class_entropy(dataset: Dataset) -> float:
    """Entropy (bits) of the class distribution — used by algorithm advice."""
    return _entropy(dataset.class_counts())


def attribute_entropy(dataset: Dataset, key: int | str) -> float:
    """Entropy (bits) of a nominal attribute's value distribution."""
    counts = np.array(list(dataset.value_counts(key).values()), dtype=float)
    return _entropy(counts)


def numeric_stats(dataset: Dataset, key: int | str) -> dict[str, float]:
    """min/max/mean/std of a numeric column, ignoring missing cells."""
    col = dataset.column(key)
    present = col[~np.isnan(col)]
    if present.size == 0:
        return {"min": math.nan, "max": math.nan,
                "mean": math.nan, "std": math.nan}
    return {
        "min": float(present.min()),
        "max": float(present.max()),
        "mean": float(present.mean()),
        "std": float(present.std()),
    }
