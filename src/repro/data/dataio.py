"""Format-sniffing dataset I/O for the services layer.

Every service operation that accepts a dataset document goes through
:func:`parse_dataset`, and everything that ships one picks its encoding
through :func:`to_wire`.  The sniff is trivial and unambiguous — a
columnar frame starts with the :data:`~repro.data.codec.MAGIC` bytes,
everything else is ARFF text — which is what keeps un-upgraded peers
interoperable: a peer that only speaks ARFF keeps sending ARFF and keeps
receiving ARFF, and never sees a frame unless it advertised the codec
(see ``Transport.speaks`` / the ``X-Repro-Codecs`` header).

Parses are memoised through the content-keyed parse cache for both
formats, so re-shipping the same fold to N replicas parses once.
"""

from __future__ import annotations

from repro.data import arff, cache, codec
from repro.data.dataset import Dataset
from repro.errors import DataError

#: Codec token advertised/negotiated for the binary frame format.
COLUMNAR = "columnar"


def parse_dataset(doc: str | bytes | bytearray | memoryview,
                  class_attribute: str | None = None) -> Dataset:
    """Parse a wire dataset document, whatever its encoding.

    ``bytes`` starting with the frame magic decode through the columnar
    codec; any other input is treated as ARFF text (bytes are decoded as
    UTF-8 first).  ``class_attribute`` optionally designates the class
    by name after parsing, matching ``arff.loads`` semantics.
    """
    if isinstance(doc, (bytes, bytearray, memoryview)):
        if codec.is_columnar(doc):
            raw = bytes(doc)
            out = cache.memo_parse(COLUMNAR, raw,
                                   lambda: codec.decode(raw))
            if class_attribute is not None:
                out.set_class(class_attribute)
            return out
        try:
            doc = bytes(doc).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DataError(
                f"dataset document is neither a columnar frame nor "
                f"UTF-8 ARFF text: {exc}") from None
    return arff.loads(doc, class_attribute=class_attribute)


def to_wire(dataset: Dataset, binary: bool) -> bytes | str:
    """Encode *dataset* for the wire: a columnar frame when the peer
    speaks it (*binary* true), ARFF text otherwise."""
    if binary:
        return dataset.to_frame()
    return arff.dumps(dataset)


__all__ = ["COLUMNAR", "parse_dataset", "to_wire"]
