"""Attribute metadata for the dataset model.

Mirrors the WEKA ``Attribute`` concept the paper's services rely on: an
attribute is *nominal* (an enumerated set of symbolic values), *numeric*
(real-valued), or *string* (free text, value-indexed like nominal but
open-ended).  Internally every cell of a dataset is stored as a ``float``;
nominal and string cells hold the index of the value in the attribute's value
table, and missing cells hold ``NaN``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import DataError

#: Sentinel used in user-facing APIs for a missing cell.
MISSING = float("nan")

NUMERIC = "numeric"
NOMINAL = "nominal"
STRING = "string"

_KINDS = (NUMERIC, NOMINAL, STRING)


def is_missing(value: float) -> bool:
    """Return True when *value* encodes a missing cell."""
    return isinstance(value, float) and math.isnan(value)


class Attribute:
    """A single dataset column: name, kind and (for nominal) value table.

    Parameters
    ----------
    name:
        Column name as it appears in the ARFF header.
    kind:
        One of :data:`NUMERIC`, :data:`NOMINAL`, :data:`STRING`.
    values:
        For nominal attributes, the ordered enumeration of symbolic values.
        Ignored for numeric; optional seed vocabulary for string attributes.
    """

    __slots__ = ("name", "kind", "_values", "_value_index")

    def __init__(self, name: str, kind: str = NUMERIC,
                 values: Sequence[str] | None = None):
        if kind not in _KINDS:
            raise DataError(f"unknown attribute kind {kind!r}")
        if kind == NOMINAL and not values:
            raise DataError(f"nominal attribute {name!r} needs values")
        self.name = str(name)
        self.kind = kind
        self._values: list[str] = list(values or [])
        if len(set(self._values)) != len(self._values):
            raise DataError(f"attribute {name!r} has duplicate values")
        self._value_index = {v: i for i, v in enumerate(self._values)}

    # -- constructors -----------------------------------------------------
    @classmethod
    def numeric(cls, name: str) -> "Attribute":
        """A real-valued attribute."""
        return cls(name, NUMERIC)

    @classmethod
    def nominal(cls, name: str, values: Iterable[str]) -> "Attribute":
        """A nominal attribute over an enumerated value set."""
        return cls(name, NOMINAL, list(values))

    @classmethod
    def string(cls, name: str) -> "Attribute":
        """A free-text attribute (value table grows on demand)."""
        return cls(name, STRING, [])

    # -- predicates --------------------------------------------------------
    @property
    def is_numeric(self) -> bool:
        return self.kind == NUMERIC

    @property
    def is_nominal(self) -> bool:
        return self.kind == NOMINAL

    @property
    def is_string(self) -> bool:
        return self.kind == STRING

    # -- value table -------------------------------------------------------
    @property
    def values(self) -> tuple[str, ...]:
        """The symbolic value table (empty for numeric attributes)."""
        return tuple(self._values)

    @property
    def num_values(self) -> int:
        return len(self._values)

    def index_of(self, value: str) -> int:
        """Index of symbolic *value*, raising :class:`DataError` if unknown."""
        try:
            return self._value_index[value]
        except KeyError:
            raise DataError(
                f"value {value!r} not in attribute {self.name!r} "
                f"(known: {self._values})") from None

    def add_value(self, value: str) -> int:
        """Append *value* to the table (string attributes); return its index."""
        if self.is_numeric:
            raise DataError(f"cannot add symbolic value to numeric "
                            f"attribute {self.name!r}")
        if value in self._value_index:
            return self._value_index[value]
        if self.is_nominal:
            raise DataError(
                f"value {value!r} not in closed nominal attribute "
                f"{self.name!r}")
        self._values.append(value)
        idx = len(self._values) - 1
        self._value_index[value] = idx
        return idx

    # -- encode/decode -----------------------------------------------------
    def encode(self, raw: object) -> float:
        """Encode an external value (str/number/None) to the float cell."""
        if raw is None:
            return MISSING
        if isinstance(raw, float) and math.isnan(raw):
            return MISSING
        if isinstance(raw, str) and raw in ("?", ""):
            return MISSING
        if self.is_numeric:
            try:
                return float(raw)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise DataError(
                    f"cannot coerce {raw!r} for numeric attribute "
                    f"{self.name!r}") from None
        text = str(raw)
        if self.is_nominal:
            return float(self.index_of(text))
        return float(self.add_value(text))

    def decode(self, cell: float) -> object:
        """Decode a float cell to its external value (str/float/None)."""
        if is_missing(cell):
            return None
        if self.is_numeric:
            return float(cell)
        idx = int(cell)
        if not 0 <= idx < len(self._values):
            raise DataError(
                f"cell {cell!r} out of range for attribute {self.name!r}")
        return self._values[idx]

    def copy(self) -> "Attribute":
        """Deep copy (value table included)."""
        return Attribute(self.name, self.kind, list(self._values))

    # -- dunder ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Attribute)
                and self.name == other.name
                and self.kind == other.kind
                and self._values == other._values)

    def __hash__(self) -> int:
        return hash((self.name, self.kind, tuple(self._values)))

    def __repr__(self) -> str:
        if self.is_nominal:
            return f"Attribute({self.name!r}, nominal, {self._values!r})"
        return f"Attribute({self.name!r}, {self.kind})"
