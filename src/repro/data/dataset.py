"""The dataset container (WEKA ``Instances`` analogue).

A :class:`Dataset` is a relation name, an ordered attribute list, a class
attribute designation and a sequence of :class:`~repro.data.Instance` rows.
It is the unit every paper service consumes and produces (as ARFF text), and
the unit the ML library trains on.

For vectorised algorithms the dataset exposes :meth:`to_matrix`, a cached
``(n_instances, n_attributes)`` float matrix with ``NaN`` for missing cells.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.data.attribute import Attribute
from repro.data.instance import Instance
from repro.errors import DataError


class Dataset:
    """An ordered collection of instances sharing one attribute schema."""

    def __init__(self, relation: str, attributes: Sequence[Attribute],
                 instances: Iterable[Instance] | None = None,
                 class_index: int | None = None):
        if not attributes:
            raise DataError("a dataset needs at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise DataError(f"duplicate attribute names in {relation!r}")
        self.relation = str(relation)
        self._attributes: list[Attribute] = list(attributes)
        self._instances: list[Instance] = []
        self._class_index: int | None = None
        self._matrix: np.ndarray | None = None
        if class_index is not None:
            self.class_index = class_index
        for inst in instances or ():
            self.add(inst)

    # -- schema ---------------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return tuple(self._attributes)

    @property
    def num_attributes(self) -> int:
        return len(self._attributes)

    def attribute(self, key: int | str) -> Attribute:
        """Attribute by index or name."""
        if isinstance(key, str):
            return self._attributes[self.attribute_index(key)]
        return self._attributes[key]

    def attribute_index(self, name: str) -> int:
        """Index of the attribute called *name*."""
        for i, attr in enumerate(self._attributes):
            if attr.name == name:
                return i
        raise DataError(f"no attribute named {name!r} in {self.relation!r}")

    @property
    def class_index(self) -> int:
        if self._class_index is None:
            raise DataError(
                f"dataset {self.relation!r} has no class attribute set")
        return self._class_index

    @class_index.setter
    def class_index(self, index: int) -> None:
        if not -len(self._attributes) <= index < len(self._attributes):
            raise DataError(f"class index {index} out of range")
        self._class_index = index % len(self._attributes)

    @property
    def has_class(self) -> bool:
        return self._class_index is not None

    @property
    def class_attribute(self) -> Attribute:
        return self._attributes[self.class_index]

    def set_class(self, name: str) -> None:
        """Designate the class attribute by name."""
        self.class_index = self.attribute_index(name)

    @property
    def num_classes(self) -> int:
        cls = self.class_attribute
        if not cls.is_nominal:
            raise DataError(
                f"class attribute {cls.name!r} is not nominal")
        return cls.num_values

    # -- rows -------------------------------------------------------------------
    @property
    def instances(self) -> tuple[Instance, ...]:
        return tuple(self._instances)

    def __len__(self) -> int:
        return len(self._instances)

    @property
    def num_instances(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._instances)

    def __getitem__(self, index: int) -> Instance:
        return self._instances[index]

    def add(self, instance: Instance) -> None:
        """Append a row; its arity must match the schema."""
        if len(instance) != self.num_attributes:
            raise DataError(
                f"instance has {len(instance)} cells, schema has "
                f"{self.num_attributes} attributes")
        self._instances.append(instance)
        self._matrix = None

    def add_row(self, raw: Sequence[object], weight: float = 1.0) -> None:
        """Append a row of *external* values, encoding each cell."""
        if len(raw) != self.num_attributes:
            raise DataError(
                f"row has {len(raw)} values, schema has "
                f"{self.num_attributes} attributes")
        cells = [attr.encode(v) for attr, v in zip(self._attributes, raw)]
        self.add(Instance(cells, weight))

    def extend(self, rows: Iterable[Instance]) -> None:
        """Append every instance of *rows*."""
        for inst in rows:
            self.add(inst)

    # -- bulk views ----------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Cached ``(n, m)`` float matrix of encoded cells (NaN = missing)."""
        if self._matrix is None:
            if self._instances:
                self._matrix = np.vstack(
                    [inst.values for inst in self._instances])
            else:
                self._matrix = np.empty((0, self.num_attributes))
        return self._matrix

    def weights(self) -> np.ndarray:
        """Vector of instance weights."""
        return np.array([inst.weight for inst in self._instances])

    def column(self, key: int | str) -> np.ndarray:
        """One encoded column as a float vector."""
        idx = self.attribute_index(key) if isinstance(key, str) else key
        return self.to_matrix()[:, idx]

    def class_values(self) -> np.ndarray:
        """Encoded class column."""
        return self.column(self.class_index)

    def class_counts(self) -> np.ndarray:
        """Weighted per-class counts (ignores missing-class rows)."""
        counts = np.zeros(self.num_classes)
        for inst in self._instances:
            c = inst.value(self.class_index)
            if not math.isnan(c):
                counts[int(c)] += inst.weight
        return counts

    # -- structural operations --------------------------------------------------
    def copy_header(self, relation: str | None = None) -> "Dataset":
        """Empty dataset sharing a deep copy of this schema."""
        out = Dataset(relation or self.relation,
                      [a.copy() for a in self._attributes])
        out._class_index = self._class_index
        return out

    def copy(self) -> "Dataset":
        """Deep copy of schema and rows."""
        out = self.copy_header()
        out.extend(inst.copy() for inst in self._instances)
        return out

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """New dataset with the selected rows (copies)."""
        out = self.copy_header()
        out.extend(self._instances[i].copy() for i in indices)
        return out

    def filter_rows(self, predicate: Callable[[Instance], bool]) -> "Dataset":
        """New dataset with the rows for which *predicate* holds."""
        out = self.copy_header()
        out.extend(inst.copy() for inst in self._instances
                   if predicate(inst))
        return out

    def select_attributes(self, indices: Sequence[int]) -> "Dataset":
        """Project onto the attribute *indices* (class index remapped)."""
        idx = list(indices)
        attrs = [self._attributes[i].copy() for i in idx]
        out = Dataset(self.relation, attrs)
        if self._class_index is not None and self._class_index in idx:
            out._class_index = idx.index(self._class_index)
        for inst in self._instances:
            out.add(Instance(inst.values[idx].copy(), inst.weight))
        return out

    def shuffled(self, rng: np.random.Generator | int | None = None
                 ) -> "Dataset":
        """Row-shuffled copy using *rng* (Generator, seed, or fresh)."""
        gen = (rng if isinstance(rng, np.random.Generator)
               else np.random.default_rng(rng))
        order = gen.permutation(len(self._instances))
        return self.subset(list(order))

    def split(self, train_fraction: float,
              rng: np.random.Generator | int | None = None
              ) -> tuple["Dataset", "Dataset"]:
        """Shuffle and split into (train, test) by *train_fraction*."""
        if not 0.0 < train_fraction < 1.0:
            raise DataError("train_fraction must be in (0, 1)")
        shuffled = self.shuffled(rng)
        cut = int(round(train_fraction * len(shuffled)))
        cut = min(max(cut, 1), len(shuffled) - 1) if len(shuffled) >= 2 else cut
        train = self.copy_header()
        test = self.copy_header()
        train.extend(shuffled[i].copy() for i in range(cut))
        test.extend(shuffled[i].copy() for i in range(cut, len(shuffled)))
        return train, test

    def merge(self, other: "Dataset") -> "Dataset":
        """Row-union of two datasets with equal schemas."""
        if [a.name for a in self._attributes] != \
                [a.name for a in other._attributes]:
            raise DataError("cannot merge datasets with different schemas")
        out = self.copy()
        out.extend(inst.copy() for inst in other)
        return out

    # -- statistics -----------------------------------------------------------
    def num_missing(self) -> int:
        """Total missing cells across all rows."""
        if not self._instances:
            return 0
        return int(np.isnan(self.to_matrix()).sum())

    def value_counts(self, key: int | str) -> dict[str, int]:
        """Occurrence count of each symbolic value of a nominal attribute."""
        idx = self.attribute_index(key) if isinstance(key, str) else key
        attr = self._attributes[idx]
        if not attr.is_nominal:
            raise DataError(f"{attr.name!r} is not nominal")
        col = self.column(idx)
        out = {v: 0 for v in attr.values}
        for cell in col:
            if not math.isnan(cell):
                out[attr.values[int(cell)]] += 1
        return out

    def __repr__(self) -> str:
        cls = (self._attributes[self._class_index].name
               if self._class_index is not None else None)
        return (f"Dataset({self.relation!r}, {self.num_instances} x "
                f"{self.num_attributes}, class={cls!r})")
