"""The dataset container (WEKA ``Instances`` analogue).

A :class:`Dataset` is a relation name, an ordered attribute list, a class
attribute designation and a sequence of :class:`~repro.data.Instance` rows.
It is the unit every paper service consumes and produces, and the unit the
ML library trains on.

Since the columnar refactor the rows live in a
:class:`~repro.data.columns.ColumnStore` — one contiguous float64 block —
and :meth:`to_matrix` is a **zero-copy view** of it, re-derived on every
call so it can never be stale: instances attached to the store write
through, and structural mutations (add/remove) are visible the next time
the view is taken.  :meth:`view` slices the dataset without copying rows
(:class:`DatasetView`); contiguous slices even share memory with the
parent block, which is what lets cross-validation folds, scatter chunks
and the experiment runner ship views instead of row copies.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.data.attribute import Attribute
from repro.data.columns import ColumnStore
from repro.data.instance import Instance
from repro.errors import DataError


class Dataset:
    """An ordered collection of instances sharing one attribute schema."""

    def __init__(self, relation: str, attributes: Sequence[Attribute],
                 instances: Iterable[Instance] | None = None,
                 class_index: int | None = None):
        if not attributes:
            raise DataError("a dataset needs at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise DataError(f"duplicate attribute names in {relation!r}")
        self.relation = str(relation)
        self._attributes: list[Attribute] = list(attributes)
        self._store = ColumnStore(len(self._attributes))
        # parallel to the store's rows; ``None`` slots are materialised
        # into attached Instance objects on first access
        self._instances: list[Instance | None] = []
        self._class_index: int | None = None
        self._frame_cache: tuple[int, bytes] | None = None
        if class_index is not None:
            self.class_index = class_index
        for inst in instances or ():
            self.add(inst)

    # -- schema ---------------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return tuple(self._attributes)

    @property
    def num_attributes(self) -> int:
        return len(self._attributes)

    def attribute(self, key: int | str) -> Attribute:
        """Attribute by index or name."""
        if isinstance(key, str):
            return self._attributes[self.attribute_index(key)]
        return self._attributes[key]

    def attribute_index(self, name: str) -> int:
        """Index of the attribute called *name*."""
        for i, attr in enumerate(self._attributes):
            if attr.name == name:
                return i
        raise DataError(f"no attribute named {name!r} in {self.relation!r}")

    @property
    def class_index(self) -> int:
        if self._class_index is None:
            raise DataError(
                f"dataset {self.relation!r} has no class attribute set")
        return self._class_index

    @class_index.setter
    def class_index(self, index: int) -> None:
        if not -len(self._attributes) <= index < len(self._attributes):
            raise DataError(f"class index {index} out of range")
        self._class_index = index % len(self._attributes)

    @property
    def has_class(self) -> bool:
        return self._class_index is not None

    @property
    def class_attribute(self) -> Attribute:
        return self._attributes[self.class_index]

    def set_class(self, name: str) -> None:
        """Designate the class attribute by name."""
        self.class_index = self.attribute_index(name)

    @property
    def num_classes(self) -> int:
        cls = self.class_attribute
        if not cls.is_nominal:
            raise DataError(
                f"class attribute {cls.name!r} is not nominal")
        return cls.num_values

    # -- rows -------------------------------------------------------------------
    @property
    def data_version(self) -> int:
        """Monotonic mutation stamp of the backing store — anything that
        caches derived state (gathered views, wire frames) keys on it."""
        return self._store.version

    def _instance_at(self, index: int) -> Instance:
        inst = self._instances[index]
        if inst is None:
            inst = Instance._attached(self._store, index)
            self._instances[index] = inst
        return inst

    @property
    def instances(self) -> tuple[Instance, ...]:
        return tuple(self)

    def __len__(self) -> int:
        return self._store.n_rows

    @property
    def num_instances(self) -> int:
        return len(self)

    def __iter__(self) -> Iterator[Instance]:
        for i in range(len(self)):
            yield self._instance_at(i)

    def __getitem__(self, index: int) -> Instance:
        n = len(self)
        index = int(index)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"row {index} out of range ({n} rows)")
        return self._instance_at(index)

    def add(self, instance: Instance) -> None:
        """Append a row; its arity must match the schema.

        The instance becomes an attached view of this dataset's store
        (its cell writes flow through).  An instance already owned by a
        dataset is copied in instead, leaving the original untouched.
        """
        if len(instance) != self.num_attributes:
            raise DataError(
                f"instance has {len(instance)} cells, schema has "
                f"{self.num_attributes} attributes")
        if instance.is_attached:
            instance = instance.copy()
        row = self._store.append(instance.values, instance.weight)
        instance._attach(self._store, row)
        self._instances.append(instance)

    def add_row(self, raw: Sequence[object], weight: float = 1.0) -> None:
        """Append a row of *external* values, encoding each cell."""
        if len(raw) != self.num_attributes:
            raise DataError(
                f"row has {len(raw)} values, schema has "
                f"{self.num_attributes} attributes")
        cells = [attr.encode(v) for attr, v in zip(self._attributes, raw)]
        self.add(Instance(cells, weight))

    def extend(self, rows: Iterable[Instance]) -> None:
        """Append every instance of *rows*."""
        for inst in rows:
            self.add(inst)

    def remove(self, index: int) -> Instance:
        """Delete one row; returns it as a detached instance."""
        n = len(self)
        index = int(index)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise DataError(f"row {index} out of range ({n} rows)")
        inst = self._instance_at(index)
        self._instances.pop(index)
        inst._detach()  # snapshot cells before the store shifts rows
        self._store.remove(index)
        for later in self._instances[index:]:
            if later is not None:
                later._row -= 1
        return inst

    def _bulk_extend(self, matrix: np.ndarray,
                     weights: np.ndarray | None = None) -> None:
        """Append ``(k, m)`` encoded rows in one store copy (no per-row
        Instance objects are materialised until accessed)."""
        mat = np.asarray(matrix, dtype=float)
        if mat.shape[0] == 0:
            return
        self._store.extend_matrix(mat, weights)
        self._instances.extend([None] * mat.shape[0])

    # -- bulk views ----------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Zero-copy ``(n, m)`` float view of the store (NaN = missing).

        Re-derived per call, so it always reflects the current rows; a
        view taken *before* a structural mutation is a snapshot, exactly
        like any numpy view across a reallocation.
        """
        return self._store.matrix

    def weights(self) -> np.ndarray:
        """Zero-copy vector of instance weights (live store view)."""
        return self._store.weights

    def column(self, key: int | str) -> np.ndarray:
        """One encoded column as a float vector (zero-copy view)."""
        idx = self.attribute_index(key) if isinstance(key, str) else key
        return self.to_matrix()[:, idx]

    def class_values(self) -> np.ndarray:
        """Encoded class column."""
        return self.column(self.class_index)

    def class_counts(self) -> np.ndarray:
        """Weighted per-class counts (ignores missing-class rows)."""
        counts = np.zeros(self.num_classes)
        y = self.class_values()
        keep = ~np.isnan(y)
        if keep.any():
            np.add.at(counts, y[keep].astype(int), self.weights()[keep])
        return counts

    def view(self, rows: Sequence[int] | slice | np.ndarray
             ) -> "DatasetView":
        """A zero-copy row selection of this dataset (see
        :class:`DatasetView`)."""
        return DatasetView(self, rows)

    def to_frame(self) -> bytes:
        """This dataset as a binary columnar wire frame (see
        :mod:`repro.data.codec`), memoised against :attr:`data_version`
        so repeat sends of an unchanged dataset encode once."""
        from repro.data import codec
        version = self.data_version
        cached = self._frame_cache
        if cached is None or cached[0] != version:
            cached = (version, codec.encode(self))
            self._frame_cache = cached
        return cached[1]

    # -- structural operations --------------------------------------------------
    def copy_header(self, relation: str | None = None) -> "Dataset":
        """Empty dataset sharing a deep copy of this schema."""
        out = Dataset(relation or self.relation,
                      [a.copy() for a in self._attributes])
        out._class_index = self._class_index
        return out

    def copy(self) -> "Dataset":
        """Deep copy of schema and rows."""
        out = self.copy_header()
        out._bulk_extend(self.to_matrix(), self.weights())
        return out

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """New dataset with the selected rows (copies); prefer
        :meth:`view` when the rows only need to be *read*."""
        idx = np.asarray(list(indices), dtype=np.intp)
        out = self.copy_header()
        if idx.size:
            out._bulk_extend(self.to_matrix()[idx], self.weights()[idx])
        return out

    def filter_rows(self, predicate: Callable[[Instance], bool]) -> "Dataset":
        """New dataset with the rows for which *predicate* holds."""
        keep = [i for i, inst in enumerate(self) if predicate(inst)]
        return self.subset(keep)

    def select_attributes(self, indices: Sequence[int]) -> "Dataset":
        """Project onto the attribute *indices* (class index remapped)."""
        idx = list(indices)
        attrs = [self._attributes[i].copy() for i in idx]
        out = Dataset(self.relation, attrs)
        if self._class_index is not None and self._class_index in idx:
            out._class_index = idx.index(self._class_index)
        if len(self):
            out._bulk_extend(self.to_matrix()[:, idx], self.weights())
        return out

    def shuffled(self, rng: np.random.Generator | int | None = None
                 ) -> "Dataset":
        """Row-shuffled copy using *rng* (Generator, seed, or fresh)."""
        gen = (rng if isinstance(rng, np.random.Generator)
               else np.random.default_rng(rng))
        order = gen.permutation(len(self))
        return self.subset(list(order))

    def split(self, train_fraction: float,
              rng: np.random.Generator | int | None = None
              ) -> tuple["Dataset", "Dataset"]:
        """Shuffle and split into (train, test) by *train_fraction*."""
        if not 0.0 < train_fraction < 1.0:
            raise DataError("train_fraction must be in (0, 1)")
        shuffled = self.shuffled(rng)
        cut = int(round(train_fraction * len(shuffled)))
        cut = min(max(cut, 1), len(shuffled) - 1) if len(shuffled) >= 2 else cut
        train = shuffled.subset(range(cut))
        test = shuffled.subset(range(cut, len(shuffled)))
        return train, test

    def merge(self, other: "Dataset") -> "Dataset":
        """Row-union of two datasets with equal schemas."""
        if [a.name for a in self._attributes] != \
                [a.name for a in other._attributes]:
            raise DataError("cannot merge datasets with different schemas")
        out = self.copy()
        out._bulk_extend(other.to_matrix(), other.weights())
        return out

    # -- statistics -----------------------------------------------------------
    def num_missing(self) -> int:
        """Total missing cells across all rows."""
        if not len(self):
            return 0
        return int(np.isnan(self.to_matrix()).sum())

    def value_counts(self, key: int | str) -> dict[str, int]:
        """Occurrence count of each symbolic value of a nominal attribute."""
        idx = self.attribute_index(key) if isinstance(key, str) else key
        attr = self._attributes[idx]
        if not attr.is_nominal:
            raise DataError(f"{attr.name!r} is not nominal")
        col = self.column(idx)
        out = {v: 0 for v in attr.values}
        for cell in col:
            if not math.isnan(cell):
                out[attr.values[int(cell)]] += 1
        return out

    def __repr__(self) -> str:
        cls = (self._attributes[self._class_index].name
               if self._class_index is not None else None)
        return (f"Dataset({self.relation!r}, {self.num_instances} x "
                f"{self.num_attributes}, class={cls!r})")


class DatasetView(Dataset):
    """A read-only row selection of a base dataset, without row copies.

    A view shares the base's attribute objects and column store.  A
    *contiguous* selection (a step-1 slice, or an index array that
    happens to be consecutive) yields matrix/weight views that share
    memory with the base block outright; an arbitrary index selection
    gathers lazily, memoising the gathered matrix against the base's
    :attr:`~Dataset.data_version` so it can never serve stale cells.

    Structural mutation (``add``/``remove``/``extend``) is refused —
    mutate the base, or materialise a copy via :meth:`Dataset.subset` /
    :meth:`Dataset.copy`.  The class designation is per-view, so a fold
    view can re-target its class without touching the base.
    """

    def __init__(self, base: Dataset,
                 rows: Sequence[int] | slice | np.ndarray):
        # deliberately no super().__init__: a view owns no store
        self.relation = base.relation
        self._attributes = base._attributes
        self._class_index = base._class_index
        self._base = base
        self._frame_cache = None
        n = base.num_instances
        if isinstance(rows, slice):
            start, stop, step = rows.indices(n)
            if step == 1:
                stop = max(stop, start)
                self._slice: slice | None = slice(start, stop)
                self._rows = np.arange(start, stop, dtype=np.intp)
                return
            rows = np.arange(start, stop, step, dtype=np.intp)
        arr = np.asarray(list(rows) if not isinstance(rows, np.ndarray)
                         else rows, dtype=np.intp).copy()
        if arr.ndim != 1:
            raise DataError("view rows must be a 1-D selection")
        arr[arr < 0] += n
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            raise DataError(f"view row out of range for {n} rows")
        # a consecutive run is secretly a slice: keep the zero-copy path
        if arr.size and np.array_equal(
                arr, np.arange(arr[0], arr[0] + arr.size)):
            self._slice = slice(int(arr[0]), int(arr[0]) + arr.size)
        else:
            self._slice = None
        self._rows = arr
        self._gather: tuple[int, np.ndarray, np.ndarray] | None = None

    # -- selection introspection ---------------------------------------------
    @property
    def base(self) -> Dataset:
        """The dataset this view selects from."""
        return self._base

    @property
    def row_indices(self) -> np.ndarray:
        """Base-row index per view row (in view order)."""
        return self._rows

    @property
    def base_matrix(self) -> np.ndarray:
        """The base dataset's full zero-copy matrix (pair with
        :attr:`row_indices` to defer the gather to the consumer)."""
        return self._base.to_matrix()

    @property
    def is_contiguous(self) -> bool:
        """True when the selection is a memory-sharing slice."""
        return self._slice is not None

    # -- overridden row plumbing ---------------------------------------------
    @property
    def data_version(self) -> int:
        return self._base.data_version

    def __len__(self) -> int:
        return int(self._rows.shape[0])

    def __iter__(self) -> Iterator[Instance]:
        for row in self._rows:
            yield self._base[int(row)]

    def __getitem__(self, index: int) -> Instance:
        return self._base[int(self._rows[int(index)])]

    def _instance_at(self, index: int) -> Instance:
        return self[index]

    def to_matrix(self) -> np.ndarray:
        if self._slice is not None:
            return self._base.to_matrix()[self._slice]
        version = self._base.data_version
        cached = self._gather
        if cached is None or cached[0] != version:
            base_matrix = self._base.to_matrix()
            cached = (version, base_matrix[self._rows],
                      self._base.weights()[self._rows])
            self._gather = cached
        return cached[1]

    def weights(self) -> np.ndarray:
        if self._slice is not None:
            return self._base.weights()[self._slice]
        self.to_matrix()  # refresh the gather cache
        assert self._gather is not None
        return self._gather[2]

    # -- mutation is a base-dataset affair ------------------------------------
    def _refuse(self) -> None:
        raise DataError(
            "dataset views are read-only; mutate the base dataset or "
            "materialise a copy with .subset()/.copy()")

    def add(self, instance: Instance) -> None:
        self._refuse()

    def add_row(self, raw: Sequence[object], weight: float = 1.0) -> None:
        self._refuse()

    def extend(self, rows: Iterable[Instance]) -> None:
        self._refuse()

    def remove(self, index: int) -> Instance:
        self._refuse()

    def __repr__(self) -> str:
        kind = "slice" if self._slice is not None else "gather"
        return (f"DatasetView({self.relation!r}, {len(self)} of "
                f"{self._base.num_instances} rows, {kind})")
