"""CSV reader/writer with schema inference.

The paper calls out "a tool to convert CSV file into ARFF format ... this
conversion process is particularly useful for using data sets obtained from
commercial software such as MS-Excel".  The reader infers each column's kind:
a column whose every non-missing token parses as a number becomes numeric;
otherwise it becomes nominal over the observed value set (sorted for
determinism).
"""

from __future__ import annotations

import csv
import io
from typing import Sequence, TextIO

from repro.data import cache
from repro.data.attribute import Attribute
from repro.data.dataset import Dataset
from repro.errors import DataError

#: Tokens read as a missing cell.
MISSING_TOKENS = {"", "?", "NA", "N/A", "null", "None"}


def _is_number(token: str) -> bool:
    try:
        float(token)
        return True
    except ValueError:
        return False


def infer_attributes(header: Sequence[str],
                     rows: Sequence[Sequence[str]]) -> list[Attribute]:
    """Infer an attribute per column from raw string *rows*."""
    n = len(header)
    attrs: list[Attribute] = []
    for col in range(n):
        seen: list[str] = []
        numeric = True
        any_value = False
        for row in rows:
            tok = row[col].strip()
            if tok in MISSING_TOKENS:
                continue
            any_value = True
            if not _is_number(tok):
                numeric = False
            if tok not in seen:
                seen.append(tok)
        if numeric and any_value:
            attrs.append(Attribute.numeric(header[col]))
        elif not any_value:
            # all-missing column: default numeric, matching WEKA's loader
            attrs.append(Attribute.numeric(header[col]))
        else:
            attrs.append(Attribute.nominal(header[col], sorted(seen)))
    return attrs


def load(fp: TextIO, relation: str = "csv",
         class_attribute: str | None = None,
         has_header: bool = True) -> Dataset:
    """Read CSV from *fp* into a :class:`Dataset` with inferred schema."""
    reader = csv.reader(fp)
    rows = [row for row in reader if row]
    if not rows:
        raise DataError("empty CSV document")
    if has_header:
        header, body = rows[0], rows[1:]
    else:
        header = [f"attr{i}" for i in range(len(rows[0]))]
        body = rows
    width = len(header)
    for i, row in enumerate(body):
        if len(row) != width:
            raise DataError(
                f"CSV row {i + 1} has {len(row)} fields, expected {width}")
    attrs = infer_attributes(header, body)
    ds = Dataset(relation, attrs)
    for row in body:
        ds.add_row([None if tok.strip() in MISSING_TOKENS else tok.strip()
                    for tok in row])
    if class_attribute is not None:
        ds.set_class(class_attribute)
    return ds


def loads(text: str, relation: str = "csv",
          class_attribute: str | None = None,
          has_header: bool = True) -> Dataset:
    """Read CSV from a string (memoised by content digest)."""
    return cache.memo_parse(
        "csv", text,
        lambda: load(io.StringIO(text), relation, class_attribute,
                     has_header),
        relation=relation, class_attribute=class_attribute,
        has_header=has_header)


def dump(dataset: Dataset, fp: TextIO, header: bool = True) -> None:
    """Write *dataset* as CSV (missing cells become ``?``)."""
    writer = csv.writer(fp, lineterminator="\n")
    if header:
        writer.writerow([a.name for a in dataset.attributes])
    for inst in dataset:
        row = []
        for value in inst.decoded(dataset):
            if value is None:
                row.append("?")
            elif isinstance(value, float) and value == int(value):
                row.append(str(int(value)))
            else:
                row.append(str(value))
        writer.writerow(row)


def dumps(dataset: Dataset, header: bool = True) -> str:
    """Write *dataset* as a CSV string."""
    out = io.StringIO()
    dump(dataset, out, header)
    return out.getvalue()
