"""Memoised parse/result caching for the data plane.

The paper's §4.5 overhead analysis shows that most of the cost of a
remote invocation is *data handling*: every SOAP hop re-ships and
re-parses the same ARFF/CSV documents.  FlexDM-style measurements make
the same point for parallel WEKA — throughput is gated by redundant
dataset handling, not by the learners.  This module removes the
re-parsing half of that cost:

* :class:`LruCache` — a small, thread-safe, bounded LRU used across the
  toolkit (parse memo, payload store, WSDL descriptions, idempotent
  results).
* :func:`memo_parse` — a content-keyed memo for ``arff.loads`` /
  ``csvio.loads``: documents are keyed by their SHA-256 digest (plus the
  parse options), so the engine, the services, and the converters parse
  each distinct document once.  Cache hits return a **copy** of the
  parsed dataset, so callers can keep mutating (``set_class``,
  ``add_row``) without poisoning the cache.

Hit/miss counts are published as ``ws.cache.parse.hits`` /
``ws.cache.parse.misses`` counters (plus ``ws.cache.parse.bytes_saved``,
the document bytes *not* re-parsed), visible through ``repro metrics``.

The whole fast path can be disabled with ``repro run
--no-payload-cache`` or ``FAEHIM_NO_FASTPATH=1``.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, TYPE_CHECKING

from repro.obs import get_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.dataset import Dataset

#: Parsed datasets kept by the parse memo (LRU beyond this).
PARSE_CACHE_ENTRIES = 64

#: Documents smaller than this are cheaper to re-parse than to copy.
MIN_MEMO_BYTES = 256


def text_digest(text: str | bytes) -> str:
    """SHA-256 hex digest of a document (str digested as UTF-8)."""
    if isinstance(text, str):
        text = text.encode("utf-8", "surrogatepass")
    return hashlib.sha256(text).hexdigest()


class LruCache:
    """A thread-safe bounded mapping with least-recently-used eviction.

    Optionally bounded by total payload bytes as well as entry count
    (callers pass ``weight`` per entry); both bounds hold after every
    ``put``.
    """

    def __init__(self, max_entries: int, max_bytes: int | None = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._data: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Value for *key* (refreshing its recency), or *default*."""
        with self._lock:
            try:
                value, weight = self._data.pop(key)
            except KeyError:
                return default
            self._data[key] = (value, weight)
            return value

    def put(self, key: Hashable, value: Any, weight: int = 0) -> None:
        """Insert/refresh *key*; evicts LRU entries beyond the bounds."""
        with self._lock:
            old = self._data.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._data[key] = (value, weight)
            self._bytes += weight
            while len(self._data) > self.max_entries or (
                    self.max_bytes is not None
                    and self._bytes > self.max_bytes
                    and len(self._data) > 1):
                _, (_, evicted_weight) = self._data.popitem(last=False)
                self._bytes -= evicted_weight

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def total_bytes(self) -> int:
        """Sum of entry weights currently held."""
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._data.clear()
            self._bytes = 0


_enabled = os.environ.get("FAEHIM_NO_FASTPATH", "") not in ("1", "true")
_parse_cache = LruCache(PARSE_CACHE_ENTRIES)


def set_enabled(on: bool) -> None:
    """Globally enable/disable the parse/result memo caches."""
    global _enabled
    _enabled = bool(on)


def enabled() -> bool:
    """True when memo caching is active (default unless
    ``FAEHIM_NO_FASTPATH`` is set)."""
    return _enabled


def reset_parse_cache() -> None:
    """Drop all memoised datasets (test isolation)."""
    _parse_cache.clear()


def parse_cache_len() -> int:
    """Number of datasets currently memoised."""
    return len(_parse_cache)


def memo_parse(kind: str, text: str, factory: Callable[[], "Dataset"],
               **key_parts: Any) -> "Dataset":
    """Parse *text* through *factory*, memoised by content digest.

    ``kind`` names the format ("arff"/"csv") and ``key_parts`` carries
    any parse options that change the result (class attribute, relation
    name, header flag).  A hit returns ``cached.copy()`` so the caller
    owns an independent dataset.
    """
    if not _enabled or len(text) < MIN_MEMO_BYTES:
        return factory()
    key = (kind, text_digest(text),
           tuple(sorted(key_parts.items())))
    cached = _parse_cache.get(key)
    metrics = get_metrics()
    if cached is not None:
        metrics.counter("ws.cache.parse.hits", kind=kind).inc()
        metrics.counter("ws.cache.parse.bytes_saved",
                        kind=kind).inc(len(text))
        return cached.copy()
    metrics.counter("ws.cache.parse.misses", kind=kind).inc()
    dataset = factory()
    # store a private copy: the caller is free to mutate its dataset
    _parse_cache.put(key, dataset.copy())
    return dataset
