"""ARFF (Attribute-Relation File Format) reader and writer.

ARFF is the lingua franca of the paper's services: the general Classifier Web
Service "has 4 inputs: classifier name, options, *data set in ARFF format* and
attribute name".  This module implements the ARFF dialect the WEKA-era
toolkit used: ``@relation``, ``@attribute`` (numeric/real/integer, nominal
``{a,b,c}``, string, date treated as string), ``@data`` with ``?`` missing
markers, quoted tokens, ``%`` comments, and *sparse* instances
(``{index value, ...}`` rows where omitted cells default to 0 / the first
nominal value, exactly WEKA's semantics).  Per-instance weight trailers are
not supported (WEKA 3.4 did not emit them either).
"""

from __future__ import annotations

import io
from typing import Iterator, TextIO

from repro.data import cache
from repro.data.attribute import Attribute
from repro.data.dataset import Dataset
from repro.errors import ArffParseError


def _split_csv_line(line: str, line_no: int) -> list[str]:
    """Split one @data line on commas, honouring single/double quotes."""
    fields: list[str] = []
    buf: list[str] = []
    quote: str | None = None
    i = 0
    while i < len(line):
        ch = line[i]
        if quote:
            if ch == "\\" and i + 1 < len(line):
                buf.append(line[i + 1])
                i += 2
                continue
            if ch == quote:
                quote = None
            else:
                buf.append(ch)
        elif ch in ("'", '"'):
            quote = ch
        elif ch == ",":
            fields.append("".join(buf).strip())
            buf = []
        else:
            buf.append(ch)
        i += 1
    if quote:
        raise ArffParseError("unterminated quote", line_no)
    fields.append("".join(buf).strip())
    return fields


def _parse_nominal_spec(spec: str, line_no: int) -> list[str]:
    """Parse the ``{v1, v2, ...}`` body of a nominal attribute."""
    inner = spec.strip()
    if not (inner.startswith("{") and inner.endswith("}")):
        raise ArffParseError(f"malformed nominal spec {spec!r}", line_no)
    return [_unquote(v) for v in _split_csv_line(inner[1:-1], line_no)]


def _unquote(token: str) -> str:
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in ("'", '"'):
        return token[1:-1]
    return token


def _attribute_line(rest: str, line_no: int) -> Attribute:
    """Parse the remainder of an ``@attribute`` line."""
    rest = rest.strip()
    if not rest:
        raise ArffParseError("@attribute without a name", line_no)
    # name may be quoted and may contain spaces
    if rest[0] in ("'", '"'):
        quote = rest[0]
        end = rest.find(quote, 1)
        if end < 0:
            raise ArffParseError("unterminated attribute name", line_no)
        name = rest[1:end]
        spec = rest[end + 1:].strip()
    else:
        parts = rest.split(None, 1)
        if len(parts) != 2:
            raise ArffParseError(f"@attribute missing type: {rest!r}",
                                 line_no)
        name, spec = parts[0], parts[1].strip()
    if spec.startswith("{"):
        return Attribute.nominal(name, _parse_nominal_spec(spec, line_no))
    kind = spec.split()[0].lower()
    if kind in ("numeric", "real", "integer"):
        return Attribute.numeric(name)
    if kind == "string":
        return Attribute.string(name)
    if kind == "date":
        # dates are carried as opaque strings; services never compute on them
        return Attribute.string(name)
    raise ArffParseError(f"unknown attribute type {spec!r}", line_no)


def _sparse_default(attr: Attribute) -> float:
    """WEKA sparse semantics: omitted cells are 0 (numeric) or the first
    declared value (nominal/string)."""
    return 0.0


def _parse_sparse_row(line: str, dataset: Dataset, line_no: int):
    from repro.data.instance import Instance
    body = line.strip()
    if not body.endswith("}"):
        raise ArffParseError("unterminated sparse instance", line_no)
    inner = body[1:-1].strip()
    cells = [_sparse_default(attr) for attr in dataset.attributes]
    if inner:
        for pair in _split_csv_line(inner, line_no):
            parts = pair.split(None, 1)
            if len(parts) != 2:
                raise ArffParseError(
                    f"malformed sparse pair {pair!r}", line_no)
            try:
                index = int(parts[0])
            except ValueError:
                raise ArffParseError(
                    f"sparse index {parts[0]!r} is not an integer",
                    line_no) from None
            if not 0 <= index < dataset.num_attributes:
                raise ArffParseError(
                    f"sparse index {index} out of range", line_no)
            attr = dataset.attribute(index)
            try:
                cells[index] = attr.encode(_unquote(parts[1]))
            except Exception as exc:
                raise ArffParseError(str(exc), line_no) from exc
    return Instance(cells)


def loads(text: str, class_attribute: str | None = None) -> Dataset:
    """Parse an ARFF document from a string.

    Parameters
    ----------
    text:
        Full ARFF document.
    class_attribute:
        Optional attribute name to designate as the class.  When omitted, no
        class is set (callers such as ``classifyInstance`` pass the class
        attribute name separately, exactly as the paper's service does).

    Results are memoised by content digest (see
    :func:`repro.data.cache.memo_parse`): parsing the same document
    twice costs one parse plus a dataset copy.
    """
    return cache.memo_parse(
        "arff", text, lambda: load(io.StringIO(text), class_attribute),
        class_attribute=class_attribute)


def load(fp: TextIO, class_attribute: str | None = None) -> Dataset:
    """Parse an ARFF document from a text file object."""
    relation: str | None = None
    attributes: list[Attribute] = []
    dataset: Dataset | None = None
    in_data = False
    for line_no, raw in enumerate(fp, start=1):
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        lowered = line.lower()
        if not in_data:
            if lowered.startswith("@relation"):
                relation = _unquote(line[len("@relation"):].strip()) or "rel"
            elif lowered.startswith("@attribute"):
                attributes.append(
                    _attribute_line(line[len("@attribute"):], line_no))
            elif lowered.startswith("@data"):
                if relation is None:
                    raise ArffParseError("@data before @relation", line_no)
                if not attributes:
                    raise ArffParseError("@data with no attributes", line_no)
                dataset = Dataset(relation, attributes)
                in_data = True
            else:
                raise ArffParseError(f"unexpected header line {line!r}",
                                     line_no)
            continue
        assert dataset is not None
        if line.startswith("{"):
            dataset.add(_parse_sparse_row(line, dataset, line_no))
            continue
        fields = _split_csv_line(line, line_no)
        if len(fields) != dataset.num_attributes:
            raise ArffParseError(
                f"row has {len(fields)} fields, expected "
                f"{dataset.num_attributes}", line_no)
        try:
            dataset.add_row([_unquote(f) for f in fields])
        except Exception as exc:  # re-raise with position info
            raise ArffParseError(str(exc), line_no) from exc
    if dataset is None:
        raise ArffParseError("document has no @data section")
    if class_attribute is not None:
        dataset.set_class(class_attribute)
    return dataset


def _quote_if_needed(token: str) -> str:
    if token == "":
        return "''"
    if any(c in token for c in " ,\t'\"{}%"):
        return "'" + token.replace("'", r"\'") + "'"
    return token


def _format_cell(value: object) -> str:
    if value is None:
        return "?"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return _quote_if_needed(str(value))


def dumps(dataset: Dataset, sparse: bool = False) -> str:
    """Serialise *dataset* to an ARFF document string."""
    out = io.StringIO()
    dump(dataset, out, sparse=sparse)
    return out.getvalue()


def dump(dataset: Dataset, fp: TextIO, sparse: bool = False) -> None:
    """Serialise *dataset* to *fp* as ARFF (dense or sparse @data rows)."""
    fp.write(f"@relation {_quote_if_needed(dataset.relation)}\n\n")
    for attr in dataset.attributes:
        name = _quote_if_needed(attr.name)
        if attr.is_nominal:
            body = ",".join(_quote_if_needed(v) for v in attr.values)
            fp.write(f"@attribute {name} {{{body}}}\n")
        elif attr.is_string:
            fp.write(f"@attribute {name} string\n")
        else:
            fp.write(f"@attribute {name} numeric\n")
    fp.write("\n@data\n")
    for inst in dataset:
        decoded = inst.decoded(dataset)
        if sparse:
            parts = []
            for i, (attr, value) in enumerate(zip(dataset.attributes,
                                                  decoded)):
                if value is None:
                    parts.append(f"{i} ?")  # missing must stay explicit
                elif inst.value(i) != 0.0:
                    parts.append(f"{i} {_format_cell(value)}")
            fp.write("{" + ",".join(parts) + "}\n")
        else:
            fp.write(",".join(_format_cell(v) for v in decoded) + "\n")


def iter_rows(text: str) -> Iterator[list[str]]:
    """Yield raw field lists of the @data section (for streaming readers)."""
    in_data = False
    for line_no, raw in enumerate(io.StringIO(text), start=1):
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        if not in_data:
            if line.lower().startswith("@data"):
                in_data = True
            continue
        yield [_unquote(f) for f in _split_csv_line(line, line_no)]


def header_of(dataset: Dataset) -> str:
    """ARFF header (no rows) — used by streaming services to ship schemas."""
    empty = dataset.copy_header()
    return dumps(empty)
