"""Compact binary wire codec for datasets.

This is the columnar alternative to ARFF text on the wire: a versioned
frame holding the schema as a small JSON header plus one raw
little-endian buffer per column.  It exists for the same reason DAME's
DMPlugin interchange moves typed arrays between mining services — bulk
data dominates composition traffic, and text encoding pays a parse and
a size tax on every hop.

Frame layout (all integers little-endian)::

    offset  size      field
    0       4         magic  b"RCF1"
    4       1         format version (currently 1)
    5       1         flags  (bit 0: per-row weights buffer present)
    6       4         u32    header JSON length H
    10      H         UTF-8 JSON header (compact, sorted keys)
    10+H    ...       column buffers, in attribute order
    ...     8*n_rows  optional f8 weights buffer (iff flags bit 0)

The JSON header is ``{"class_index", "columns", "n_rows", "relation"}``
where each column descriptor carries ``name``, ``kind``, its value table
(nominal/string only), the buffer ``dtype`` and a ``missing`` flag.
Column buffers:

* numeric — ``n_rows`` f8 cells, NaN encodes missing inline;
* nominal/string — ``n_rows`` value-table indices in the smallest
  unsigned dtype that fits the table (u1/u2/u4), followed by a
  ``ceil(n_rows/8)`` LSB-first missing bitmask *only when* the column
  has missing cells (missing cells store index 0).

Encoding is byte-deterministic: equal datasets produce equal frames.
Decoding validates magic, version, flags, header shape, value-table
index ranges and the exact frame length — a truncated or trailing-junk
frame raises :class:`~repro.errors.DataError`, never over-reads.

This module deliberately knows nothing about transports, observability
or resilience — it maps ``bytes`` to :class:`~repro.data.Dataset` and
back (the layering lint enforces that).
"""

from __future__ import annotations

import json
import struct
from typing import Sequence

import numpy as np

from repro.data.attribute import Attribute, NOMINAL, NUMERIC, STRING
from repro.data.dataset import Dataset
from repro.errors import DataError

#: First bytes of every columnar frame ("Repro Columnar Frame v1" family).
MAGIC = b"RCF1"
#: Current frame format version.
VERSION = 1

_FLAG_WEIGHTS = 0x01
_KNOWN_FLAGS = _FLAG_WEIGHTS
_PREAMBLE = struct.Struct("<4sBBI")
#: Hard cap on the JSON header, far above any plausible schema.
_MAX_HEADER = 64 * 1024 * 1024


def is_columnar(doc: bytes | bytearray | memoryview | str) -> bool:
    """True when *doc* starts with the columnar frame magic."""
    if isinstance(doc, str):
        return False
    return bytes(memoryview(doc)[:4]) == MAGIC


def _index_dtype(n_values: int) -> str:
    if n_values <= 0xFF:
        return "u1"
    if n_values <= 0xFFFF:
        return "u2"
    if n_values <= 0xFFFF_FFFF:
        return "u4"
    raise DataError("value table too large for the columnar codec")


def _pack_bitmask(mask: np.ndarray) -> bytes:
    return np.packbits(mask.astype(np.uint8), bitorder="little").tobytes()


def _bitmask_size(n_rows: int) -> int:
    return (n_rows + 7) // 8


def encode(dataset: Dataset) -> bytes:
    """Serialise *dataset* into one columnar frame (deterministic)."""
    matrix = dataset.to_matrix()
    weights = dataset.weights()
    n_rows = int(matrix.shape[0])
    has_weights = bool(n_rows) and bool(np.any(weights != 1.0))

    columns: list[dict[str, object]] = []
    buffers: list[bytes] = []
    for j, attr in enumerate(dataset.attributes):
        col = matrix[:, j]
        missing = np.isnan(col)
        has_missing = bool(missing.any())
        desc: dict[str, object] = {
            "name": attr.name,
            "kind": attr.kind,
            "missing": has_missing,
        }
        if attr.is_numeric:
            desc["dtype"] = "f8"
            buffers.append(np.ascontiguousarray(col, dtype="<f8").tobytes())
        else:
            desc["values"] = list(attr.values)
            dtype = _index_dtype(max(attr.num_values, 1))
            desc["dtype"] = dtype
            idx = np.where(missing, 0.0, col).astype("<" + dtype)
            buffers.append(idx.tobytes())
            if has_missing:
                buffers.append(_pack_bitmask(missing))
        columns.append(desc)

    header = {
        "class_index": dataset._class_index,
        "columns": columns,
        "n_rows": n_rows,
        "relation": dataset.relation,
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":"),
        ensure_ascii=False).encode("utf-8")

    flags = _FLAG_WEIGHTS if has_weights else 0
    parts = [_PREAMBLE.pack(MAGIC, VERSION, flags, len(header_bytes)),
             header_bytes]
    parts.extend(buffers)
    if has_weights:
        parts.append(np.ascontiguousarray(weights, dtype="<f8").tobytes())
    return b"".join(parts)


def _require(condition: bool, why: str) -> None:
    if not condition:
        raise DataError(f"bad columnar frame: {why}")


def _header_int(header: dict, key: str) -> int:
    value = header.get(key)
    _require(isinstance(value, int) and not isinstance(value, bool)
             and value >= 0, f"header {key!r} must be a non-negative int")
    return int(value)


def decode(frame: bytes | bytearray | memoryview | np.ndarray) -> Dataset:
    """Parse one columnar frame back into a :class:`Dataset`.

    Accepts any C-contiguous byte buffer (``bytes``, ``memoryview``,
    ``np.memmap``) and never reads past its end: every length is
    validated before use and the frame must be *exactly* consumed.
    """
    buf = memoryview(frame).cast("B") if not isinstance(frame, memoryview) \
        else frame.cast("B")
    total = buf.nbytes
    _require(total >= _PREAMBLE.size, "truncated preamble")
    magic, version, flags, header_len = _PREAMBLE.unpack_from(buf, 0)
    _require(magic == MAGIC, "wrong magic")
    _require(version == VERSION, f"unsupported version {version}")
    _require(flags & ~_KNOWN_FLAGS == 0, f"unknown flags 0x{flags:02x}")
    _require(header_len <= _MAX_HEADER, "header length implausibly large")
    offset = _PREAMBLE.size
    _require(offset + header_len <= total, "truncated header")
    try:
        header = json.loads(bytes(buf[offset:offset + header_len]))
    except (ValueError, UnicodeDecodeError) as exc:
        raise DataError(f"bad columnar frame: header is not valid JSON "
                        f"({exc})") from None
    offset += header_len
    _require(isinstance(header, dict), "header must be a JSON object")

    n_rows = _header_int(header, "n_rows")
    relation = header.get("relation")
    _require(isinstance(relation, str), "relation must be a string")
    class_index = header.get("class_index")
    _require(class_index is None
             or (isinstance(class_index, int)
                 and not isinstance(class_index, bool)),
             "class_index must be an int or null")
    columns = header.get("columns")
    _require(isinstance(columns, list) and columns,
             "columns must be a non-empty list")

    attributes: list[Attribute] = []
    cells: list[np.ndarray] = []
    for desc in columns:
        _require(isinstance(desc, dict), "column descriptor must be object")
        name = desc.get("name")
        kind = desc.get("kind")
        dtype = desc.get("dtype")
        has_missing = desc.get("missing")
        _require(isinstance(name, str), "column name must be a string")
        _require(kind in (NUMERIC, NOMINAL, STRING),
                 f"unknown column kind {kind!r}")
        _require(isinstance(has_missing, bool),
                 "column 'missing' must be a bool")
        if kind == NUMERIC:
            _require(dtype == "f8", f"numeric column dtype {dtype!r}")
            size = 8 * n_rows
            _require(offset + size <= total,
                     f"truncated buffer for column {name!r}")
            # map, don't copy: on little-endian hosts asarray is a
            # no-op view straight into the source buffer — which for a
            # shm-resolved frame is the shared segment itself (the
            # downstream column_stack materialises the working copy)
            col = np.asarray(np.frombuffer(buf[offset:offset + size],
                                           dtype="<f8"), dtype=float)
            offset += size
            try:
                attributes.append(Attribute(name, NUMERIC))
            except DataError as exc:
                raise DataError(f"bad columnar frame: {exc}") from None
        else:
            values = desc.get("values")
            _require(isinstance(values, list)
                     and all(isinstance(v, str) for v in values),
                     f"column {name!r} needs a string value table")
            _require(dtype in ("u1", "u2", "u4"),
                     f"symbolic column dtype {dtype!r}")
            itemsize = {"u1": 1, "u2": 2, "u4": 4}[dtype]
            size = itemsize * n_rows
            _require(offset + size <= total,
                     f"truncated buffer for column {name!r}")
            idx = np.frombuffer(buf[offset:offset + size],
                                dtype="<" + dtype).astype(float)
            offset += size
            if has_missing:
                msize = _bitmask_size(n_rows)
                _require(offset + msize <= total,
                         f"truncated missing mask for column {name!r}")
                bits = np.unpackbits(
                    np.frombuffer(buf[offset:offset + msize],
                                  dtype=np.uint8),
                    bitorder="little")[:n_rows].astype(bool)
                offset += msize
                idx[bits] = np.nan
            present = idx[~np.isnan(idx)]
            _require(not present.size
                     or present.max() < max(len(values), 1),
                     f"column {name!r} has out-of-table indices")
            _require(len(values) > 0 or not present.size,
                     f"column {name!r} has cells but an empty value table")
            try:
                attributes.append(Attribute(name, kind, list(values)))
            except DataError as exc:
                raise DataError(f"bad columnar frame: {exc}") from None
            col = idx
        cells.append(col)

    weights = None
    if flags & _FLAG_WEIGHTS:
        size = 8 * n_rows
        _require(offset + size <= total, "truncated weights buffer")
        weights = np.frombuffer(buf[offset:offset + size],
                                dtype="<f8").astype(float)
        _require(bool(np.all(np.isfinite(weights) & (weights >= 0))),
                 "weights must be finite and non-negative")
        offset += size
    _require(offset == total,
             f"{total - offset} trailing bytes after frame")

    try:
        out = Dataset(relation, attributes)
    except DataError as exc:
        raise DataError(f"bad columnar frame: {exc}") from None
    if class_index is not None:
        _require(-len(attributes) <= class_index < len(attributes),
                 f"class_index {class_index} out of range")
        out.class_index = class_index
    if n_rows:
        out._bulk_extend(np.column_stack(cells), weights)
    return out


def dump_binary(dataset: Dataset, path: str) -> None:
    """Write *dataset* to *path* as one columnar frame."""
    with open(path, "wb") as fh:
        fh.write(encode(dataset))


def load_binary(path: str) -> Dataset:
    """Load a columnar frame from disk through a read-only memory map —
    pages stream in lazily as columns are decoded, so peak memory stays
    near one dataset rather than file + dataset."""
    try:
        mapped = np.memmap(path, dtype=np.uint8, mode="r")
    except (OSError, ValueError) as exc:
        raise DataError(f"cannot map {path!r}: {exc}") from None
    try:
        return decode(mapped)
    finally:
        del mapped


def wire_size(dataset: Dataset) -> int:
    """Size in bytes of *dataset*'s columnar frame (via the version-keyed
    frame cache, so repeated asks don't re-encode)."""
    return len(dataset.to_frame())


__all__ = ["MAGIC", "VERSION", "encode", "decode", "is_columnar",
           "dump_binary", "load_binary", "wire_size"]
