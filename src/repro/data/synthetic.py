"""Synthetic dataset generators.

The paper's case study uses the UCI breast-cancer dataset, which cannot be
redistributed here (and the evaluation network is offline), so
:func:`breast_cancer` generates a *statistically equivalent* dataset: it
matches every number reported in the paper's Figure 3 — 286 instances, a
201/85 class split, ten nominal attributes with the reported distinct-value
counts, and exactly 9 missing cells (8 on ``node-caps``, 1 on
``breast-quad``) — and plants the class structure so that a C4.5 learner
selects ``node-caps`` at the root of the tree, as in the paper's Figure 4.

Other generators provide the workloads the remaining services need: WEKA's
classic *weather* relation, Gaussian blobs for clustering, market baskets for
association rules, numeric two-class problems for numeric classifiers, and
grid-sampled surfaces for the ``plot3D`` Mathematica-substitute service.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.data.attribute import Attribute
from repro.data.dataset import Dataset

# --------------------------------------------------------------------------
# Breast cancer (Figure 3 / Figure 4)
# --------------------------------------------------------------------------

_AGE = ("20-29", "30-39", "40-49", "50-59", "60-69", "70-79")
_MENOPAUSE = ("lt40", "ge40", "premeno")
_TUMOR_SIZE = ("0-4", "5-9", "10-14", "15-19", "20-24", "25-29",
               "30-34", "35-39", "40-44", "45-49", "50-54")
_INV_NODES = ("0-2", "3-5", "6-8", "9-11", "12-14", "15-17", "24-26")
_NODE_CAPS = ("yes", "no")
_DEG_MALIG = ("1", "2", "3")
_BREAST = ("left", "right")
_BREAST_QUAD = ("left_up", "left_low", "right_up", "right_low", "central")
_IRRADIAT = ("yes", "no")
_CLASS = ("no-recurrence-events", "recurrence-events")


def breast_cancer_attributes() -> list[Attribute]:
    """The ten-attribute schema of the paper's case-study dataset."""
    return [
        Attribute.nominal("age", _AGE),
        Attribute.nominal("menopause", _MENOPAUSE),
        Attribute.nominal("tumor-size", _TUMOR_SIZE),
        Attribute.nominal("inv-nodes", _INV_NODES),
        Attribute.nominal("node-caps", _NODE_CAPS),
        Attribute.nominal("deg-malig", _DEG_MALIG),
        Attribute.nominal("breast", _BREAST),
        Attribute.nominal("breast-quad", _BREAST_QUAD),
        Attribute.nominal("irradiat", _IRRADIAT),
        Attribute.nominal("Class", _CLASS),
    ]


def _exact_counts(rng: np.random.Generator,
                  pairs: Sequence[tuple[object, int]]) -> list[object]:
    """Expand ``(value, count)`` pairs into a shuffled list of values."""
    out: list[object] = []
    for value, count in pairs:
        out.extend([value] * count)
    rng.shuffle(out)  # type: ignore[arg-type]
    return out


def _conditional(rng: np.random.Generator, values: Sequence[str],
                 probs: Sequence[float], size: int) -> list[str]:
    p = np.asarray(probs, dtype=float)
    p = p / p.sum()
    idx = rng.choice(len(values), size=size, p=p)
    return [values[i] for i in idx]


def _ensure_all_present(rng: np.random.Generator, column: list[object],
                        values: Sequence[str]) -> None:
    """Force every declared value to appear at least once (distinct counts)."""
    present = {v for v in column if v is not None}
    missing_values = [v for v in values if v not in present]
    if not missing_values:
        return
    candidates = [i for i, v in enumerate(column) if v is not None]
    slots = rng.choice(candidates, size=len(missing_values), replace=False)
    for slot, value in zip(slots, missing_values):
        column[int(slot)] = value


def breast_cancer(seed: int = 0) -> Dataset:
    """Deterministic synthetic stand-in for the UCI breast-cancer dataset.

    Exact properties (asserted by the test suite and the FIG-3 bench):

    * 286 instances, 10 nominal attributes;
    * class split 201 ``no-recurrence-events`` / 85 ``recurrence-events``;
    * exactly 9 missing cells (0.3%): 8 on ``node-caps``, 1 on
      ``breast-quad``;
    * distinct value counts 6/3/11/7/2/3/2/5/2/2 matching Figure 3;
    * ``node-caps`` is the strongest single predictor, so a C4.5 learner
      places it at the tree root (Figure 4).
    """
    rng = np.random.default_rng(seed)
    n = 286

    # class column: exactly 201 / 85, recurrence indices known up front so
    # every other column can be drawn conditionally on the class.
    labels = ([_CLASS[0]] * 201) + ([_CLASS[1]] * 85)
    rng.shuffle(labels)
    is_rec = [lab == _CLASS[1] for lab in labels]
    rec_idx = [i for i in range(n) if is_rec[i]]
    non_idx = [i for i in range(n) if not is_rec[i]]

    # node-caps: the planted root split.  Counts per class are exact:
    #   recurrence:      45 yes / 38 no / 2 missing   (85)
    #   no-recurrence:   11 yes / 184 no / 6 missing  (201)
    # totals: 56 yes, 222 no, 8 missing; P(rec|yes)=0.80, P(rec|no)=0.17,
    # which makes node-caps the dominant gain-ratio split (Figure 4 root).
    node_caps: list[object] = [None] * n
    rec_vals = _exact_counts(rng, [("yes", 45), ("no", 38), (None, 2)])
    non_vals = _exact_counts(rng, [("yes", 11), ("no", 184), (None, 6)])
    for i, v in zip(rec_idx, rec_vals):
        node_caps[i] = v
    for i, v in zip(non_idx, non_vals):
        node_caps[i] = v

    # deg-malig: second-strongest predictor (recurrence skews to grade 3).
    deg_malig: list[object] = [None] * n
    rec_vals = _exact_counts(rng, [("1", 5), ("2", 30), ("3", 50)])
    non_vals = _exact_counts(rng, [("1", 66), ("2", 105), ("3", 30)])
    for i, v in zip(rec_idx, rec_vals):
        deg_malig[i] = v
    for i, v in zip(non_idx, non_vals):
        deg_malig[i] = v

    # inv-nodes: correlated with node-caps (capsular invasion implies nodes).
    inv_nodes: list[object] = [None] * n
    for i in range(n):
        if node_caps[i] == "yes":
            probs = (0.25, 0.30, 0.20, 0.10, 0.07, 0.05, 0.03)
        else:
            probs = (0.80, 0.10, 0.04, 0.02, 0.02, 0.01, 0.01)
        inv_nodes[i] = _conditional(rng, _INV_NODES, probs, 1)[0]
    _ensure_all_present(rng, inv_nodes, _INV_NODES)

    # weakly informative / noise attributes with realistic marginals.
    age = list(_conditional(rng, _AGE,
                            (0.02, 0.13, 0.31, 0.34, 0.19, 0.01), n))
    _ensure_all_present(rng, age, _AGE)
    menopause = [
        _conditional(rng, _MENOPAUSE, (0.02, 0.45, 0.53), 1)[0]
        if a in ("50-59", "60-69", "70-79")
        else _conditional(rng, _MENOPAUSE, (0.03, 0.07, 0.90), 1)[0]
        for a in age
    ]
    _ensure_all_present(rng, menopause, _MENOPAUSE)
    tumor_probs_rec = (0.02, 0.03, 0.06, 0.09, 0.17, 0.18,
                       0.20, 0.09, 0.08, 0.04, 0.04)
    tumor_probs_non = (0.04, 0.11, 0.11, 0.12, 0.19, 0.15,
                       0.14, 0.06, 0.05, 0.02, 0.01)
    tumor_size = [
        _conditional(rng, _TUMOR_SIZE,
                     tumor_probs_rec if is_rec[i] else tumor_probs_non, 1)[0]
        for i in range(n)
    ]
    _ensure_all_present(rng, tumor_size, _TUMOR_SIZE)
    breast = _conditional(rng, _BREAST, (0.53, 0.47), n)
    breast_quad: list[object] = list(_conditional(
        rng, _BREAST_QUAD, (0.34, 0.38, 0.12, 0.08, 0.08), n))
    _ensure_all_present(rng, breast_quad, _BREAST_QUAD)
    # exactly one missing breast-quad cell (Figure 3 row 8).
    breast_quad[int(rng.integers(n))] = None
    irradiat = [
        _conditional(rng, _IRRADIAT, (0.40, 0.60), 1)[0] if is_rec[i]
        else _conditional(rng, _IRRADIAT, (0.22, 0.78), 1)[0]
        for i in range(n)
    ]

    ds = Dataset("breast-cancer", breast_cancer_attributes())
    for i in range(n):
        ds.add_row([age[i], menopause[i], tumor_size[i], inv_nodes[i],
                    node_caps[i], deg_malig[i], breast[i], breast_quad[i],
                    irradiat[i], labels[i]])
    ds.set_class("Class")
    return ds


# --------------------------------------------------------------------------
# Weather (WEKA's canonical toy relation)
# --------------------------------------------------------------------------

def weather_nominal() -> Dataset:
    """WEKA's 14-instance all-nominal *weather* relation."""
    ds = Dataset("weather.symbolic", [
        Attribute.nominal("outlook", ("sunny", "overcast", "rainy")),
        Attribute.nominal("temperature", ("hot", "mild", "cool")),
        Attribute.nominal("humidity", ("high", "normal")),
        Attribute.nominal("windy", ("TRUE", "FALSE")),
        Attribute.nominal("play", ("yes", "no")),
    ])
    rows = [
        ("sunny", "hot", "high", "FALSE", "no"),
        ("sunny", "hot", "high", "TRUE", "no"),
        ("overcast", "hot", "high", "FALSE", "yes"),
        ("rainy", "mild", "high", "FALSE", "yes"),
        ("rainy", "cool", "normal", "FALSE", "yes"),
        ("rainy", "cool", "normal", "TRUE", "no"),
        ("overcast", "cool", "normal", "TRUE", "yes"),
        ("sunny", "mild", "high", "FALSE", "no"),
        ("sunny", "cool", "normal", "FALSE", "yes"),
        ("rainy", "mild", "normal", "FALSE", "yes"),
        ("sunny", "mild", "normal", "TRUE", "yes"),
        ("overcast", "mild", "high", "TRUE", "yes"),
        ("overcast", "hot", "normal", "FALSE", "yes"),
        ("rainy", "mild", "high", "TRUE", "no"),
    ]
    for row in rows:
        ds.add_row(row)
    ds.set_class("play")
    return ds


def weather_numeric() -> Dataset:
    """WEKA's *weather* relation with numeric temperature/humidity."""
    ds = Dataset("weather.numeric", [
        Attribute.nominal("outlook", ("sunny", "overcast", "rainy")),
        Attribute.numeric("temperature"),
        Attribute.numeric("humidity"),
        Attribute.nominal("windy", ("TRUE", "FALSE")),
        Attribute.nominal("play", ("yes", "no")),
    ])
    rows = [
        ("sunny", 85, 85, "FALSE", "no"),
        ("sunny", 80, 90, "TRUE", "no"),
        ("overcast", 83, 86, "FALSE", "yes"),
        ("rainy", 70, 96, "FALSE", "yes"),
        ("rainy", 68, 80, "FALSE", "yes"),
        ("rainy", 65, 70, "TRUE", "no"),
        ("overcast", 64, 65, "TRUE", "yes"),
        ("sunny", 72, 95, "FALSE", "no"),
        ("sunny", 69, 70, "FALSE", "yes"),
        ("rainy", 75, 80, "FALSE", "yes"),
        ("sunny", 75, 70, "TRUE", "yes"),
        ("overcast", 72, 90, "TRUE", "yes"),
        ("overcast", 81, 75, "FALSE", "yes"),
        ("rainy", 71, 91, "TRUE", "no"),
    ]
    for row in rows:
        ds.add_row(row)
    ds.set_class("play")
    return ds


# --------------------------------------------------------------------------
# Numeric workloads
# --------------------------------------------------------------------------

def gaussians(n_clusters: int = 3, n_per_cluster: int = 50,
              n_features: int = 2, spread: float = 0.6,
              seed: int = 0, labelled: bool = False) -> Dataset:
    """Gaussian blobs for clustering (optionally with a true-cluster class).

    Cluster centres are deterministic and well separated for any dimension:
    centre *k* sits at distance 6 along axis ``k % n_features``, with the
    sign alternating on each wrap, so no two centres are closer than 6.
    """
    rng = np.random.default_rng(seed)
    centres = np.zeros((n_clusters, n_features))
    for k in range(n_clusters):
        axis = k % n_features
        sign = 1.0 if (k // n_features) % 2 == 0 else -1.0
        centres[k, axis] = sign * 6.0 * (1 + k // (2 * n_features))
    attrs = [Attribute.numeric(f"x{j}") for j in range(n_features)]
    if labelled:
        attrs.append(Attribute.nominal(
            "cluster", tuple(f"c{k}" for k in range(n_clusters))))
    ds = Dataset("gaussians", attrs)
    for k in range(n_clusters):
        points = centres[k] + rng.normal(0.0, spread,
                                         size=(n_per_cluster, n_features))
        for p in points:
            row: list[object] = [float(v) for v in p]
            if labelled:
                row.append(f"c{k}")
            ds.add_row(row)
    if labelled:
        ds.set_class("cluster")
    return ds.shuffled(rng)


def numeric_two_class(n: int = 200, n_features: int = 4,
                      separation: float = 2.0, seed: int = 0) -> Dataset:
    """Two Gaussian classes in *n_features* dimensions (for numeric learners)."""
    rng = np.random.default_rng(seed)
    half = n // 2
    attrs = [Attribute.numeric(f"f{j}") for j in range(n_features)]
    attrs.append(Attribute.nominal("class", ("neg", "pos")))
    ds = Dataset("numeric-two-class", attrs)
    shift = separation / math.sqrt(n_features)
    for label, offset, count in (("neg", -shift, half),
                                 ("pos", +shift, n - half)):
        pts = rng.normal(offset, 1.0, size=(count, n_features))
        for p in pts:
            ds.add_row([*(float(v) for v in p), label])
    ds.set_class("class")
    return ds.shuffled(rng)


def xor_problem(n: int = 200, noise: float = 0.15, seed: int = 0) -> Dataset:
    """Noisy 2-D XOR — linearly inseparable, exercises MLP hidden layers."""
    rng = np.random.default_rng(seed)
    attrs = [Attribute.numeric("x"), Attribute.numeric("y"),
             Attribute.nominal("class", ("a", "b"))]
    ds = Dataset("xor", attrs)
    for _ in range(n):
        qx, qy = rng.integers(0, 2), rng.integers(0, 2)
        x = qx + rng.normal(0, noise)
        y = qy + rng.normal(0, noise)
        ds.add_row([float(x), float(y), "a" if qx == qy else "b"])
    ds.set_class("class")
    return ds


# --------------------------------------------------------------------------
# Classic UCI-style relations (the repository family the paper draws on)
# --------------------------------------------------------------------------

_LED_SEGMENTS = {
    # segment pattern (top, top-left, top-right, middle, bottom-left,
    # bottom-right, bottom) per displayed digit
    0: (1, 1, 1, 0, 1, 1, 1), 1: (0, 0, 1, 0, 0, 1, 0),
    2: (1, 0, 1, 1, 1, 0, 1), 3: (1, 0, 1, 1, 0, 1, 1),
    4: (0, 1, 1, 1, 0, 1, 0), 5: (1, 1, 0, 1, 0, 1, 1),
    6: (1, 1, 0, 1, 1, 1, 1), 7: (1, 0, 1, 0, 0, 1, 0),
    8: (1, 1, 1, 1, 1, 1, 1), 9: (1, 1, 1, 1, 0, 1, 1),
}


def led7(n: int = 500, noise: float = 0.1, seed: int = 0) -> Dataset:
    """The classic LED-display domain: 7 binary segments, 10 digit
    classes, each segment flipped with probability *noise* (the UCI
    generator's standard 10%)."""
    rng = np.random.default_rng(seed)
    attrs = [Attribute.nominal(f"segment{i}", ("off", "on"))
             for i in range(7)]
    attrs.append(Attribute.nominal("digit",
                                   tuple(str(d) for d in range(10))))
    ds = Dataset("led7", attrs)
    for _ in range(n):
        digit = int(rng.integers(0, 10))
        segments = list(_LED_SEGMENTS[digit])
        for i in range(7):
            if rng.random() < noise:
                segments[i] = 1 - segments[i]
        ds.add_row([("on" if s else "off") for s in segments]
                   + [str(digit)])
    ds.set_class("digit")
    return ds


def monks1(n: int = 300, seed: int = 0) -> Dataset:
    """The MONK's-1 problem: class is 1 iff (a1 = a2) or (a5 = 1).

    A rule-structured relation that separates rule/tree learners from
    purely statistical ones — the classic toolkit-era comparison domain.
    """
    rng = np.random.default_rng(seed)
    domains = {"a1": 3, "a2": 3, "a3": 2, "a4": 3, "a5": 4, "a6": 2}
    attrs = [Attribute.nominal(name, tuple(str(v + 1)
                                           for v in range(size)))
             for name, size in domains.items()]
    attrs.append(Attribute.nominal("class", ("0", "1")))
    ds = Dataset("monks1", attrs)
    for _ in range(n):
        row = {name: int(rng.integers(0, size))
               for name, size in domains.items()}
        label = "1" if (row["a1"] == row["a2"] or row["a5"] == 0) else "0"
        ds.add_row([str(row[name] + 1) for name in domains] + [label])
    ds.set_class("class")
    return ds


# --------------------------------------------------------------------------
# Market baskets (association rules)
# --------------------------------------------------------------------------

_BASKET_ITEMS = ("bread", "milk", "butter", "cheese", "beer", "nappies",
                 "apples", "coffee", "tea", "sugar")


def baskets(n: int = 300, seed: int = 0) -> Dataset:
    """Market-basket transactions as binary nominal attributes.

    Planted associations: ``bread → butter`` and ``beer → nappies`` (a nod to
    the folklore), plus ``coffee → sugar`` with lower confidence.
    """
    rng = np.random.default_rng(seed)
    attrs = [Attribute.nominal(item, ("f", "t")) for item in _BASKET_ITEMS]
    ds = Dataset("baskets", attrs)
    base = {"bread": 0.55, "milk": 0.50, "butter": 0.15, "cheese": 0.25,
            "beer": 0.30, "nappies": 0.10, "apples": 0.35, "coffee": 0.40,
            "tea": 0.25, "sugar": 0.20}
    for _ in range(n):
        row = {item: rng.random() < p for item, p in base.items()}
        if row["bread"] and rng.random() < 0.80:
            row["butter"] = True
        if row["beer"] and rng.random() < 0.75:
            row["nappies"] = True
        if row["coffee"] and rng.random() < 0.60:
            row["sugar"] = True
        ds.add_row(["t" if row[item] else "f" for item in _BASKET_ITEMS])
    return ds


# --------------------------------------------------------------------------
# Surfaces (plot3D service workload)
# --------------------------------------------------------------------------

def surface3d(fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
              | None = None,
              n: int = 25, lo: float = -3.0, hi: float = 3.0) -> Dataset:
    """Grid-sample ``z = f(x, y)`` into a 3-column numeric dataset.

    The default surface is the classic ``sinc`` sombrero the Mathematica
    ``Plot3D`` documentation uses.
    """
    if fn is None:
        def fn(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            r = np.sqrt(x * x + y * y)
            return np.where(r < 1e-12, 1.0, np.sin(r) / np.maximum(r, 1e-12))
    xs = np.linspace(lo, hi, n)
    ys = np.linspace(lo, hi, n)
    gx, gy = np.meshgrid(xs, ys)
    gz = fn(gx, gy)
    ds = Dataset("surface3d", [Attribute.numeric("x"),
                               Attribute.numeric("y"),
                               Attribute.numeric("z")])
    for x, y, z in zip(gx.ravel(), gy.ravel(), gz.ravel()):
        ds.add_row([float(x), float(y), float(z)])
    return ds
