"""A single data row.

An :class:`Instance` is a dense float vector (one cell per attribute, with
``NaN`` encoding a missing value) plus a weight, matching the WEKA instance
model the paper's Web Services exchange in ARFF form.

Since the columnar refactor an instance lives in one of two modes:

* **detached** — it owns its own cell array (freshly constructed rows,
  copies, rows removed from a dataset);
* **attached** — it is a *view* into the row of a
  :class:`~repro.data.columns.ColumnStore` it was added to.  Cell reads
  and writes go straight through to the store block, so the dataset's
  ``to_matrix()`` view and the instance can never disagree.

Attachment is managed by :class:`~repro.data.Dataset`; the mode is
invisible to callers — the public API is identical in both.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence, TYPE_CHECKING

import numpy as np

from repro.data.attribute import is_missing
from repro.errors import DataError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.columns import ColumnStore
    from repro.data.dataset import Dataset


class Instance:
    """A weighted, dense row of encoded cells.

    Instances are *schema-free*: the interpretation of each cell (numeric
    value vs nominal index) lives in the owning :class:`~repro.data.Dataset`'s
    attribute list.  This mirrors WEKA, where ``Instance`` holds doubles and
    ``Instances`` holds the header.
    """

    __slots__ = ("_own_values", "_weight", "_store", "_row")

    def __init__(self, values: Sequence[float] | np.ndarray,
                 weight: float = 1.0):
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1:
            raise DataError(f"instance values must be 1-D, got {arr.ndim}-D")
        self._own_values = arr
        if weight < 0:
            raise DataError(f"instance weight must be >= 0, got {weight}")
        self._weight = float(weight)
        self._store: "ColumnStore | None" = None
        self._row = -1

    # -- store attachment (Dataset-internal) --------------------------------
    @classmethod
    def _attached(cls, store: "ColumnStore", row: int) -> "Instance":
        """Materialise an instance that is *born* attached — used by
        ``Dataset`` for rows that were bulk-loaded straight into the
        store and never had a Python-object form."""
        inst = object.__new__(cls)
        inst._own_values = None  # type: ignore[assignment]
        inst._weight = 1.0
        inst._store = store
        inst._row = row
        return inst

    def _attach(self, store: "ColumnStore", row: int) -> None:
        """Become a view of *store* row *row* (called by ``Dataset.add``)."""
        self._store = store
        self._row = row
        self._own_values = None  # type: ignore[assignment]

    def _detach(self) -> None:
        """Take ownership of a private copy of the cells (row removal)."""
        if self._store is not None:
            self._own_values = self._store.row(self._row).copy()
            self._weight = float(self._store.weights[self._row])
            self._store = None
            self._row = -1

    @property
    def is_attached(self) -> bool:
        """True when this row is backed by a dataset's column store."""
        return self._store is not None

    # -- cell access --------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The raw encoded cell vector (a live store view when attached;
        shared either way — use :meth:`set_value` to mutate)."""
        if self._store is not None:
            return self._store.row(self._row)
        return self._own_values

    def value(self, index: int) -> float:
        """Raw encoded cell at *index* (NaN when missing)."""
        return float(self.values[index])

    def set_value(self, index: int, value: float) -> None:
        """Set the encoded cell at *index* (writes through to the owning
        store when attached, so matrix views stay coherent)."""
        if self._store is not None:
            self._store.set_cell(self._row, int(index), float(value))
        else:
            self._own_values[index] = value

    @property
    def weight(self) -> float:
        """This row's instance weight."""
        if self._store is not None:
            return float(self._store.weights[self._row])
        return self._weight

    @weight.setter
    def weight(self, value: float) -> None:
        if value < 0:
            raise DataError(f"instance weight must be >= 0, got {value}")
        if self._store is not None:
            self._store.set_weight(self._row, float(value))
        else:
            self._weight = float(value)

    def is_missing(self, index: int) -> bool:
        """True when the cell at *index* is missing."""
        return bool(math.isnan(self.values[index]))

    def num_missing(self) -> int:
        """Number of missing cells in this row."""
        return int(np.isnan(self.values).sum())

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterator[float]:
        return iter(float(v) for v in self.values)

    def copy(self) -> "Instance":
        """Deep copy (always detached)."""
        return Instance(self.values.copy(), self.weight)

    # -- schema-aware helpers ------------------------------------------------
    def decoded(self, dataset: "Dataset") -> list[object]:
        """Decode all cells against *dataset*'s attributes."""
        if len(dataset.attributes) != len(self):
            raise DataError("instance arity does not match dataset schema")
        return [attr.decode(cell)
                for attr, cell in zip(dataset.attributes, self.values)]

    def class_value(self, dataset: "Dataset") -> float:
        """Raw encoded class cell per *dataset*'s class index."""
        return self.value(dataset.class_index)

    def class_is_missing(self, dataset: "Dataset") -> bool:
        """True when the class cell is missing per *dataset*."""
        return self.is_missing(dataset.class_index)

    # -- dunder ---------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        if self.weight != other.weight:
            return False
        a, b = self.values, other.values
        if a.shape != b.shape:
            return False
        both_nan = np.isnan(a) & np.isnan(b)
        return bool(np.all(both_nan | (a == b)))

    def __repr__(self) -> str:
        cells = ",".join("?" if is_missing(v) else f"{v:g}"
                         for v in self.values)
        w = "" if self.weight == 1.0 else f", weight={self.weight:g}"
        return f"Instance([{cells}]{w})"
