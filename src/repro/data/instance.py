"""A single data row.

An :class:`Instance` owns a dense float vector (one cell per attribute, with
``NaN`` encoding a missing value) plus a weight, matching the WEKA instance
model the paper's Web Services exchange in ARFF form.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence, TYPE_CHECKING

import numpy as np

from repro.data.attribute import is_missing
from repro.errors import DataError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.dataset import Dataset


class Instance:
    """A weighted, dense row of encoded cells.

    Instances are *schema-free*: the interpretation of each cell (numeric
    value vs nominal index) lives in the owning :class:`~repro.data.Dataset`'s
    attribute list.  This mirrors WEKA, where ``Instance`` holds doubles and
    ``Instances`` holds the header.
    """

    __slots__ = ("_values", "weight")

    def __init__(self, values: Sequence[float] | np.ndarray,
                 weight: float = 1.0):
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1:
            raise DataError(f"instance values must be 1-D, got {arr.ndim}-D")
        self._values = arr
        if weight < 0:
            raise DataError(f"instance weight must be >= 0, got {weight}")
        self.weight = float(weight)

    # -- cell access --------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The raw encoded cell vector (shared, do not mutate in place)."""
        return self._values

    def value(self, index: int) -> float:
        """Raw encoded cell at *index* (NaN when missing)."""
        return float(self._values[index])

    def set_value(self, index: int, value: float) -> None:
        """Set the encoded cell at *index*."""
        self._values[index] = value

    def is_missing(self, index: int) -> bool:
        """True when the cell at *index* is missing."""
        return bool(math.isnan(self._values[index]))

    def num_missing(self) -> int:
        """Number of missing cells in this row."""
        return int(np.isnan(self._values).sum())

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def __iter__(self) -> Iterator[float]:
        return iter(float(v) for v in self._values)

    def copy(self) -> "Instance":
        """Deep copy."""
        return Instance(self._values.copy(), self.weight)

    # -- schema-aware helpers ------------------------------------------------
    def decoded(self, dataset: "Dataset") -> list[object]:
        """Decode all cells against *dataset*'s attributes."""
        if len(dataset.attributes) != len(self):
            raise DataError("instance arity does not match dataset schema")
        return [attr.decode(cell)
                for attr, cell in zip(dataset.attributes, self._values)]

    def class_value(self, dataset: "Dataset") -> float:
        """Raw encoded class cell per *dataset*'s class index."""
        return self.value(dataset.class_index)

    def class_is_missing(self, dataset: "Dataset") -> bool:
        """True when the class cell is missing per *dataset*."""
        return self.is_missing(dataset.class_index)

    # -- dunder ---------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        if self.weight != other.weight:
            return False
        a, b = self._values, other._values
        if a.shape != b.shape:
            return False
        both_nan = np.isnan(a) & np.isnan(b)
        return bool(np.all(both_nan | (a == b)))

    def __repr__(self) -> str:
        cells = ",".join("?" if is_missing(v) else f"{v:g}"
                         for v in self._values)
        w = "" if self.weight == 1.0 else f", weight={self.weight:g}"
        return f"Instance([{cells}]{w})"
