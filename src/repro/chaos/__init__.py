"""Chaos harness: deterministic fault injection across the SOAP stack.

The paper's §3 fault-tolerance requirement ("retry, migrate to alternate
endpoints, monitor jobs on remote resources") needs an adversary to prove
itself against.  This package is that adversary — *seeded*, so every
drill is a regression test:

* :mod:`repro.chaos.plan` — the ``drop=0.3,delay=50ms``-style spec
  grammar, scoping fault plans to endpoints/tasks by glob.
* :mod:`repro.chaos.controller` — per-target deterministic decisions
  (drop, delay±jitter, corrupt-envelope, error-N-times-then-succeed,
  blackhole) with an injection log for reproducible summaries.
* :mod:`repro.chaos.transport` — :class:`ChaosTransport`, installable
  around any :class:`~repro.ws.transport.Transport`.

A process-wide controller can be installed (``repro run --chaos <spec>``
or ``FAEHIM_CHAOS=<spec>``); the workflow engine perturbs every task
attempt through it, turning any workflow into a chaos drill.
"""

from __future__ import annotations

import os

from repro.clock import SYSTEM_CLOCK, Clock
from repro.chaos.controller import ChaosController
from repro.chaos.plan import (DEFAULT_BLACKHOLE_S, ChaosPlan,
                              ChaosSpecError, FaultRule, parse_chaos_spec,
                              parse_duration)
from repro.chaos.transport import ChaosInterceptor, ChaosTransport

#: Environment hooks: a spec in FAEHIM_CHAOS arms the harness globally.
CHAOS_ENV_VAR = "FAEHIM_CHAOS"
CHAOS_SEED_ENV_VAR = "FAEHIM_CHAOS_SEED"

_active: ChaosController | None = None


def install(plan: ChaosController | ChaosPlan | str, seed: int = 0,
            clock: Clock = SYSTEM_CLOCK) -> ChaosController:
    """Arm the process-wide chaos controller and return it."""
    global _active
    _active = plan if isinstance(plan, ChaosController) else \
        ChaosController(plan, seed=seed, clock=clock)
    return _active


def active() -> ChaosController | None:
    """The armed controller, or ``None`` when chaos is off."""
    return _active


def uninstall() -> None:
    """Disarm the process-wide controller (tests call this)."""
    global _active
    _active = None


def maybe_install_from_env() -> ChaosController | None:
    """Arm from ``FAEHIM_CHAOS``/``FAEHIM_CHAOS_SEED`` if set and not
    already armed; returns the active controller either way."""
    if _active is None:
        spec = os.environ.get(CHAOS_ENV_VAR, "").strip()
        if spec:
            install(spec,
                    seed=int(os.environ.get(CHAOS_SEED_ENV_VAR, "0")))
    return _active


__all__ = [
    "ChaosController", "ChaosPlan", "ChaosSpecError", "ChaosTransport",
    "ChaosInterceptor",
    "FaultRule", "parse_chaos_spec", "parse_duration",
    "DEFAULT_BLACKHOLE_S", "CHAOS_ENV_VAR", "CHAOS_SEED_ENV_VAR",
    "install", "active", "uninstall", "maybe_install_from_env",
]
