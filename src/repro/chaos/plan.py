"""The chaos spec grammar: which faults hit which targets.

A *spec* is a compact string (CLI flag ``repro run --chaos <spec>`` or the
``FAEHIM_CHAOS`` environment variable) describing per-target fault plans::

    spec        := scoped-plan (";" scoped-plan)*
    scoped-plan := [pattern ":"] fault ("," fault)*
    fault       := "drop=" PROB            probability of dropping a send
                 | "delay=" DUR ["~" DUR]  fixed latency (+ uniform jitter)
                 | "corrupt=" PROB         probability of mangling the
                                           response envelope
                 | "error=" N              fail the first N attempts, then
                                           succeed
                 | "blackhole" ["=" DUR]   never answer: consume DUR (or
                                           the remaining deadline, if
                                           tighter) then time out
    pattern     := fnmatch glob against the target id (default "*")
    DUR         := float with optional "ms"/"s" unit (default seconds)

Targets are endpoint URLs for transports (e.g.
``http://127.0.0.1:8334/services/J48``) and ``task:<name>`` for workflow
tasks.  The **first** matching scoped plan wins, so write specific
patterns before a catch-all: ``task:train:error=2;*:delay=20ms``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.errors import ReproError


class ChaosSpecError(ReproError):
    """A chaos spec string could not be parsed."""


#: Default timeout charged by ``blackhole`` when no duration is given.
DEFAULT_BLACKHOLE_S = 30.0

_DURATION = re.compile(r"^([0-9]*\.?[0-9]+)(ms|s)?$")


def parse_duration(text: str) -> float:
    """``"50ms"`` → 0.05, ``"2"``/``"2s"`` → 2.0."""
    m = _DURATION.match(text.strip())
    if not m:
        raise ChaosSpecError(f"malformed duration {text!r} "
                             f"(want e.g. '50ms' or '1.5s')")
    value = float(m.group(1))
    return value / 1000.0 if m.group(2) == "ms" else value


def _parse_probability(text: str, key: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ChaosSpecError(f"{key} wants a probability, got {text!r}")
    if not 0.0 <= value <= 1.0:
        raise ChaosSpecError(f"{key}={value} outside [0, 1]")
    return value


@dataclass
class FaultRule:
    """One scoped plan: the faults applied to targets matching *pattern*."""

    pattern: str = "*"
    drop: float = 0.0
    delay_s: float = 0.0
    jitter_s: float = 0.0
    corrupt: float = 0.0
    error_times: int = 0
    blackhole_s: float | None = None

    def matches(self, target: str) -> bool:
        """True when *target* falls under this rule's glob pattern."""
        return fnmatchcase(target, self.pattern)


@dataclass
class ChaosPlan:
    """An ordered list of :class:`FaultRule`; first match wins."""

    rules: list[FaultRule]
    spec: str = ""

    def match(self, target: str) -> FaultRule | None:
        """The rule governing *target*, or ``None`` (leave it alone)."""
        for rule in self.rules:
            if rule.matches(target):
                return rule
        return None


def _parse_fault(rule: FaultRule, clause: str) -> None:
    key, sep, value = clause.partition("=")
    key = key.strip()
    value = value.strip()
    if key == "drop":
        rule.drop = _parse_probability(value, key)
    elif key == "corrupt":
        rule.corrupt = _parse_probability(value, key)
    elif key == "delay":
        base, tilde, jitter = value.partition("~")
        rule.delay_s = parse_duration(base)
        rule.jitter_s = parse_duration(jitter) if tilde else 0.0
    elif key == "error":
        try:
            rule.error_times = int(value)
        except ValueError:
            raise ChaosSpecError(f"error wants an int, got {value!r}")
        if rule.error_times < 0:
            raise ChaosSpecError("error wants a count >= 0")
    elif key == "blackhole":
        rule.blackhole_s = parse_duration(value) if sep else \
            DEFAULT_BLACKHOLE_S
    else:
        raise ChaosSpecError(
            f"unknown fault {key!r} (known: drop, delay, corrupt, "
            f"error, blackhole)")


def parse_chaos_spec(spec: str) -> ChaosPlan:
    """Parse a chaos spec string into a :class:`ChaosPlan`."""
    rules: list[FaultRule] = []
    for segment in spec.split(";"):
        segment = segment.strip()
        if not segment:
            continue
        # a scope prefix is anything before a ":" that is not part of a
        # fault clause ("=" binds tighter than ":", so "task:*:drop=1"
        # scopes to "task:*"); URLs like http://... contain ":" too, so
        # split on the last ":" that precedes the first "="
        head, sep, tail = segment.rpartition(":")
        if sep and "=" not in head and not head.endswith("http") and \
                not head.endswith("https"):
            rule = FaultRule(pattern=head.strip() or "*")
            body = tail
        else:
            rule = FaultRule()
            body = segment
        for clause in body.split(","):
            clause = clause.strip()
            if clause:
                _parse_fault(rule, clause)
        rules.append(rule)
    if not rules:
        raise ChaosSpecError(f"empty chaos spec {spec!r}")
    return ChaosPlan(rules=rules, spec=spec)
