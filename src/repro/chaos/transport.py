"""Chaos fault injection as a chain-installable interceptor.

:class:`ChaosInterceptor` consults a
:class:`~repro.chaos.controller.ChaosController` on every send, so the
same seeded fault plan can hit an in-process container, the simulated
network, or a real HTTP connection — whatever the test or drill targets.
Response corruption mangles the *actual* encoded envelope and re-decodes
it, so the SOAP layer's malformed-document handling is exercised for
real rather than simulated with a synthetic exception.

Install it either by wrapping a transport in :class:`ChaosTransport`
(the pre-refactor shape, still the convenient one for composition like
``SimulatedTransport(ChaosTransport(inner, controller))``) or by
splicing the interceptor into any chain, e.g.::

    transport.interceptors = pipeline.chain_insert_after(
        transport.interceptors, "payload",
        ChaosInterceptor(controller, "Data"))

Both forms consume the seeded per-target RNG identically, so a fault
plan replays the same either way.
"""

from __future__ import annotations

import dataclasses

from repro.chaos.controller import ChaosController
from repro.ws import payload, soap
from repro.ws.payload import PayloadRef
from repro.ws.pipeline import CallContext, ClientInterceptor
from repro.ws.soap import SoapRequest, SoapResponse
from repro.ws.transport import Transport


def _mangle_digest(digest: str) -> str:
    """Deterministically flip the digest's first hex character."""
    first = "0" if digest[:1] != "0" else "1"
    return first + digest[1:]


def _mangle_ref_params(params: dict) -> dict:
    return {name: dataclasses.replace(
        value, digest=_mangle_digest(value.digest))
        if isinstance(value, PayloadRef) else value
        for name, value in params.items()}


def _corrupt_refs(request: SoapRequest) -> SoapRequest:
    """Mangle every ref digest, including those in multicall items."""
    if soap.is_multicall(request):
        calls = [dataclasses.replace(sub,
                                     params=_mangle_ref_params(sub.params))
                 for sub in soap.calls_of(request)]
        return dataclasses.replace(request, params={"calls": calls})
    return dataclasses.replace(request,
                               params=_mangle_ref_params(request.params))


class ChaosInterceptor(ClientInterceptor):
    """Inject plan-driven faults ahead of (and behind) the send below.

    A multicall batch is one wire exchange, so it consumes exactly the
    dice a single send would (one perturbation, at most one corruption
    roll) — fixed-seed drills stay deterministic across batch-size
    changes, and a corrupted batch counts as one fault event, not one
    per sub-call.
    """

    name = "chaos"

    def __init__(self, controller: ChaosController,
                 endpoint: str = "endpoint"):
        self.controller = controller
        self.endpoint = endpoint

    def intercept(self, request, ctx, proceed):
        self.controller.perturb(self.endpoint)
        # corrupt a by-reference parameter in flight: the receiver sees
        # a digest its store cannot hold, raising PayloadMissError (a
        # transient TransportError handled by fallbacks/retries).  The
        # extra die is only rolled when refs are present — and consumes
        # the send's one corruption opportunity — so plans over ref-free
        # traffic keep their exact fault sequences.
        if payload.refs_in(request) and \
                self.controller.should_corrupt(self.endpoint):
            return proceed(_corrupt_refs(request))
        response = proceed(request)
        if self.controller.should_corrupt(self.endpoint):
            # truncate the real envelope so the decoder sees genuinely
            # malformed bytes (raises ServiceError, a transient fault)
            wire = soap.encode_response(response)
            return soap.decode_response(wire[:max(1, len(wire) - 16)])
        return response


class ChaosTransport(Transport):
    """The interceptor in transport clothing: wrap any inner transport."""

    def __init__(self, inner: Transport, controller: ChaosController,
                 endpoint: str = "endpoint"):
        self.inner = inner
        self.interceptor = ChaosInterceptor(controller, endpoint)

    @property
    def controller(self) -> ChaosController:
        return self.interceptor.controller

    @property
    def endpoint(self) -> str:
        return self.interceptor.endpoint

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        ctx = CallContext(kind="chaos", endpoint=self.interceptor.endpoint,
                          service=request.service,
                          operation=request.operation)
        return self.interceptor.intercept(request, ctx, self.inner.send)

    def close(self) -> None:
        self.inner.close()
