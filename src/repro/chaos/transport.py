"""ChaosTransport: fault injection around any :class:`Transport`.

Wraps an inner transport and consults a
:class:`~repro.chaos.controller.ChaosController` on every send, so the
same seeded fault plan can hit an in-process container, the simulated
network, or a real HTTP connection — whatever the test or drill targets.
Response corruption mangles the *actual* encoded envelope and re-decodes
it, so the SOAP layer's malformed-document handling is exercised for
real rather than simulated with a synthetic exception.
"""

from __future__ import annotations

from repro.chaos.controller import ChaosController
from repro.ws import soap
from repro.ws.soap import SoapRequest, SoapResponse
from repro.ws.transport import Transport


class ChaosTransport(Transport):
    """Inject plan-driven faults ahead of (and behind) an inner send."""

    def __init__(self, inner: Transport, controller: ChaosController,
                 endpoint: str = "endpoint"):
        self.inner = inner
        self.controller = controller
        self.endpoint = endpoint

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        self.controller.perturb(self.endpoint)
        response = self.inner.send(request)
        if self.controller.should_corrupt(self.endpoint):
            # truncate the real envelope so the decoder sees genuinely
            # malformed bytes (raises ServiceError, a transient fault)
            wire = soap.encode_response(response)
            return soap.decode_response(wire[:max(1, len(wire) - 16)])
        return response

    def close(self) -> None:
        self.inner.close()
