"""ChaosTransport: fault injection around any :class:`Transport`.

Wraps an inner transport and consults a
:class:`~repro.chaos.controller.ChaosController` on every send, so the
same seeded fault plan can hit an in-process container, the simulated
network, or a real HTTP connection — whatever the test or drill targets.
Response corruption mangles the *actual* encoded envelope and re-decodes
it, so the SOAP layer's malformed-document handling is exercised for
real rather than simulated with a synthetic exception.
"""

from __future__ import annotations

import dataclasses

from repro.chaos.controller import ChaosController
from repro.ws import payload, soap
from repro.ws.payload import PayloadRef
from repro.ws.soap import SoapRequest, SoapResponse
from repro.ws.transport import Transport


def _mangle_digest(digest: str) -> str:
    """Deterministically flip the digest's first hex character."""
    first = "0" if digest[:1] != "0" else "1"
    return first + digest[1:]


class ChaosTransport(Transport):
    """Inject plan-driven faults ahead of (and behind) an inner send."""

    def __init__(self, inner: Transport, controller: ChaosController,
                 endpoint: str = "endpoint"):
        self.inner = inner
        self.controller = controller
        self.endpoint = endpoint

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        self.controller.perturb(self.endpoint)
        # corrupt a by-reference parameter in flight: the receiver sees
        # a digest its store cannot hold, raising PayloadMissError (a
        # transient TransportError handled by fallbacks/retries).  The
        # extra die is only rolled when refs are present — and consumes
        # the send's one corruption opportunity — so plans over ref-free
        # traffic keep their exact fault sequences.
        if payload.refs_in(request) and \
                self.controller.should_corrupt(self.endpoint):
            request = dataclasses.replace(request, params={
                name: dataclasses.replace(
                    value, digest=_mangle_digest(value.digest))
                if isinstance(value, PayloadRef) else value
                for name, value in request.params.items()})
            return self.inner.send(request)
        response = self.inner.send(request)
        if self.controller.should_corrupt(self.endpoint):
            # truncate the real envelope so the decoder sees genuinely
            # malformed bytes (raises ServiceError, a transient fault)
            wire = soap.encode_response(response)
            return soap.decode_response(wire[:max(1, len(wire) - 16)])
        return response

    def close(self) -> None:
        self.inner.close()
