"""Deterministic fault injection: the decision engine behind the harness.

A :class:`ChaosController` owns a parsed :class:`~repro.chaos.plan
.ChaosPlan` and decides, per *target* and per *attempt*, which fault (if
any) to inject.  Determinism is the whole point — a chaos run must be a
regression test, not a dice roll:

* every target gets its **own** RNG stream, seeded from
  ``sha512(f"{seed}|{target}")`` (via :class:`random.Random` string
  seeding), so thread interleaving between targets cannot change any
  target's fault sequence;
* per-target attempt counters make ``error=N`` ("fail the first N
  attempts, then succeed") exact rather than probabilistic;
* all draws for one attempt happen under the target's lock, in a fixed
  order.

Same plan + same seed + same per-target call sequence ⇒ byte-identical
injection history, which :meth:`ChaosController.summary` renders for the
CLI's reproducible outcome block.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.clock import SYSTEM_CLOCK, Clock
from repro.errors import TransportError
from repro.obs import get_metrics
from repro.chaos.plan import ChaosPlan, FaultRule, parse_chaos_spec
from repro.ws.deadline import current_deadline


@dataclass
class _TargetState:
    rng: random.Random
    attempts: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class ChaosController:
    """Seeded, thread-safe fault decisions for any number of targets."""

    def __init__(self, plan: ChaosPlan | str, seed: int = 0,
                 clock: Clock = SYSTEM_CLOCK):
        if isinstance(plan, str):
            plan = parse_chaos_spec(plan)
        self.plan = plan
        self.seed = seed
        self.clock = clock
        self._states: dict[str, _TargetState] = {}
        self._lock = threading.Lock()
        self._injections: list[tuple[str, str]] = []

    def _state(self, target: str) -> _TargetState:
        with self._lock:
            state = self._states.get(target)
            if state is None:
                # string seeding hashes with sha512 — stable across
                # processes regardless of PYTHONHASHSEED
                state = _TargetState(
                    rng=random.Random(f"{self.seed}|{target}"))
                self._states[target] = state
            return state

    def _record(self, target: str, kind: str) -> None:
        with self._lock:
            self._injections.append((target, kind))
        get_metrics().counter("chaos.injected", kind=kind,
                              target=target).inc()

    # -- decision points -------------------------------------------------
    def perturb(self, target: str) -> None:
        """Apply pre-send faults for one attempt at *target*.

        May sleep (``delay``/``blackhole``) on the controller's clock and
        may raise :class:`TransportError` (``error``/``blackhole``/
        ``drop``).  Called once per attempt, *inside* any retry loop, so
        retries face fresh rolls of the dice.
        """
        rule = self.plan.match(target)
        if rule is None:
            return
        state = self._state(target)
        with state.lock:
            attempt = state.attempts
            state.attempts += 1
            inject_error = attempt < rule.error_times
            inject_drop = (not inject_error and rule.drop > 0 and
                           state.rng.random() < rule.drop)
            delay = rule.delay_s
            if rule.jitter_s:
                delay += state.rng.random() * rule.jitter_s
        if inject_error:
            self._record(target, "error")
            raise TransportError(
                f"chaos: injected error at {target} "
                f"(attempt {attempt + 1}/{rule.error_times})")
        if rule.blackhole_s is not None:
            self._blackhole(target, rule)
        if inject_drop:
            self._record(target, "drop")
            raise TransportError(f"chaos: dropped send to {target}")
        if delay > 0:
            self._record(target, "delay")
            self.clock.sleep(delay)

    def _blackhole(self, target: str, rule: FaultRule) -> None:
        # consume the lesser of the blackhole timeout and whatever
        # remains of the caller's budget — exactly what waiting on a
        # silent endpoint costs
        assert rule.blackhole_s is not None
        budget = rule.blackhole_s
        deadline = current_deadline()
        if deadline is not None:
            budget = min(budget, max(deadline.remaining(), 0.0))
        self._record(target, "blackhole")
        self.clock.sleep(budget)
        raise TransportError(
            f"chaos: {target} blackholed (gave up after {budget:.3f}s)")

    def should_corrupt(self, target: str) -> bool:
        """Roll the response-corruption die for *target*."""
        rule = self.plan.match(target)
        if rule is None or rule.corrupt <= 0:
            return False
        state = self._state(target)
        with state.lock:
            corrupt = state.rng.random() < rule.corrupt
        if corrupt:
            self._record(target, "corrupt")
        return corrupt

    # -- reporting -------------------------------------------------------
    def injections(self) -> list[tuple[str, str]]:
        """Every (target, kind) injected so far, in injection order."""
        with self._lock:
            return list(self._injections)

    def summary(self) -> dict[str, dict[str, int]]:
        """Deterministic per-target fault counts: target → kind → n."""
        table: dict[str, dict[str, int]] = {}
        for target, kind in self.injections():
            kinds = table.setdefault(target, {})
            kinds[kind] = kinds.get(kind, 0) + 1
        return {t: dict(sorted(kinds.items()))
                for t, kinds in sorted(table.items())}
