"""Clustering Web Services (§4.1).

Two services, mirroring the paper: a dedicated Cobweb service with the two
operations the paper lists ("(1) cluster, (2) getCobwebGraph"), and a general
clusterer wrapper with the same getX/getOptions/run triple as the general
Classifier Web Service.
"""

from __future__ import annotations

from repro.data import arff, dataio
from repro.errors import DataError
from repro.ml import catalogue
from repro.ml.base import CLUSTERERS
from repro.ml.clusterers import Cobweb
from repro.ws.service import operation


def _load(dataset_arff: str):
    return dataio.parse_dataset(dataset_arff)


def _build(clusterer: str, options: dict | None):
    try:
        return catalogue.create(clusterer, options or {})
    except Exception:
        return CLUSTERERS.create(clusterer, options or {})


class CobwebService:
    """Dedicated Cobweb conceptual-clustering service."""

    @operation
    def cluster(self, dataset: str, options: dict = None) -> str:
        """Apply Cobweb to an ARFF dataset; returns the textual clustering
        description."""
        ds = _load(dataset)
        model = Cobweb(**(options or {}))
        model.fit(ds)
        return model.to_text()

    @operation
    def getCobwebGraph(self, dataset: str,  # noqa: N802
                       options: dict = None) -> dict:
        """Apply Cobweb; returns the concept hierarchy as a plottable tree
        graph."""
        ds = _load(dataset)
        model = Cobweb(**(options or {}))
        model.fit(ds)
        return {"n_clusters": model.n_clusters, "graph": model.to_graph()}


class ClustererService:
    """General clusterer wrapper (getClusterers / getOptions / cluster)."""

    @operation(cacheable=True)
    def getClusterers(self) -> list:  # noqa: N802
        """List available clusterers (name, description)."""
        return [{"name": e.name, "description": e.description}
                for e in catalogue.entries() if e.kind == "clusterer"]

    @operation(cacheable=True)
    def getOptions(self, clusterer: str) -> list:  # noqa: N802
        """Required and optional properties of one clusterer."""
        try:
            entry = catalogue.get(clusterer)
            cls = CLUSTERERS.get(entry.base)
            preset = entry.options
        except Exception:
            cls = CLUSTERERS.get(clusterer)
            preset = {}
        out = []
        for spec in cls.describe_options():
            if spec["name"] in preset:
                spec = dict(spec)
                spec["default"] = preset[spec["name"]]
            out.append(spec)
        return out

    @operation
    def cluster(self, clusterer: str, dataset: str,
                options: dict = None) -> dict:
        """Fit *clusterer* on the ARFF *dataset*; returns the textual model
        and per-instance assignments."""
        ds = _load(dataset)
        model = _build(clusterer, options)
        model.fit(ds)
        return {
            "clusterer": clusterer,
            "n_clusters": model.n_clusters,
            "assignments": model.assign(ds),
            "model_text": model.to_text(),
        }

    @operation
    def clusterGraph(self, clusterer: str, dataset: str,  # noqa: N802
                     options: dict = None) -> dict:
        """Fit a hierarchical clusterer; returns its tree graph."""
        ds = _load(dataset)
        model = _build(clusterer, options)
        model.fit(ds)
        if not hasattr(model, "to_graph"):
            raise DataError(
                f"clusterer {clusterer!r} has no graphical form")
        return {"n_clusters": model.n_clusters, "graph": model.to_graph()}
