"""Session-management Web Service.

The paper's conclusion lists "session management" among the supporting
services ("a variety of additional services ... for data translation,
visualisation and session management").  A session keeps datasets and
trained models *server-side*, so an interactive user ships the dataset once
and then issues cheap train/classify/evaluate calls against named artefacts
— the service-level counterpart of the §4.5 in-memory harness.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.data import arff, dataio
from repro.data.dataset import Dataset
from repro.errors import DataError
from repro.ml import catalogue, evaluation
from repro.ml.base import CLASSIFIERS, Classifier
from repro.ws.service import operation


@dataclass
class _Session:
    id: str
    datasets: dict[str, Dataset] = field(default_factory=dict)
    models: dict[str, Classifier] = field(default_factory=dict)


class SessionService:
    """Server-side artefact store for interactive mining sessions."""

    def __init__(self) -> None:
        self._sessions: dict[str, _Session] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def _session(self, session: str) -> _Session:
        with self._lock:
            state = self._sessions.get(session)
        if state is None:
            raise DataError(f"no open session {session!r}")
        return state

    @operation
    def createSession(self) -> str:  # noqa: N802
        """Open a new session; returns its id."""
        with self._lock:
            sid = f"session-{next(self._counter)}"
            self._sessions[sid] = _Session(sid)
        return sid

    @operation
    def closeSession(self, session: str) -> dict:  # noqa: N802
        """Close a session, discarding its artefacts; returns a summary."""
        state = self._session(session)
        with self._lock:
            del self._sessions[session]
        return {"datasets": sorted(state.datasets),
                "models": sorted(state.models)}

    @operation
    def putDataset(self, session: str, name: str,  # noqa: N802
                   dataset: str) -> dict:
        """Store an ARFF dataset under *name* inside the session."""
        state = self._session(session)
        ds = dataio.parse_dataset(dataset)
        state.datasets[name] = ds
        return {"name": name, "num_instances": ds.num_instances,
                "num_attributes": ds.num_attributes}

    @operation
    def artifacts(self, session: str) -> dict:
        """Names of the session's stored datasets and models."""
        state = self._session(session)
        return {"datasets": sorted(state.datasets),
                "models": sorted(state.models)}

    def _dataset(self, state: _Session, name: str) -> Dataset:
        ds = state.datasets.get(name)
        if ds is None:
            raise DataError(f"session has no dataset {name!r} "
                            f"(stored: {sorted(state.datasets)})")
        return ds

    def _model(self, state: _Session, name: str) -> Classifier:
        model = state.models.get(name)
        if model is None:
            raise DataError(f"session has no model {name!r} "
                            f"(stored: {sorted(state.models)})")
        return model

    @operation
    def train(self, session: str, model: str, classifier: str,
              dataset: str, attribute: str, options: dict = None) -> dict:
        """Train *classifier* on a stored dataset; store it as *model*."""
        state = self._session(session)
        ds = self._dataset(state, dataset).copy()
        ds.set_class(attribute)
        try:
            clf = catalogue.create(classifier, options or {})
        except Exception:
            clf = CLASSIFIERS.create(classifier, options or {})
        clf.fit(ds)
        state.models[model] = clf
        result = evaluation.evaluate(clf, ds)
        return {"model": model, "classifier": classifier,
                "training_accuracy": result.accuracy}

    @operation
    def classify(self, session: str, model: str, dataset: str) -> list:
        """Label a stored dataset with a stored model."""
        state = self._session(session)
        clf = self._model(state, model)
        ds = self._dataset(state, dataset)
        return [clf.predict_label(inst) for inst in ds]

    @operation
    def evaluate(self, session: str, model: str, dataset: str,
                 attribute: str) -> dict:
        """Evaluate a stored model against a stored labelled dataset."""
        state = self._session(session)
        clf = self._model(state, model)
        ds = self._dataset(state, dataset).copy()
        ds.set_class(attribute)
        result = evaluation.evaluate(clf, ds)
        return {"accuracy": result.accuracy, "kappa": result.kappa,
                "tested": result.total,
                "report": result.full_report()}

    @operation
    def modelText(self, session: str, model: str) -> str:  # noqa: N802
        """Textual form of a stored model."""
        return self._model(self._session(session), model).to_text()
