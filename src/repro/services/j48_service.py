"""The dedicated J48 Web Service (§4.1).

    "For example a J48 Web Service that implements a decision tree classifier
    based on the C4.5 algorithm.  The J48 service has two key options:
    (1) classify and (2) classify graph.  ...  The result of invoking the
    classify operation is a textual output specifying the classification
    decision tree.  The classify graph option is similar ... but the result
    is a graphical representation of the decision tree."

This per-algorithm service also demonstrates the §4.5 state problem: its
implementation object caches the last trained model (``self._last_model``),
which is exactly the state the naive Axis lifecycle serialised to disk after
every call.  Deploy it with ``lifecycle="serialize"`` vs ``"harness"`` to
reproduce the paper's performance comparison (the PERF-4.5 bench).
"""

from __future__ import annotations

from repro.data import arff, dataio
from repro.ml import evaluation
from repro.ml.classifiers import J48
from repro.services.classifier_service import _note_batch
from repro.ws.service import operation


class J48Service:
    """C4.5 decision-tree service with stateful model caching."""

    def __init__(self) -> None:
        self._last_model: J48 | None = None
        self._last_key: tuple | None = None

    def _fit(self, dataset: str, attribute: str,
             options: dict | None) -> J48:
        key = (hash(dataset), attribute,
               tuple(sorted((options or {}).items())))
        if self._last_model is not None and key == self._last_key:
            return self._last_model  # interactive sessions hit this cache
        ds = dataio.parse_dataset(dataset)
        ds.set_class(attribute)
        model = J48(**(options or {}))
        model.fit(ds)
        self._last_model = model
        self._last_key = key
        return model

    @operation
    def classify(self, dataset: str, attribute: str,
                 options: dict = None) -> str:
        """Apply J48 to an ARFF dataset; returns the textual decision
        tree."""
        return self._fit(dataset, attribute, options).to_text()

    @operation
    def classifyGraph(self, dataset: str, attribute: str,  # noqa: N802
                      options: dict = None) -> dict:
        """Apply J48; returns the decision tree as a plottable node/edge
        graph."""
        model = self._fit(dataset, attribute, options)
        return {"root_attribute": model.root_attribute
                if model.root and not model.root.is_leaf else None,
                "graph": model.to_graph()}

    @operation
    def classifyDot(self, dataset: str, attribute: str,  # noqa: N802
                    options: dict = None) -> str:
        """Apply J48; returns the tree as Graphviz dot text."""
        return self._fit(dataset, attribute, options).to_dot()

    # -- bulk scoring (batched; rides the _last_model cache) ----------------
    @operation
    def classifyBatch(self, dataset: str, attribute: str,  # noqa: N802
                      rows: list = None, train: str = None,
                      options: dict = None) -> dict:
        """Score many rows of *dataset* with one J48 model (trained on
        *train* when given, else on *dataset*); see the general
        Classifier service's ``classifyBatch`` for the result shape."""
        model = self._fit(train if train else dataset, attribute, options)
        test_ds = dataio.parse_dataset(dataset)
        test_ds.set_class(attribute)
        out = evaluation.bulk_score(model, test_ds, rows)
        _note_batch("J48", len(rows) if rows is not None
                    else test_ds.num_instances)
        return out

    @operation
    def distributionBatch(self, dataset: str, attribute: str,  # noqa: N802
                          rows: list = None, train: str = None,
                          options: dict = None) -> dict:
        """Per-class probability vectors for many rows in one pass."""
        out = self.classifyBatch(dataset, attribute, rows=rows,
                                 train=train, options=options)
        return {"distributions": out["distributions"],
                "errors": out["errors"], "scored": out["scored"]}
