"""Mathematica-substitute Web Service (§4.2).

    "An example of these services is the Mathematica Web Service. ... The
    most important operation in this Web Service is the plot3D operation.
    This operation is used to plot data points sent as a CSV file in three
    dimension and return the plotted graph as an image file (PNG format)."

Mathematica/MathLink is proprietary and unavailable offline, so ``plot3D``
renders through :mod:`repro.viz.plot3d` and returns binary **PPM** bytes (the
documented PNG substitution).  A couple of numeric operations
(``statistics``, ``tabulate``) stand in for the broader kernel capability the
original service proxied.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data import csvio
from repro.errors import DataError
from repro.viz.plot3d import plot3d
from repro.ws.service import operation


def _xyz_from_csv(csv_text: str) -> tuple[np.ndarray, np.ndarray,
                                          np.ndarray]:
    ds = csvio.loads(csv_text)
    numeric = [i for i, a in enumerate(ds.attributes) if a.is_numeric]
    if len(numeric) < 3:
        raise DataError(
            "plot3D needs a CSV with at least three numeric columns")
    x, y, z = (ds.column(numeric[i]) for i in range(3))
    keep = ~(np.isnan(x) | np.isnan(y) | np.isnan(z))
    if not keep.any():
        raise DataError("plot3D got no complete (x, y, z) rows")
    return x[keep], y[keep], z[keep]


class MathService:
    """Plotting and numeric utility operations."""

    @operation
    def plot3D(self, points: str, width: int = 480,  # noqa: N802
               height: int = 360, azimuth: float = 225.0,
               elevation: float = 30.0) -> bytes:
        """Render CSV (x, y, z) points as a 3-D surface/point image.

        Returns binary PPM bytes (PNG substitution; see DESIGN.md)."""
        x, y, z = _xyz_from_csv(points)
        return plot3d(x, y, z, width=width, height=height,
                      azimuth=azimuth, elevation=elevation)

    @operation
    def statistics(self, points: str) -> dict:
        """Column statistics (count/min/max/mean/std) of a CSV document."""
        ds = csvio.loads(points)
        out: dict[str, dict] = {}
        for i, attr in enumerate(ds.attributes):
            if not attr.is_numeric:
                continue
            col = ds.column(i)
            present = col[~np.isnan(col)]
            if present.size == 0:
                out[attr.name] = {"count": 0}
                continue
            out[attr.name] = {
                "count": int(present.size),
                "min": float(present.min()),
                "max": float(present.max()),
                "mean": float(present.mean()),
                "std": float(present.std()),
            }
        return out

    @operation
    def tabulate(self, expression: str, lo: float = -1.0, hi: float = 1.0,
                 steps: int = 21) -> list:
        """Evaluate a named function over a range (the Mathematica 'Table'
        stand-in).  *expression* is one of sin, cos, tan, exp, log, sqrt,
        sinc, abs, square."""
        table = {
            "sin": math.sin, "cos": math.cos, "tan": math.tan,
            "exp": math.exp, "abs": abs,
            "log": lambda v: math.log(v) if v > 0 else float("nan"),
            "sqrt": lambda v: math.sqrt(v) if v >= 0 else float("nan"),
            "sinc": lambda v: 1.0 if abs(v) < 1e-12 else
                    math.sin(v) / v,
            "square": lambda v: v * v,
        }
        fn = table.get(expression)
        if fn is None:
            raise DataError(
                f"unknown expression {expression!r}; "
                f"known: {sorted(table)}")
        if steps < 2:
            raise DataError("need at least 2 steps")
        xs = np.linspace(lo, hi, steps)
        return [[float(x), float(fn(float(x)))] for x in xs]
