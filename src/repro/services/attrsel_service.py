"""Attribute search & selection Web Service.

Exposes the paper's "20 different approaches ... such as a genetic search
operator" (§1) and automates the case study's closing remark: "The attribute
selection process can also be automated through the use of a genetic search
service" (§5.3).
"""

from __future__ import annotations

from repro.data import arff, dataio
from repro.ml.attrsel import approaches, rank_attributes, select_attributes
from repro.ws.service import operation


class AttributeSelectionService:
    """Attribute search/selection over ARFF datasets."""

    @operation
    def getApproaches(self) -> list:  # noqa: N802
        """The catalogue of selection approaches (searcher + evaluator)."""
        return [{"name": a.name, "searcher": a.searcher,
                 "evaluator": a.evaluator, "description": a.description}
                for a in approaches()]

    @operation
    def select(self, dataset: str, attribute: str,
               approach: str = "GeneticSearch+CfsSubset") -> dict:
        """Run one approach; returns the selected attribute names and the
        projected dataset as ARFF."""
        ds = dataio.parse_dataset(dataset)
        ds.set_class(attribute)
        names, projected = select_attributes(ds, approach)
        return {
            "approach": approach,
            "selected": names,
            "dataset": arff.dumps(projected),
        }

    @operation
    def rank(self, dataset: str, attribute: str,
             measure: str = "InfoGain") -> list:
        """All attributes ranked by a single-attribute measure."""
        ds = dataio.parse_dataset(dataset)
        ds.set_class(attribute)
        return [[name, score] for name, score in
                rank_attributes(ds, measure)]
