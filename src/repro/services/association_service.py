"""Association-rules Web Service — the third algorithm family (§1).

Same wrapper pattern as the Classifier/Clusterer services:
``getAssociators`` / ``getOptions`` / ``associate``.
"""

from __future__ import annotations

from repro.data import arff, dataio
from repro.ml import catalogue
from repro.ml.base import ASSOCIATORS
from repro.ws.service import operation


class AssociationService:
    """General association-rule mining service."""

    @operation(cacheable=True)
    def getAssociators(self) -> list:  # noqa: N802
        """List available association-rule learners."""
        return [{"name": e.name, "description": e.description}
                for e in catalogue.entries() if e.kind == "associator"]

    @operation(cacheable=True)
    def getOptions(self, associator: str) -> list:  # noqa: N802
        """Required and optional properties of one associator."""
        try:
            entry = catalogue.get(associator)
            cls = ASSOCIATORS.get(entry.base)
            preset = entry.options
        except Exception:
            cls = ASSOCIATORS.get(associator)
            preset = {}
        out = []
        for spec in cls.describe_options():
            if spec["name"] in preset:
                spec = dict(spec)
                spec["default"] = preset[spec["name"]]
            out.append(spec)
        return out

    @operation
    def associate(self, associator: str, dataset: str,
                  options: dict = None) -> dict:
        """Mine rules from a nominal ARFF dataset; returns the rule list
        both as text and as structured records."""
        ds = dataio.parse_dataset(dataset)
        try:
            learner = catalogue.create(associator, options or {})
        except Exception:
            learner = ASSOCIATORS.create(associator, options or {})
        learner.fit(ds)
        rules = [{
            "antecedent": [[ds.attribute(a).name,
                            ds.attribute(a).values[v]]
                           for a, v in rule.antecedent],
            "consequent": [[ds.attribute(a).name,
                            ds.attribute(a).values[v]]
                           for a, v in rule.consequent],
            "support": rule.support,
            "confidence": rule.confidence,
            "lift": rule.lift,
        } for rule in learner.rules]
        return {
            "associator": associator,
            "num_itemsets": len(learner.itemsets),
            "num_rules": len(rules),
            "rules": rules,
            "rules_text": learner.rules_text(),
        }
