"""The general Classifier Web Service (§4.1).

The paper's description, reproduced operation-for-operation:

    "we have opted to implement a general Classifier Web Service to act as a
    wrapper for a complete set of classifiers available in WEKA.  The general
    Classifier Web Service has the following operations: (1) getClassifiers,
    (2) getOptions and (3) ClassifyInstance. ... The classify operation has
    4 inputs: Classifier name, options, data set in ARFF format and attribute
    name that the classifier should classify the data on."

Beyond those three, this implementation adds the operations the paper's
requirements call for elsewhere: ``classifyGraph`` (graphical model output,
as on the per-algorithm services), ``crossValidate`` (§3: "test the
discovered knowledge ... produce a result for the accuracy"), ``predict``
(label a test set with a freshly built model, Grid WEKA's "labelling of test
data" task) and the streaming trio ``beginStream``/``updateStream``/
``finishStream`` for incremental learners on remote data streams (§1).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from repro.data import arff, dataio, stream
from repro.errors import DataError
from repro.ml import catalogue, evaluation
from repro.ml.base import CLASSIFIERS, IncrementalClassifier
from repro.obs import get_metrics
from repro.ws.service import operation


def _build(classifier: str, options: dict | None):
    """Instantiate a catalogue entry or raw registry name with options."""
    try:
        return catalogue.create(classifier, options or {})
    except Exception:
        return CLASSIFIERS.create(classifier, options or {})


def _load(dataset_arff: str, attribute: str):
    ds = dataio.parse_dataset(dataset_arff)
    ds.set_class(attribute)
    return ds


def _note_batch(service: str, size: int) -> None:
    """File the batch-plane metrics for one vectorized scoring call."""
    metrics = get_metrics()
    metrics.histogram("ws.batch.size", service=service).observe(size)
    if size > 1:
        metrics.counter("ws.batch.calls_saved",
                        service=service).inc(size - 1)


class ClassifierService:
    """General classifier wrapper service (the paper's §4.1 interface)."""

    def __init__(self) -> None:
        self._sessions: dict[str, dict[str, Any]] = {}
        self._session_counter = itertools.count(1)
        self._lock = threading.Lock()

    # -- the paper's three operations ---------------------------------------
    @operation(cacheable=True)
    def getClassifiers(self) -> list:  # noqa: N802 (paper-facing name)
        """List the available classifiers, grouped by family, as the
        ClassifierSelector tool expects (name, family, description)."""
        return [{"name": e.name, "family": e.family,
                 "description": e.description}
                for e in catalogue.entries() if e.kind == "classifier"]

    @operation(cacheable=True)
    def getOptions(self, classifier: str) -> list:  # noqa: N802
        """Required and optional properties of one classifier."""
        try:
            entry = catalogue.get(classifier)
            cls = CLASSIFIERS.get(entry.base)
            preset = entry.options
        except Exception:
            cls = CLASSIFIERS.get(classifier)
            preset = {}
        out = []
        for spec in cls.describe_options():
            if spec["name"] in preset:
                spec = dict(spec)
                spec["default"] = preset[spec["name"]]
            out.append(spec)
        return out

    @operation
    def classifyInstance(self, classifier: str, dataset: str,  # noqa: N802
                         attribute: str, options: dict = None) -> dict:
        """Build *classifier* on the ARFF *dataset* classifying *attribute*;
        returns the textual model plus training statistics."""
        ds = _load(dataset, attribute)
        clf = _build(classifier, options)
        clf.fit(ds)
        result = evaluation.evaluate(clf, ds)
        return {
            "classifier": classifier,
            "attribute": attribute,
            "num_instances": ds.num_instances,
            "model_text": clf.to_text(),
            "training_accuracy": result.accuracy,
            "training_kappa": result.kappa,
        }

    # -- graphical output (per-algorithm services offer this; see §4.1) ----
    @operation
    def classifyGraph(self, classifier: str, dataset: str,  # noqa: N802
                      attribute: str, options: dict = None) -> dict:
        """Like classifyInstance but returning the model as a plottable
        node/edge graph (tree learners only)."""
        ds = _load(dataset, attribute)
        clf = _build(classifier, options)
        clf.fit(ds)
        if not hasattr(clf, "to_graph"):
            raise DataError(
                f"classifier {classifier!r} has no graphical form")
        return {"classifier": classifier, "graph": clf.to_graph()}

    # -- knowledge testing (§3) -----------------------------------------------
    @operation
    def crossValidate(self, classifier: str, dataset: str,  # noqa: N802
                      attribute: str, folds: int = 10,
                      options: dict = None, seed: int = 1) -> dict:
        """Stratified k-fold cross-validation accuracy report.

        *seed* shuffles the fold assignment, so an experiment grid can
        repeat the same configuration over several fold draws (the
        FlexDM seeds axis); the default reproduces the historical
        folds.
        """
        ds = _load(dataset, attribute)
        result = evaluation.cross_validate(
            lambda: _build(classifier, options), ds,
            k=min(folds, ds.num_instances), seed=seed)
        return {
            "classifier": classifier,
            "folds": folds,
            "accuracy": result.accuracy,
            "kappa": result.kappa,
            "confusion": result.confusion.tolist(),
            "report": result.full_report(),
        }

    @operation
    def predict(self, classifier: str, train: str, test: str,
                attribute: str, options: dict = None) -> dict:
        """Train on *train*, label *test*; returns labels + accuracy when
        the test set carries true classes."""
        train_ds = _load(train, attribute)
        test_ds = _load(test, attribute)
        clf = _build(classifier, options)
        clf.fit(train_ds)
        labels = [clf.predict_label(inst) for inst in test_ds]
        result = evaluation.evaluate(clf, test_ds)
        return {
            "labels": labels,
            "accuracy": result.accuracy if result.total else None,
            "tested": result.total,
        }

    # -- bulk scoring (Grid WEKA's "labelling of test data", batched) -------
    @operation
    def classifyBatch(self, classifier: str, dataset: str,  # noqa: N802
                      attribute: str, rows: list = None,
                      train: str = None, options: dict = None) -> dict:
        """Score many rows of one ARFF document in a single vectorized
        pass.  *rows* lists the row indices to score (``None`` = all);
        the model trains on *train* when given, else on *dataset*
        itself.  Per-row problems land in ``errors`` as
        ``[position, message]`` pairs without failing the batch."""
        test_ds = _load(dataset, attribute)
        model_ds = _load(train, attribute) if train else test_ds
        clf = _build(classifier, options)
        clf.fit(model_ds)
        out = evaluation.bulk_score(clf, test_ds, rows)
        _note_batch("Classifier",
                    len(rows) if rows is not None
                    else test_ds.num_instances)
        out["classifier"] = classifier
        return out

    @operation
    def distributionBatch(self, classifier: str, dataset: str,  # noqa: N802
                          attribute: str, rows: list = None,
                          train: str = None, options: dict = None) -> dict:
        """Like :meth:`classifyBatch` but returning only the per-class
        probability distributions (one vector per requested row)."""
        out = self.classifyBatch(classifier, dataset, attribute,
                                 rows=rows, train=train, options=options)
        return {"distributions": out["distributions"],
                "errors": out["errors"], "scored": out["scored"],
                "classifier": classifier}

    # -- streaming (§1: remote data streams) ----------------------------------
    @operation
    def beginStream(self, classifier: str, header: str,  # noqa: N802
                    attribute: str, options: dict = None) -> str:
        """Open a streaming-training session for an incremental classifier;
        *header* is a data-less ARFF document.  Returns a session id."""
        clf = _build(classifier, options)
        if not isinstance(clf, IncrementalClassifier):
            raise DataError(
                f"classifier {classifier!r} does not support streaming "
                f"(incremental) training")
        reader = stream.ChunkedStreamReader(header)
        head = reader.header.copy_header()
        head.set_class(attribute)
        clf.begin(head)
        with self._lock:
            session = f"stream-{next(self._session_counter)}"
            self._sessions[session] = {"clf": clf, "reader": reader,
                                       "count": 0}
        return session

    @operation
    def updateStream(self, session: str, chunk: str) -> int:  # noqa: N802
        """Feed one CSV row chunk into the session; returns rows absorbed."""
        state = self._session(session)
        added = state["reader"].feed(chunk)
        # feed() parses into pending rows; drain them into the model
        ds = state["reader"].dataset()
        new_rows = ds.instances[state["count"]:]
        for inst in new_rows:
            state["clf"].update(inst)
        state["count"] += len(new_rows)
        return added

    @operation
    def finishStream(self, session: str) -> dict:  # noqa: N802
        """Close the session; returns the trained model's textual form."""
        state = self._session(session)
        with self._lock:
            del self._sessions[session]
        clf = state["clf"]
        return {"instances": state["count"],
                "model_text": clf.to_text()}

    def _session(self, session: str) -> dict[str, Any]:
        with self._lock:
            state = self._sessions.get(session)
        if state is None:
            raise DataError(f"no open stream session {session!r}")
        return state
