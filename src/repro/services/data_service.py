"""Data Web Service: URL reading, format conversion, summaries, streaming.

Covers the first of the case study's four composed services ("a Web Service
to read the data file from a URL and convert this into a format suitable for
analysis", §5.3) and the data-set manipulation tools of §4.3 (CSV ↔ ARFF
conversion, dataset summaries per Figure 3), plus the serving half of remote
dataset streaming (§1).
"""

from __future__ import annotations

import itertools
import threading

from repro.data import arff, converters, dataio, stream, summary
from repro.errors import DataError
from repro.ws.client import fetch_url
from repro.ws.service import operation


class DataService:
    """Dataset acquisition, conversion and streaming."""

    def __init__(self) -> None:
        #: datasets registered for URL-less lookup (simulated repositories)
        self._repository: dict[str, str] = {}
        self._streams: dict[str, list[str]] = {}
        self._stream_headers: dict[str, str] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    # -- acquisition ----------------------------------------------------------
    @operation
    def readURL(self, url: str, format: str = "arff") -> str:  # noqa: N802
        """Fetch a dataset document from a URL (or a ``repo:`` name
        registered via :meth:`publishDataset`) and convert it to *format*."""
        if url.startswith("repo:"):
            name = url[len("repo:"):]
            with self._lock:
                text = self._repository.get(name)
            if text is None:
                raise DataError(f"no repository dataset named {name!r}")
            source_format = "arff"
        else:
            text = fetch_url(url)
            source_format = "csv" if url.lower().endswith(".csv") else "arff"
        return converters.convert(text, source_format, format)

    @operation
    def publishDataset(self, name: str, dataset: str) -> str:  # noqa: N802
        """Register an ARFF dataset under ``repo:<name>`` (the stand-in for
        the UCI repository the paper reads)."""
        dataio.parse_dataset(dataset)  # validate before accepting
        with self._lock:
            self._repository[name] = dataset
        return f"repo:{name}"

    # -- conversion (§4.3 data-set manipulation tools) ----------------------
    @operation(cacheable=True)
    def convert(self, document: str, source: str, target: str) -> str:
        """Convert a dataset document between registered formats
        (csv ↔ arff)."""
        return converters.convert(document, source, target)

    @operation(cacheable=True)
    def listConversions(self) -> list:  # noqa: N802
        """All registered (source, target) conversion pairs."""
        return [list(pair) for pair in converters.available()]

    @operation(cacheable=True)
    def summarise(self, dataset: str) -> dict:
        """Figure-3 style dataset statistics."""
        ds = dataio.parse_dataset(dataset)
        s = summary.summarise(ds)
        return {
            "relation": s.relation,
            "num_instances": s.num_instances,
            "num_attributes": s.num_attributes,
            "num_continuous": s.num_continuous,
            "num_discrete": s.num_discrete,
            "missing_values": s.missing_values,
            "missing_percent": s.missing_percent,
            "attributes": [{
                "index": a.index, "name": a.name, "type": a.type_label,
                "missing": a.missing, "distinct": a.distinct,
            } for a in s.attributes],
            "text": summary.format_figure3(s),
        }

    @operation(cacheable=True)
    def validate(self, dataset: str) -> dict:
        """Parse-check an ARFF document; returns shape info or faults."""
        ds = dataio.parse_dataset(dataset)
        return {"relation": ds.relation,
                "num_instances": ds.num_instances,
                "num_attributes": ds.num_attributes,
                "attributes": [a.name for a in ds.attributes]}

    # -- streaming (server side) ----------------------------------------------
    @operation
    def openStream(self, dataset: str,  # noqa: N802
                   chunk_size: int = 50) -> dict:
        """Prepare a dataset for chunked streaming; returns the stream id,
        its ARFF header and the number of chunks."""
        ds = dataio.parse_dataset(dataset)
        header, chunks = stream.replay(ds, chunk_size)
        with self._lock:
            sid = f"dstream-{next(self._counter)}"
            self._streams[sid] = list(chunks)
            self._stream_headers[sid] = header
        return {"stream": sid, "header": header, "chunks": len(chunks)}

    @operation
    def readChunk(self, stream_id: str, index: int) -> str:  # noqa: N802
        """Read one CSV row chunk of an open stream."""
        with self._lock:
            chunks = self._streams.get(stream_id)
        if chunks is None:
            raise DataError(f"no open stream {stream_id!r}")
        if not 0 <= index < len(chunks):
            raise DataError(
                f"chunk index {index} out of range 0..{len(chunks) - 1}")
        return chunks[index]

    @operation
    def closeStream(self, stream_id: str) -> int:  # noqa: N802
        """Close a stream; returns the number of chunks it served."""
        with self._lock:
            chunks = self._streams.pop(stream_id, None)
            self._stream_headers.pop(stream_id, None)
        if chunks is None:
            raise DataError(f"no open stream {stream_id!r}")
        return len(chunks)
