"""Grid-WEKA-style distributed execution (§2 related work).

The paper positions itself against Grid WEKA, where "execution of the
following tasks can be distributed across several computers contained
within an ad-hoc Grid: labelling of test data using a previously built
classifier, testing a previously built classifier on a dataset, building a
classifier on a remote machine, and cross-validation."

This module provides that capability over this toolkit's services:
:func:`distributed_cross_validate` fans the k folds of a stratified
cross-validation out across a pool of Classifier-service endpoints (each a
separate container/host), merging the per-fold confusion matrices into one
:class:`~repro.ml.evaluation.EvaluationResult`.  Dead endpoints are handled
by migrating their folds to the survivors (§3's fault-tolerance
requirement applied to grid jobs).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from repro.data import arff
from repro.data.dataset import Dataset
from repro.errors import ServiceError, TransportError, WorkflowError
from repro.ml.evaluation import EvaluationResult, stratified_folds
from repro.obs import (get_metrics, get_tracer,
                       maybe_enable_tracing_from_env)
from repro.ws.deadline import current_deadline


@dataclass
class FoldOutcome:
    """Bookkeeping for one dispatch attempt of one fold."""

    fold: int
    worker: int
    attempts: int = 1
    migrated: bool = False
    completed: bool = True


@dataclass
class GridRunReport:
    """Result + execution trace of a distributed cross-validation."""

    result: EvaluationResult
    outcomes: list[FoldOutcome] = field(default_factory=list)

    @property
    def migrations(self) -> int:
        return sum(1 for o in self.outcomes if o.migrated)

    def worker_loads(self) -> dict[int, int]:
        """Completed folds per worker (failed attempts excluded)."""
        loads: dict[int, int] = {}
        for outcome in self.outcomes:
            if outcome.completed:
                loads[outcome.worker] = loads.get(outcome.worker, 0) + 1
        return loads


def distributed_cross_validate(proxies: Sequence, dataset: Dataset,
                               classifier: str = "J48",
                               attribute: str | None = None,
                               k: int = 10, seed: int = 1,
                               options: dict | None = None
                               ) -> GridRunReport:
    """Cross-validate *classifier* with folds dispatched across *proxies*.

    Each proxy must expose the general Classifier service's ``predict``
    operation (train on the fold's training split, label its test split).
    Folds are processed by a pool of worker threads, one per proxy; a fold
    whose worker fails is re-queued for the remaining workers.
    """
    maybe_enable_tracing_from_env()  # opt-in FAEHIM_TRACE=1 hook
    if not proxies:
        raise WorkflowError("need at least one Classifier endpoint")
    attribute = attribute or dataset.class_attribute.name
    folds = stratified_folds(dataset, k, seed)
    labels = dataset.class_attribute.values
    total = EvaluationResult(labels)
    all_indices = set(range(dataset.num_instances))

    # pre-serialise every fold's train/test pair once
    jobs: list[tuple[int, str, str, Dataset]] = []
    for fold_no, fold in enumerate(folds):
        train_idx = sorted(all_indices - set(fold))
        if not train_idx or not fold:
            continue
        train = dataset.subset(train_idx)
        test = dataset.subset(sorted(fold))
        jobs.append((fold_no, arff.dumps(train), arff.dumps(test), test))

    queue = list(jobs)
    queue_lock = threading.Lock()
    merge_lock = threading.Lock()
    outcomes: list[FoldOutcome] = []
    dead_workers: set[int] = set()
    errors: list[Exception] = []
    tracer = get_tracer()
    grid_span = None  # rebound to the root span once dispatch begins
    # captured here because worker threads don't inherit contextvars;
    # an expired budget stops workers taking new folds, and the
    # post-join check below fails the run fast instead of re-dispatching
    deadline = current_deadline()

    def dispatch_fold(proxy, worker_id: int, fold_no: int,
                      train_doc: str, test_doc: str) -> dict:
        # worker threads don't inherit the caller's contextvars, so the
        # per-fold span is parented on the grid root span explicitly
        with tracer.span(f"grid:fold{fold_no}",
                         {"worker": worker_id, "fold": fold_no},
                         parent=grid_span):
            out = proxy.call("predict", classifier=classifier,
                             train=train_doc, test=test_doc,
                             attribute=attribute, options=options or {})
        get_metrics().counter("grid.folds", worker=worker_id).inc()
        return out

    def worker(worker_id: int) -> None:
        proxy = proxies[worker_id]
        while True:
            if deadline is not None and deadline.expired:
                return  # stop taking folds; the join-side check raises
            with queue_lock:
                if not queue:
                    return
                job = queue.pop(0)
            fold_no, train_doc, test_doc, test_ds = job
            try:
                out = dispatch_fold(proxy, worker_id, fold_no,
                                    train_doc, test_doc)
            except (TransportError, ServiceError, OSError) as exc:
                with queue_lock:
                    queue.append(job)  # migrate the fold
                    dead_workers.add(worker_id)
                    alive = len(proxies) - len(dead_workers)
                with merge_lock:
                    outcomes.append(FoldOutcome(fold_no, worker_id,
                                                migrated=True,
                                                completed=False))
                    if alive == 0:
                        errors.append(exc)
                return  # this worker is done for
            fold_result = EvaluationResult(labels)
            predicted = out["labels"]
            for inst, label in zip(test_ds, predicted):
                if inst.class_is_missing(test_ds):
                    continue
                actual = int(inst.class_value(test_ds))
                fold_result.record(
                    actual, list(labels).index(label), inst.weight)
            with merge_lock:
                total.merge(fold_result)
                outcomes.append(FoldOutcome(fold_no, worker_id))

    with tracer.span("grid:cross_validate",
                     {"classifier": classifier, "k": k,
                      "endpoints": len(proxies)}) as root_span:
        if root_span.recording:
            grid_span = root_span
        threads = [threading.Thread(target=worker, args=(i,),
                                    name=f"grid-worker-{i}")
                   for i in range(len(proxies))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if queue and deadline is not None:
            deadline.check("grid cross-validation")
        if queue and errors:
            raise WorkflowError(
                f"{len(queue)} fold(s) undispatchable: all endpoints "
                f"died ({errors[0]!r})")
        if queue:
            # some folds migrated but workers exited; run them on any
            # survivor
            survivors = [i for i in range(len(proxies))
                         if i not in dead_workers]
            if not survivors:
                raise WorkflowError("all grid endpoints failed")
            for job in list(queue):
                queue.remove(job)
                fold_no, train_doc, test_doc, test_ds = job
                proxy = proxies[survivors[0]]
                out = dispatch_fold(proxy, survivors[0], fold_no,
                                    train_doc, test_doc)
                fold_result = EvaluationResult(labels)
                for inst, label in zip(test_ds, out["labels"]):
                    if inst.class_is_missing(test_ds):
                        continue
                    fold_result.record(int(inst.class_value(test_ds)),
                                       list(labels).index(label),
                                       inst.weight)
                total.merge(fold_result)
                outcomes.append(FoldOutcome(fold_no, survivors[0],
                                            attempts=2, migrated=True))
        root_span.set_attribute("migrations",
                                sum(1 for o in outcomes if o.migrated))
        return GridRunReport(result=total, outcomes=outcomes)


def remote_build(proxy, dataset: Dataset, classifier: str = "J48",
                 attribute: str | None = None,
                 options: dict | None = None) -> dict:
    """Grid WEKA's 'building a classifier on a remote machine'."""
    attribute = attribute or dataset.class_attribute.name
    return proxy.call("classifyInstance", classifier=classifier,
                      dataset=arff.dumps(dataset), attribute=attribute,
                      options=options or {})


def remote_label(proxy, train: Dataset, unlabelled: Dataset,
                 classifier: str = "J48",
                 attribute: str | None = None) -> list[str]:
    """Grid WEKA's 'labelling of test data'."""
    attribute = attribute or train.class_attribute.name
    out = proxy.call("predict", classifier=classifier,
                     train=arff.dumps(train),
                     test=arff.dumps(unlabelled), attribute=attribute)
    return out["labels"]
