"""Grid-WEKA-style distributed execution (§2 related work).

The paper positions itself against Grid WEKA, where "execution of the
following tasks can be distributed across several computers contained
within an ad-hoc Grid: labelling of test data using a previously built
classifier, testing a previously built classifier on a dataset, building a
classifier on a remote machine, and cross-validation."

This module provides that capability over this toolkit's services:
:func:`distributed_cross_validate` fans the k folds of a stratified
cross-validation out across a pool of Classifier-service endpoints (each a
separate container/host), merging the per-fold confusion matrices into one
:class:`~repro.ml.evaluation.EvaluationResult`.  Dead endpoints are handled
by migrating their folds to the survivors (§3's fault-tolerance
requirement applied to grid jobs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.data import arff, dataio
from repro.data.dataset import Dataset
from repro.errors import WorkflowError
from repro.ml.evaluation import EvaluationResult, stratified_folds
from repro.obs import (get_metrics, get_tracer,
                       maybe_enable_tracing_from_env)
from repro.ws.scatter import (ScatterGather, ScatterReport,
                              resolve_endpoints)


@dataclass
class FoldOutcome:
    """Bookkeeping for one dispatch attempt of one fold."""

    fold: int
    worker: int
    attempts: int = 1
    migrated: bool = False
    completed: bool = True


@dataclass
class GridRunReport:
    """Result + execution trace of a distributed cross-validation."""

    result: EvaluationResult
    outcomes: list[FoldOutcome] = field(default_factory=list)

    @property
    def migrations(self) -> int:
        return sum(1 for o in self.outcomes if o.migrated)

    def worker_loads(self) -> dict[int, int]:
        """Completed folds per worker (failed attempts excluded)."""
        loads: dict[int, int] = {}
        for outcome in self.outcomes:
            if outcome.completed:
                loads[outcome.worker] = loads.get(outcome.worker, 0) + 1
        return loads


def distributed_cross_validate(proxies: Sequence, dataset: Dataset,
                               classifier: str = "J48",
                               attribute: str | None = None,
                               k: int = 10, seed: int = 1,
                               options: dict | None = None,
                               on_progress=None) -> GridRunReport:
    """Cross-validate *classifier* with folds dispatched across *proxies*.

    Each proxy must expose the general Classifier service's ``predict``
    operation (train on the fold's training split, label its test split).
    *proxies* may also be a mesh endpoint source — any object with a
    ``proxies()`` method (e.g. ``MeshHost.source_for("Classifier")``) —
    resolved to the currently-live replica set at run start.
    Folds are scattered across the proxies one per dispatch (a fold is
    already a coarse work unit) by :class:`~repro.ws.scatter
    .ScatterGather`, which also supplies the migration semantics: a fold
    whose endpoint fails is re-queued for the survivors.

    *on_progress*, when given, is called as ``on_progress(worker,
    fold_numbers, outputs)`` each time a worker finishes a dispatch —
    before the scatter plane hands out more folds — so callers (the
    experiment checkpoint store, a progress bar) can record partial
    completion instead of waiting for the whole run.
    """
    maybe_enable_tracing_from_env()  # opt-in FAEHIM_TRACE=1 hook
    proxies = resolve_endpoints(proxies)
    if not proxies:
        raise WorkflowError("need at least one Classifier endpoint")
    attribute = attribute or dataset.class_attribute.name
    folds = stratified_folds(dataset, k, seed)
    labels = dataset.class_attribute.values
    total = EvaluationResult(labels)
    all_indices = set(range(dataset.num_instances))

    # fold splits are zero-copy views of the dataset's column store;
    # serialisation happens per dispatch through the negotiated-codec
    # memo, so each fold is encoded at most once per wire format
    memo: dict = {}
    jobs: list[tuple[int, Dataset, Dataset, Dataset]] = []
    for fold_no, fold in enumerate(folds):
        train_idx = sorted(all_indices - set(fold))
        if not train_idx or not fold:
            continue
        train = dataset.view(train_idx)
        test = dataset.view(sorted(fold))
        jobs.append((fold_no, train, test, test))

    tracer = get_tracer()
    with tracer.span("grid:cross_validate",
                     {"classifier": classifier, "k": k,
                      "endpoints": len(proxies)}) as root_span:
        grid_span = root_span if root_span.recording else None

        def dispatch(worker_id: int, chunk_items: list,
                     indices: list[int]) -> list[dict]:
            out = []
            for fold_no, train_ds, test_ds, _ in chunk_items:
                train_doc = _negotiated_doc(train_ds, proxies[worker_id],
                                            memo)
                test_doc = _negotiated_doc(test_ds, proxies[worker_id],
                                           memo)
                # worker threads don't inherit the caller's contextvars,
                # so the per-fold span is parented on the grid root
                # span explicitly
                with tracer.span(f"grid:fold{fold_no}",
                                 {"worker": worker_id, "fold": fold_no},
                                 parent=grid_span):
                    out.append(proxies[worker_id].call(
                        "predict", classifier=classifier,
                        train=train_doc, test=test_doc,
                        attribute=attribute, options=options or {}))
                get_metrics().counter("grid.folds",
                                      worker=worker_id).inc()
            return out

        on_chunk = None
        if on_progress is not None:
            def on_chunk(worker_id, indices, outs):
                on_progress(worker_id,
                            [jobs[i][0] for i in indices], outs)

        sg = ScatterGather(len(proxies), chunk=1, max_chunk=1,
                           name="grid")
        report = sg.run(jobs, dispatch, on_chunk=on_chunk)

        outcomes: list[FoldOutcome] = []
        for d in report.dispatches:
            for position in d.indices:
                outcomes.append(FoldOutcome(
                    jobs[position][0], d.endpoint, attempts=d.attempts,
                    migrated=d.migrated or not d.completed,
                    completed=d.completed))
        for (fold_no, _train, _test, test_ds), out in zip(jobs,
                                                          report.results):
            fold_result = EvaluationResult(labels)
            for inst, label in zip(test_ds, out["labels"]):
                if inst.class_is_missing(test_ds):
                    continue
                actual = int(inst.class_value(test_ds))
                fold_result.record(
                    actual, list(labels).index(label), inst.weight)
            total.merge(fold_result)
        root_span.set_attribute("migrations",
                                sum(1 for o in outcomes if o.migrated))
        return GridRunReport(result=total, outcomes=outcomes)


def remote_build(proxy, dataset: Dataset, classifier: str = "J48",
                 attribute: str | None = None,
                 options: dict | None = None) -> dict:
    """Grid WEKA's 'building a classifier on a remote machine'."""
    attribute = attribute or dataset.class_attribute.name
    return proxy.call("classifyInstance", classifier=classifier,
                      dataset=_negotiated_doc(dataset, proxy, {}),
                      attribute=attribute, options=options or {})


def remote_label(proxy, train: Dataset, unlabelled: Dataset,
                 classifier: str = "J48",
                 attribute: str | None = None) -> list[str]:
    """Grid WEKA's 'labelling of test data'."""
    attribute = attribute or train.class_attribute.name
    memo: dict = {}
    out = proxy.call("predict", classifier=classifier,
                     train=_negotiated_doc(train, proxy, memo),
                     test=_negotiated_doc(unlabelled, proxy, memo),
                     attribute=attribute)
    return out["labels"]


@dataclass
class BulkScoreReport:
    """Labels in input order + the scatter-gather execution trace."""

    labels: list
    report: ScatterReport

    @property
    def rebalances(self) -> int:
        return self.report.rebalances


def _as_arff(data) -> str:
    return arff.dumps(data) if isinstance(data, Dataset) else data


def _negotiated_doc(data, proxy, memo: dict):
    """Encode a dataset for *proxy* in the richest codec it speaks.

    Returns *data* unchanged when it is already wire text/bytes.  The
    per-run *memo* (keyed on dataset identity + chosen codec) plus the
    dataset's own version-keyed frame cache mean a fold fanned out to N
    replicas is encoded once per format, not N times.
    """
    if not isinstance(data, Dataset):
        return data
    binary = proxy.speaks(dataio.COLUMNAR)
    key = (id(data), binary)
    doc = memo.get(key)
    if doc is None:
        doc = dataio.to_wire(data, binary)
        memo[key] = doc
    return doc


def scatter_score(proxies: Sequence, train, test,
                  classifier: str = "J48",
                  attribute: str | None = None,
                  options: dict | None = None,
                  chunk: int | None = None,
                  on_progress=None) -> BulkScoreReport:
    """Grid WEKA's bulk 'labelling of test data', scattered.

    Trains *classifier* once per replica (each caches its model) and
    scores *test*'s rows via chunked ``classifyBatch`` calls split
    across *proxies* (a proxy sequence or a mesh endpoint source) by
    :class:`~repro.ws.scatter.ScatterGather` — adaptive chunk sizes,
    input-order merge, migration of failed chunks to surviving
    replicas.  *train*/*test* may be
    :class:`~repro.data.dataset.Dataset` objects or ARFF text.
    *on_progress* is forwarded to :meth:`ScatterGather.run` as its
    per-chunk completion callback: ``on_progress(endpoint,
    row_indices, labels)`` fires as each chunk of rows lands.
    """
    proxies = resolve_endpoints(proxies)
    if not proxies:
        raise WorkflowError("need at least one Classifier endpoint")
    train_ds = (train if isinstance(train, Dataset)
                else dataio.parse_dataset(train))
    attribute = attribute or (
        train_ds.class_attribute.name if train_ds.has_class
        else train_ds.attributes[-1].name)
    n_rows = (test.num_instances if isinstance(test, Dataset)
              else dataio.parse_dataset(test).num_instances)
    memo: dict = {}

    def dispatch(endpoint: int, chunk_rows: list[int],
                 _indices: list[int]) -> list:
        out = proxies[endpoint].call(
            "classifyBatch", classifier=classifier,
            dataset=_negotiated_doc(test, proxies[endpoint], memo),
            attribute=attribute, rows=list(chunk_rows),
            train=_negotiated_doc(train, proxies[endpoint], memo),
            options=options or {})
        return out["labels"]

    sg = ScatterGather(len(proxies), chunk=chunk, name="bulk-score")
    report = sg.run(list(range(n_rows)), dispatch,
                    on_chunk=on_progress)
    return BulkScoreReport(labels=report.results, report=report)
