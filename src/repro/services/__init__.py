"""The data-mining Web Services of the paper: the general Classifier service
(§4.1), the per-algorithm J48 and Cobweb services, the general Clusterer and
Association services, attribute selection, data acquisition/conversion/
streaming, the Mathematica substitute (plot3D) and the GNUPlot substitute."""

from repro.services.advisor_service import AdvisorService
from repro.services.association_service import AssociationService
from repro.services.attrsel_service import AttributeSelectionService
from repro.services.classifier_service import ClassifierService
from repro.services.clusterer_service import ClustererService, CobwebService
from repro.services.data_service import DataService
from repro.services.deploy import (HostedToolbox, TOOLBOX, deploy_toolbox,
                                   serve_toolbox)
from repro.services.j48_service import J48Service
from repro.services.math_service import MathService
from repro.services.plot_service import PlotService, TreeVisualizerService
from repro.services.session_service import SessionService
from repro.services.workspace_service import WorkspaceService
from repro.services import grid

__all__ = [
    "grid",
    "ClassifierService", "J48Service", "ClustererService", "CobwebService",
    "AssociationService", "AttributeSelectionService", "DataService",
    "MathService", "PlotService", "TreeVisualizerService",
    "AdvisorService", "SessionService", "WorkspaceService",
    "TOOLBOX", "deploy_toolbox", "serve_toolbox", "HostedToolbox",
]
