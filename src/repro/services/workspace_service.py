"""Collaborative workspace Web Service (§3, Category 2: "an increasing
number of science and engineering projects are performed in collaborative
mode with physically distributed participants.  It is therefore necessary to
support interaction between such participants in a seamless way").

Participants share *workflows* (as the toolkit's workflow XML) and
*annotations*: one user publishes a composed pipeline under a name, another
lists/fetches it, runs it against their own toolbox bindings, and leaves a
note.  Versions are kept so participants can refer to earlier revisions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import DataError
from repro.ws.service import operation


@dataclass
class _Revision:
    version: int
    author: str
    document: str
    comment: str
    published_at: float


@dataclass
class _SharedWorkflow:
    name: str
    revisions: list[_Revision] = field(default_factory=list)
    annotations: list[dict] = field(default_factory=list)


class WorkspaceService:
    """Shared store of named, versioned workflow documents."""

    def __init__(self) -> None:
        self._workflows: dict[str, _SharedWorkflow] = {}
        self._lock = threading.Lock()

    def _get(self, name: str) -> _SharedWorkflow:
        with self._lock:
            wf = self._workflows.get(name)
        if wf is None:
            raise DataError(f"no shared workflow named {name!r}")
        return wf

    @operation
    def publish(self, name: str, document: str, author: str,
                comment: str = "") -> dict:
        """Publish (a new revision of) a workflow XML document."""
        # validate before sharing: the XML must at least parse
        import xml.etree.ElementTree as ET
        try:
            root = ET.fromstring(document)
        except ET.ParseError as exc:
            raise DataError(f"not a valid workflow document: {exc}")
        if root.tag != "taskgraph":
            raise DataError("document is not a taskgraph")
        with self._lock:
            wf = self._workflows.setdefault(name, _SharedWorkflow(name))
            revision = _Revision(
                version=len(wf.revisions) + 1, author=author,
                document=document, comment=comment,
                published_at=time.time())
            wf.revisions.append(revision)
        return {"name": name, "version": revision.version}

    @operation
    def list(self) -> list:
        """All shared workflows with their latest revision metadata."""
        with self._lock:
            out = []
            for wf in self._workflows.values():
                head = wf.revisions[-1]
                out.append({"name": wf.name, "version": head.version,
                            "author": head.author,
                            "comment": head.comment,
                            "annotations": len(wf.annotations)})
        return sorted(out, key=lambda d: d["name"])

    @operation
    def fetch(self, name: str, version: int = 0) -> dict:
        """Fetch a workflow document (version 0 = latest)."""
        wf = self._get(name)
        if version == 0:
            revision = wf.revisions[-1]
        else:
            matching = [r for r in wf.revisions if r.version == version]
            if not matching:
                raise DataError(
                    f"workflow {name!r} has no version {version} "
                    f"(latest: {wf.revisions[-1].version})")
            revision = matching[0]
        return {"name": name, "version": revision.version,
                "author": revision.author, "document": revision.document}

    @operation
    def history(self, name: str) -> list:
        """Revision history of a shared workflow."""
        wf = self._get(name)
        return [{"version": r.version, "author": r.author,
                 "comment": r.comment} for r in wf.revisions]

    @operation
    def annotate(self, name: str, author: str, text: str) -> int:
        """Leave a note on a shared workflow; returns the note count."""
        wf = self._get(name)
        with self._lock:
            wf.annotations.append({"author": author, "text": text,
                                   "at": time.time()})
            return len(wf.annotations)

    @operation
    def annotations(self, name: str) -> list:
        """All notes on a shared workflow."""
        wf = self._get(name)
        with self._lock:
            return [dict(a) for a in wf.annotations]
