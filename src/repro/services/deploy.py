"""Toolkit deployment: host the full service toolbox in one call.

:func:`deploy_toolbox` stands up a :class:`~repro.ws.container
.ServiceContainer` carrying every data-mining service the paper describes,
plus the UDDI registry service.  :func:`serve_toolbox` additionally binds an
HTTP host and publishes each service's WSDL URL into the registry — the
"hosted at the Welsh e-Science Centre" arrangement of §4.6, on localhost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import maybe_enable_tracing_from_env
from repro.services.advisor_service import AdvisorService
from repro.services.association_service import AssociationService
from repro.services.attrsel_service import AttributeSelectionService
from repro.services.classifier_service import ClassifierService
from repro.services.clusterer_service import ClustererService, CobwebService
from repro.services.data_service import DataService
from repro.services.j48_service import J48Service
from repro.services.math_service import MathService
from repro.services.plot_service import PlotService, TreeVisualizerService
from repro.services.session_service import SessionService
from repro.services.workspace_service import WorkspaceService
from repro.ws.container import ServiceContainer
from repro.ws.httpd import SoapHttpServer
from repro.ws.registry import RegistryService, UDDIRegistry

#: service name -> (implementation class, registry categories)
TOOLBOX = {
    "Classifier": (ClassifierService, ("data-mining", "classification")),
    "J48": (J48Service, ("data-mining", "classification", "trees")),
    "Clusterer": (ClustererService, ("data-mining", "clustering")),
    "Cobweb": (CobwebService, ("data-mining", "clustering")),
    "Association": (AssociationService, ("data-mining", "associations")),
    "AttributeSelection": (AttributeSelectionService,
                           ("data-mining", "attribute-selection")),
    "Data": (DataService, ("data", "conversion", "streaming")),
    "Math": (MathService, ("visualisation", "mathematica")),
    "Plot": (PlotService, ("visualisation", "gnuplot")),
    "TreeVisualizer": (TreeVisualizerService, ("visualisation", "trees")),
    "Advisor": (AdvisorService, ("data-mining", "advice")),
    "Session": (SessionService, ("infrastructure", "sessions")),
    "Workspace": (WorkspaceService, ("infrastructure", "collaboration")),
}


def deploy_toolbox(container: ServiceContainer | None = None,
                   lifecycle: str = "harness") -> ServiceContainer:
    """Deploy every toolbox service (plus the registry) into *container*."""
    maybe_enable_tracing_from_env()  # opt-in FAEHIM_TRACE=1 hook
    container = container or ServiceContainer("faehim")
    for name, (cls, _) in TOOLBOX.items():
        container.deploy(cls, name, lifecycle=lifecycle)
    registry = UDDIRegistry()
    container.deploy(RegistryService, "Registry",
                     factory=lambda: RegistryService(registry))
    return container


@dataclass
class HostedToolbox:
    """A running toolkit host: container + HTTP server + registry."""

    container: ServiceContainer
    server: SoapHttpServer
    registry: UDDIRegistry

    def wsdl_url(self, service: str) -> str:
        """WSDL URL of *service*."""
        return self.server.wsdl_url(service)

    def endpoint(self, service: str) -> str:
        """SOAP endpoint URL of *service*."""
        return self.server.endpoint(service)

    def stop(self) -> None:
        """Shut down and release resources."""
        self.server.stop()

    def __enter__(self) -> "HostedToolbox":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_toolbox(port: int = 0,
                  lifecycle: str = "harness") -> HostedToolbox:
    """Host the toolbox over HTTP and publish every service's WSDL URL."""
    maybe_enable_tracing_from_env()  # opt-in FAEHIM_TRACE=1 hook
    container = ServiceContainer("faehim")
    registry = UDDIRegistry()
    for name, (cls, categories) in TOOLBOX.items():
        container.deploy(cls, name, lifecycle=lifecycle)
    container.deploy(RegistryService, "Registry",
                     factory=lambda: RegistryService(registry))
    server = SoapHttpServer(container, port).start()
    for name, (cls, categories) in TOOLBOX.items():
        registry.publish(name, server.wsdl_url(name), categories,
                         (cls.__doc__ or "").strip().splitlines()[0]
                         if cls.__doc__ else "")
    registry.publish("Registry", server.wsdl_url("Registry"),
                     ("infrastructure",), "UDDI registry service")
    return HostedToolbox(container=container, server=server,
                         registry=registry)
