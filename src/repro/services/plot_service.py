"""GNUPlot-substitute plotting Web Service and the tree-visualiser service.

The paper wraps GNUPlot for general plotting and provides "a tool to
visualize the classifiers list", a "Tree plotter", an "Image Plotter" and a
"Cluster Visualize[r]" (§4.3).  This service exposes those as operations:
ASCII output mirrors GNUPlot's dumb terminal, SVG its graphical terminals.
"""

from __future__ import annotations

import numpy as np

from repro.data import csvio
from repro.errors import DataError
from repro.viz import ascii_plot, treeviz
from repro.ws.service import operation


def _xy_from_csv(points: str) -> tuple[np.ndarray, np.ndarray]:
    ds = csvio.loads(points)
    numeric = [i for i, a in enumerate(ds.attributes) if a.is_numeric]
    if len(numeric) < 2:
        raise DataError("need a CSV with at least two numeric columns")
    x = ds.column(numeric[0])
    y = ds.column(numeric[1])
    keep = ~(np.isnan(x) | np.isnan(y))
    if not keep.any():
        raise DataError("no complete (x, y) rows to plot")
    return x[keep], y[keep]


class PlotService:
    """2-D plotting (GNUPlot wrapper substitute)."""

    @operation
    def plotScatter(self, points: str, title: str = "",  # noqa: N802
                    terminal: str = "dumb") -> str:
        """Scatter-plot the first two numeric CSV columns.

        ``terminal='dumb'`` returns ASCII (GNUPlot's dumb terminal);
        ``'svg'`` returns an SVG document."""
        x, y = _xy_from_csv(points)
        if terminal == "dumb":
            return ascii_plot.scatter(list(x), list(y), title=title)
        if terminal == "svg":
            return ascii_plot.scatter_svg(list(x), list(y), title=title)
        raise DataError(f"unknown terminal {terminal!r} "
                        f"(known: dumb, svg)")

    @operation
    def plotSeries(self, values: list, title: str = "") -> str:  # noqa: N802
        """Line-plot a numeric series against its index (ASCII)."""
        if not values:
            raise DataError("empty series")
        return ascii_plot.line_plot([float(v) for v in values],
                                    title=title)

    @operation
    def plotHistogram(self, labels: list, counts: list,  # noqa: N802
                      title: str = "") -> str:
        """Horizontal bar chart from parallel label/count lists."""
        if len(labels) != len(counts):
            raise DataError("labels and counts must have equal length")
        return ascii_plot.histogram([str(label) for label in labels],
                                    [float(c) for c in counts],
                                    title=title)


class TreeVisualizerService:
    """Tree plotting for classifier/clusterer graphs (§4.1: "The graph can
    then be plotted using an appropriate visualizer; a service to achieve
    this is also provided")."""

    @operation
    def plotTree(self, graph: dict, title: str = "tree",  # noqa: N802
                 format: str = "svg") -> str:
        """Render a node/edge tree graph as 'svg', 'text' or 'dot'."""
        if format == "svg":
            return treeviz.tree_svg(graph, title)
        if format == "text":
            return treeviz.tree_text(graph)
        if format == "dot":
            return treeviz.tree_dot(graph, title)
        raise DataError(f"unknown format {format!r} "
                        f"(known: svg, text, dot)")
