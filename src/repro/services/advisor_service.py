"""Algorithm-advice Web Service (§3: algorithm choice + user experience).

Wraps :mod:`repro.ml.advisor`: dataset characterisation, ranked
recommendations with reasons, and a shared experience store that other
users' recorded outcomes feed into — "the framework should assist the users
to make use of previous experience to select the appropriate tool".
"""

from __future__ import annotations

from repro.data import arff, dataio
from repro.ml.advisor import (ExperienceStore, advise_text, characterise,
                              recommend)
from repro.ws.service import operation


class AdvisorService:
    """Dataset characterisation + algorithm recommendation."""

    def __init__(self, store: ExperienceStore | None = None) -> None:
        self.store = store or ExperienceStore()

    @operation
    def characterise(self, dataset: str, attribute: str) -> dict:
        """Meta-features of an ARFF dataset."""
        ds = dataio.parse_dataset(dataset, attribute)
        return characterise(ds).as_dict()

    @operation
    def recommend(self, dataset: str, attribute: str,
                  top: int = 5) -> list:
        """Ranked algorithm recommendations with reasons."""
        ds = dataio.parse_dataset(dataset, attribute)
        return [{"algorithm": r.algorithm, "score": r.score,
                 "reasons": list(r.reasons)}
                for r in recommend(ds, top=top, experience=self.store)]

    @operation
    def adviseText(self, dataset: str, attribute: str) -> str:  # noqa: N802
        """The full human-readable advice report."""
        ds = dataio.parse_dataset(dataset, attribute)
        return advise_text(ds, self.store)

    @operation
    def recordExperience(self, dataset: str, attribute: str,  # noqa: N802
                         algorithm: str, score: float) -> int:
        """Record a past outcome; returns the store size."""
        ds = dataio.parse_dataset(dataset, attribute)
        self.store.record(ds, algorithm, score, relation=ds.relation)
        return len(self.store)
