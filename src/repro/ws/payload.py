"""Content-addressed payload store and by-reference SOAP transfer.

The paper's §4.5 measurements put most remote-invocation overhead in
*data movement*: every call ships the full ARFF document, and a typical
workflow ships the same document many times (train here, cross-validate
there, summarise somewhere else).  The Grid-DDM literature's answer is
to move **references** instead of data; this module is that answer for
our SOAP data plane:

* :class:`PayloadStore` — a bounded, content-addressed blob store
  (SHA-256 digest → bytes) shared process-wide by clients and
  containers.
* ``externalize`` — before a send, large ``str``/``bytes`` parameters
  whose digest the peer is known to hold are replaced by a
  :class:`PayloadRef`; the SOAP layer encodes it as a tiny
  ``<param xsi:type="repro:payloadRef" digest=... size=... kind=.../>``
  element.  Unknown payloads travel inline once and are *absorbed* into
  the receiving store (see ``absorb_params``), so the next send can go
  by reference.
* ``resolve`` — the receiving side turns a ref back into the full
  value, verifying the content digest.  A digest the store does not
  hold raises :class:`PayloadMissError` (a transient
  :class:`~repro.errors.TransportError`): transports fall back to a
  transparent full-payload resend, and retry policies treat a corrupt
  ref exactly like any other delivery failure.
* gzip helpers — SOAP bodies above :data:`COMPRESS_MIN_BYTES` travel
  gzip-compressed when the peer negotiates ``Content-Encoding``;
  :func:`simulated_wire_size` lets :class:`~repro.ws.transport
  .SimulatedTransport` bill post-compression bytes honestly.
* the shared-memory tier — for a peer the transport knows to share
  this host (see :meth:`~repro.ws.transport.Transport.same_host`),
  large parameters are published once into a :mod:`repro.ws.shm`
  segment and shipped as ``via="shm"`` refs on the *first* send; the
  consumer maps — does not copy — the payload.  Every miss (segment
  evicted, shm unsupported, cross-host peer) falls back to the classic
  store/inline path transparently.

Counters (``repro metrics``): ``ws.payload.ref_sends`` /
``inline_sends`` / ``bytes_saved`` / ``absorbed`` / ``miss`` /
``integrity_failures``, ``ws.compress.*`` and ``ws.shm.publishes`` /
``publish_failures`` / ``hits`` / ``misses`` / ``bytes_mapped`` /
``swept``.

Disable the whole fast path with ``repro run --no-payload-cache`` or
``FAEHIM_NO_FASTPATH=1``; disable only the shared-memory tier with
``FAEHIM_NO_SHM=1`` (or :func:`set_shm_enabled`).
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.data.cache import LruCache
from repro.errors import TransportError
from repro.obs import get_metrics
from repro.ws import shm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ws.soap import SoapRequest

#: Parameters below this many bytes stay inline (refs would not pay).
MIN_REF_BYTES = 1024

#: SOAP bodies above this size are gzip-compressed on negotiating
#: transports (and billed compressed by the simulated network).
COMPRESS_MIN_BYTES = 2048

#: Bounds of the process-global payload store.
STORE_MAX_ENTRIES = 256
STORE_MAX_BYTES = 64 * 1024 * 1024

#: SOAP fault code signalling "peer does not hold that digest".
MISS_FAULTCODE = "repro:PayloadMiss"

_HEX = set("0123456789abcdef")


class PayloadMissError(TransportError):
    """A payload reference could not be resolved locally.

    Transient by design: the sender falls back to an inline resend, and
    the retry machinery treats it like any delivery failure (a corrupt
    ref injected by chaos lands here too).
    """

    def __init__(self, digest: str, message: str | None = None):
        self.digest = digest
        super().__init__(
            message or f"payload {digest[:12]}... not in local store")


@dataclass(frozen=True)
class PayloadRef:
    """A by-reference stand-in for one large parameter value.

    ``via=""`` is the classic contract (resolve from the receiver's
    content-addressed store); ``via="shm"`` additionally offers the
    named shared-memory segment for *digest*, which a same-host
    receiver maps zero-copy before falling back to its store.
    """

    digest: str
    size: int
    kind: str = "str"  # "str" | "bytes"
    via: str = ""      # "" (store) | "shm" (same-host segment)

    def __post_init__(self) -> None:
        if self.kind not in ("str", "bytes"):
            raise TransportError(f"bad payload kind {self.kind!r}")
        if self.via not in ("", "shm"):
            raise TransportError(f"bad payload via {self.via!r}")


def digest_bytes(data: bytes) -> str:
    """SHA-256 hex digest of *data*."""
    return hashlib.sha256(data).hexdigest()


def payload_digest_ok(digest: str) -> bool:
    """True when *digest* is a well-formed SHA-256 hex string."""
    return len(digest) == 64 and set(digest) <= _HEX


def _miss(digest: str, message: str | None = None) -> PayloadMissError:
    """Count and build (not raise) one unresolvable-reference miss."""
    get_metrics().counter("ws.payload.miss").inc()
    return PayloadMissError(digest, message)


class PayloadStore:
    """Thread-safe content-addressed blob store with LRU bounds."""

    def __init__(self, max_entries: int = STORE_MAX_ENTRIES,
                 max_bytes: int = STORE_MAX_BYTES):
        self._cache = LruCache(max_entries, max_bytes)

    def put(self, data: bytes) -> str:
        """Store *data*; returns its digest (idempotent)."""
        digest = digest_bytes(data)
        self._cache.put(digest, data, weight=len(data))
        return digest

    def get(self, digest: str) -> bytes | None:
        """The bytes stored under *digest*, verified, or ``None``.

        Verification guards the by-reference contract: a blob that no
        longer hashes to its key (memory corruption, a tampered store)
        must never be silently substituted for the caller's data.
        """
        data = self._cache.get(digest)
        if data is None:
            return None
        if digest_bytes(data) != digest:
            get_metrics().counter("ws.payload.integrity_failures").inc()
            raise TransportError(
                f"payload digest mismatch for {digest[:12]}... "
                f"(stored content does not hash to its key)")
        return data

    def __contains__(self, digest: str) -> bool:
        return digest in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def total_bytes(self) -> int:
        """Bytes currently held."""
        return self._cache.total_bytes

    def clear(self) -> None:
        """Drop every blob."""
        self._cache.clear()


_enabled = os.environ.get("FAEHIM_NO_FASTPATH", "") not in ("1", "true")
_shm_enabled = os.environ.get("FAEHIM_NO_SHM", "") not in ("1", "true")
_store = PayloadStore()


def set_enabled(on: bool) -> None:
    """Globally enable/disable by-reference transfer + wire compression."""
    global _enabled
    _enabled = bool(on)


def enabled() -> bool:
    """True when the payload fast path is active."""
    return _enabled


def set_shm_enabled(on: bool) -> None:
    """Enable/disable the shared-memory segment tier only."""
    global _shm_enabled
    _shm_enabled = bool(on)


def shm_enabled() -> bool:
    """True when same-host sends may use shared-memory segments."""
    return _shm_enabled and shm.supported()


def get_payload_store() -> PayloadStore:
    """The process-global content-addressed store."""
    return _store


def reset_payload_store() -> None:
    """Empty the global store (test isolation)."""
    _store.clear()


def sweep_shm_orphans() -> int:
    """Reclaim dead-owner ``repro-shm-*`` segments; returns the count.

    The supervisor's crash hygiene: run at fleet startup and whenever a
    worker is unpublished, so a SIGKILLed producer's segments never
    outlive the drill that killed it.
    """
    swept = shm.sweep_orphans()
    if swept:
        get_metrics().counter("ws.shm.swept").inc(swept)
    return swept


def release_shm_segments() -> int:
    """Unlink every segment this process published; returns the count."""
    return shm.get_segment_store().release_owned()


def reset_shm_segments() -> None:
    """Unlink owned segments, drop attached mappings (test isolation)."""
    shm.reset_segment_store()


def shm_counters() -> dict[str, float]:
    """The current ``ws.shm.*`` counter values (label-aggregated) —
    the ``/mesh/status`` evidence that the fast path engaged."""
    values: dict[str, float] = {}
    for name, _labels, counter in get_metrics().counters():
        if name.startswith("ws.shm."):
            values[name] = values.get(name, 0) + counter.value
    return values


class PeerState:
    """Which payload digests one transport's peer is believed to hold."""

    def __init__(self) -> None:
        self._known: set[str] = set()
        self._lock = threading.Lock()

    def knows(self, digest: str) -> bool:
        """True when the peer is believed to hold *digest*."""
        with self._lock:
            return digest in self._known

    def learn(self, digest: str) -> None:
        """Record that the peer now holds *digest*."""
        with self._lock:
            self._known.add(digest)

    def clear(self) -> None:
        """Forget everything (after a miss: the peer lost its store)."""
        with self._lock:
            self._known.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._known)


def _as_bytes(value: str | bytes | memoryview) -> bytes:
    if isinstance(value, str):
        return value.encode("utf-8", "surrogatepass")
    if isinstance(value, memoryview):
        return bytes(value)
    return value


def _local_bytes(digest: str, via: str = "") -> bytes | None:
    """The bytes behind one ref, from the store or (via="shm") a mapped
    segment — the sender-side resolution used to re-inline a ref."""
    data = _store.get(digest)
    if data is None and via == "shm":
        view = shm.get_segment_store().attach(digest)
        if view is not None:
            data = bytes(view)
    return data


def _from_bytes(data: bytes, kind: str) -> str | bytes:
    if kind == "str":
        return data.decode("utf-8", "surrogatepass")
    return data


def _multicall_calls(request: "SoapRequest"):
    """The sub-call list when *request* is a multicall, else ``None``.

    Imported lazily: this module is imported by :mod:`repro.ws.soap`
    itself, so the soap names are only touched at call time (when the
    package is fully loaded), never at import time.
    """
    from repro.ws import soap
    if request.operation != soap.MULTICALL_OP:
        return None
    calls = request.params.get("calls")
    if isinstance(calls, list) and all(
            isinstance(item, soap.SubCall) for item in calls):
        return calls
    return None


def externalize(request: "SoapRequest", peer: PeerState,
                min_bytes: int = MIN_REF_BYTES, *,
                same_host: bool = False) -> "SoapRequest":
    """Return a copy of *request* with large params sent by reference.

    A large ``str``/``bytes`` parameter whose digest *peer* already
    holds becomes a :class:`PayloadRef`; an unknown one stays inline
    (so the receiving side can absorb it) and the digest is recorded as
    known for the next send.  With ``same_host=True`` (the transport
    proved the peer shares this kernel) the value is instead published
    into a shared-memory segment and sent as a ``via="shm"`` ref on the
    *first* send already — any same-host process can map the segment,
    so there is nothing to absorb.  Parameters that are already refs
    are kept when the peer knows them and resolved back to inline
    values when it does not (raising :class:`PayloadMissError` if the
    blob is gone locally too).  With the fast path disabled the request
    passes through untouched (refs still get internalized, so a
    disabled receiver never sees one).  Multicall requests are handled
    per sub-call, so a batch repeating one large ARFF ships it inline
    once and by reference for every later item.
    """
    calls = _multicall_calls(request)
    if calls is not None:
        new_calls, changed = [], False
        for sub in calls:
            new_params, sub_changed = _externalize_params(
                sub.params, peer, min_bytes, same_host)
            new_calls.append(dataclasses.replace(sub, params=new_params)
                             if sub_changed else sub)
            changed = changed or sub_changed
        if not changed:
            return request
        return dataclasses.replace(request, params={"calls": new_calls})
    new_params, changed = _externalize_params(request.params, peer,
                                              min_bytes, same_host)
    if not changed:
        return request
    return dataclasses.replace(request, params=new_params)


def _externalize_params(params: dict, peer: PeerState, min_bytes: int,
                        same_host: bool = False) -> tuple[dict, bool]:
    metrics = get_metrics()
    use_shm = same_host and _enabled and _shm_enabled and shm.supported()
    new_params = {}
    changed = False
    for name, value in params.items():
        if isinstance(value, PayloadRef):
            if _enabled and peer.knows(value.digest):
                new_params[name] = value
            else:
                data = _local_bytes(value.digest, value.via)
                if data is None:
                    raise _miss(value.digest)
                new_params[name] = _from_bytes(data, value.kind)
                changed = True
            continue
        if not _enabled or \
                not isinstance(value, (str, bytes, memoryview)) or \
                len(value) < min_bytes:
            new_params[name] = value
            continue
        data = _as_bytes(value)
        digest = _store.put(data)
        kind = "str" if isinstance(value, str) else "bytes"
        if use_shm and shm.get_segment_store().publish(digest, data):
            # same-host: the segment itself is the transfer, so even a
            # first send goes by reference (a miss on the far side
            # falls back through the classic inline resend)
            peer.learn(digest)
            new_params[name] = PayloadRef(digest, len(data), kind,
                                          via="shm")
            changed = True
            metrics.counter("ws.shm.publishes").inc()
            metrics.counter("ws.payload.ref_sends").inc()
            metrics.counter("ws.payload.bytes_saved").inc(len(data))
            continue
        if use_shm:
            metrics.counter("ws.shm.publish_failures").inc()
        if peer.knows(digest):
            new_params[name] = PayloadRef(digest, len(data), kind)
            changed = True
            metrics.counter("ws.payload.ref_sends").inc()
            metrics.counter("ws.payload.bytes_saved").inc(len(data))
        else:
            peer.learn(digest)
            new_params[name] = value
            metrics.counter("ws.payload.inline_sends").inc()
    return new_params, changed


def internalize(request: "SoapRequest") -> "SoapRequest":
    """Resolve every :class:`PayloadRef` in *request* back to its value
    (the transparent full-payload fallback after a peer miss)."""
    calls = _multicall_calls(request)
    if calls is not None:
        if not refs_in(request):
            return request
        new_calls = [dataclasses.replace(
            sub, params=_internalize_params(sub.params)) for sub in calls]
        return dataclasses.replace(request, params={"calls": new_calls})
    if not any(isinstance(v, PayloadRef)
               for v in request.params.values()):
        return request
    return dataclasses.replace(request,
                               params=_internalize_params(request.params))


def _internalize_params(params: dict) -> dict:
    new_params = {}
    for name, value in params.items():
        if isinstance(value, PayloadRef):
            data = _local_bytes(value.digest, value.via)
            if data is None:
                raise _miss(value.digest)
            value = _from_bytes(data, value.kind)
        new_params[name] = value
    return new_params


def resolve(digest: str, kind: str,
            via: str = "") -> str | bytes | memoryview:
    """Receiving side: a ref element back to its full value.

    A ``via="shm"`` ref is answered from the named shared-memory
    segment when it maps and verifies — ``kind="bytes"`` payloads come
    back as a read-only :class:`memoryview` **into the shared pages**
    (zero-copy; the columnar codec decodes straight from it) — falling
    back to the local store otherwise.  Unknown digests (including
    chaos-corrupted ones) raise :class:`PayloadMissError`; the
    transport layer converts that into the ``repro:PayloadMiss`` fault
    / an inline resend.
    """
    if not payload_digest_ok(digest):
        raise _miss(digest or "(empty)",
                    f"malformed payload digest {digest!r}")
    if via == "shm":
        metrics = get_metrics()
        view = shm.get_segment_store().attach(digest) \
            if _shm_enabled else None
        if view is not None:
            metrics.counter("ws.shm.hits").inc()
            metrics.counter("ws.shm.bytes_mapped").inc(len(view))
            if kind == "str":
                return bytes(view).decode("utf-8", "surrogatepass")
            return view
        metrics.counter("ws.shm.misses").inc()
    data = _store.get(digest)
    if data is None:
        raise _miss(digest)
    get_metrics().counter("ws.payload.ref_hits").inc()
    return _from_bytes(data, kind)


def absorb_params(params: dict, min_bytes: int = MIN_REF_BYTES) -> int:
    """Receiving side: store large inline values so future sends of the
    same content can travel by reference.  Returns the blob count."""
    if not _enabled:
        return 0
    absorbed = 0
    for value in params.values():
        if isinstance(value, (str, bytes)) and len(value) >= min_bytes:
            _store.put(_as_bytes(value))
            absorbed += 1
    if absorbed:
        get_metrics().counter("ws.payload.absorbed").inc(absorbed)
    return absorbed


def refs_in(request: "SoapRequest") -> list[PayloadRef]:
    """Every :class:`PayloadRef` among the request's parameters
    (including those nested inside multicall sub-calls)."""
    calls = _multicall_calls(request)
    if calls is not None:
        return [v for sub in calls for v in sub.params.values()
                if isinstance(v, PayloadRef)]
    return [v for v in request.params.values()
            if isinstance(v, PayloadRef)]


# -- wire compression ---------------------------------------------------------

def maybe_compress(body: bytes,
                   min_bytes: int = COMPRESS_MIN_BYTES
                   ) -> tuple[bytes, str | None]:
    """gzip *body* when it is large enough to pay; returns
    ``(wire_bytes, content_encoding_or_None)``."""
    if not _enabled or len(body) < min_bytes:
        return body, None
    compressed = gzip.compress(body, compresslevel=1)
    if len(compressed) >= len(body):
        return body, None
    metrics = get_metrics()
    metrics.counter("ws.compress.messages").inc()
    metrics.counter("ws.compress.bytes_in").inc(len(body))
    metrics.counter("ws.compress.bytes_out").inc(len(compressed))
    return compressed, "gzip"


def decompress(body: bytes, content_encoding: str | None) -> bytes:
    """Undo :func:`maybe_compress` per the Content-Encoding header."""
    if not content_encoding or content_encoding.lower() == "identity":
        return body
    if content_encoding.lower() != "gzip":
        raise TransportError(
            f"unsupported Content-Encoding {content_encoding!r}")
    try:
        return gzip.decompress(body)
    except OSError as exc:
        raise TransportError(f"corrupt gzip body: {exc}") from exc


def simulated_wire_size(body: bytes) -> int:
    """Bytes this SOAP body occupies on a compressing link.

    :class:`~repro.ws.transport.SimulatedTransport` bills this size so
    the network model reflects the real data plane (post-compression,
    ref-sized envelopes) instead of the uncompressed document.
    """
    wire, _ = maybe_compress(body)
    return len(wire)
