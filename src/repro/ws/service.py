"""Service definitions: how a Python class becomes a Web Service.

Methods decorated with :func:`operation` become WSDL operations; their
annotated parameters become typed message parts.  A
:class:`ServiceDefinition` introspects the class once and then dispatches
SOAP requests to instances, validating parameter names against the
signature — the server-side half of the paper's "Triana creates a tool for
each operation provided by the service".
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Any, Callable, get_type_hints

from repro.errors import ServiceError
from repro.obs import get_metrics, get_tracer
from repro.ws.soap import SoapFault

_TYPE_NAMES = {str: "xsd:string", int: "xsd:int", float: "xsd:double",
               bool: "xsd:boolean", bytes: "xsd:base64Binary",
               dict: "repro:json", list: "repro:json", Any: "repro:json"}


def operation(fn: Callable | None = None, *, doc: str | None = None,
              cacheable: bool = False):
    """Mark a method as a Web Service operation.

    ``cacheable=True`` declares the operation *pure* (its result depends
    only on its arguments), letting the container answer repeat
    invocations from its idempotent-result cache.
    """
    def mark(f: Callable) -> Callable:
        f._ws_operation = True           # type: ignore[attr-defined]
        f._ws_doc = doc or (f.__doc__ or "").strip()  # type: ignore
        f._ws_cacheable = cacheable      # type: ignore[attr-defined]
        return f
    return mark(fn) if fn is not None else mark


@dataclass(frozen=True)
class OperationInfo:
    """Introspected metadata of one operation."""

    name: str
    doc: str
    params: tuple[tuple[str, str], ...]   # (name, xsd type)
    returns: str
    required: tuple[str, ...]             # params with no default
    cacheable: bool = False               # pure: result-cache eligible


@dataclass
class ServiceDefinition:
    """A named service: implementation class + operation table."""

    name: str
    cls: type
    doc: str = ""
    operations: dict[str, OperationInfo] = field(default_factory=dict)

    @classmethod
    def from_class(cls, service_cls: type,
                   name: str | None = None) -> "ServiceDefinition":
        """Introspect ``@operation`` methods of *service_cls*."""
        ops: dict[str, OperationInfo] = {}
        for attr_name, member in inspect.getmembers(
                service_cls, predicate=inspect.isfunction):
            if not getattr(member, "_ws_operation", False):
                continue
            hints = get_type_hints(member)
            signature = inspect.signature(member)
            params = []
            required = []
            for pname, param in signature.parameters.items():
                if pname == "self":
                    continue
                ptype = hints.get(pname, str)
                params.append((pname, _TYPE_NAMES.get(ptype, "repro:json")))
                if param.default is inspect.Parameter.empty:
                    required.append(pname)
            rtype = hints.get("return", str)
            if rtype is type(None):
                returns = "xsd:string"
            else:
                returns = _TYPE_NAMES.get(rtype, "repro:json")
            ops[attr_name] = OperationInfo(
                name=attr_name,
                doc=getattr(member, "_ws_doc", ""),
                params=tuple(params),
                returns=returns,
                required=tuple(required),
                cacheable=getattr(member, "_ws_cacheable", False))
        if not ops:
            raise ServiceError(
                f"{service_cls.__name__} declares no @operation methods")
        return cls(name=name or service_cls.__name__, cls=service_cls,
                   doc=(service_cls.__doc__ or "").strip(), operations=ops)

    def dispatch(self, instance: Any, op_name: str,
                 params: dict[str, Any]) -> Any:
        """Invoke *op_name* on *instance* with SOAP-decoded *params*."""
        info = self.operations.get(op_name)
        if info is None:
            raise SoapFault("soapenv:Client",
                            f"service {self.name!r} has no operation "
                            f"{op_name!r}")
        declared = {p for p, _ in info.params}
        unknown = sorted(set(params) - declared)
        if unknown:
            raise SoapFault("soapenv:Client",
                            f"operation {op_name!r} got unknown "
                            f"parameter(s) {unknown}")
        missing = sorted(set(info.required) - set(params))
        if missing:
            raise SoapFault("soapenv:Client",
                            f"operation {op_name!r} missing required "
                            f"parameter(s) {missing}")
        method = getattr(instance, op_name)
        # per-operation accounting: every services/* operation reports
        # its own span + latency series, nested under the dispatch span
        start = time.perf_counter()
        with get_tracer().span(f"op:{self.name}.{op_name}") as span:
            span.set_attribute("params", len(params))
            try:
                return method(**params)
            finally:
                get_metrics().histogram(
                    "ws.operation.seconds", service=self.name,
                    operation=op_name).observe(
                        time.perf_counter() - start)
