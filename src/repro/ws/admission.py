"""Admission control: token buckets, priority queueing, load shedding.

The paper's Tomcat/Axis deployment survives bursty miners because the
servlet container bounds its worker pool and refuses the overflow; our
equivalent is this module.  An :class:`AdmissionController` decides,
*before any dispatch work happens*, whether a call may run now, wait
briefly in a bounded priority queue, or be shed with
:class:`~repro.errors.OverloadedError` (the ``repro:Overloaded`` SOAP
fault on the wire).  Sheds are deliberately cheap — no lifecycle work,
no instance acquisition, ideally not even an XML parse (the async front
door in :mod:`repro.ws.aserve` reads the caller identity from HTTP
headers) — so a saturated server spends its cycles answering the calls
it admits.

Three mechanisms compose, checked in this order:

1. **Global token bucket** (``rate``/``burst``) — the server's overall
   sustainable request rate.
2. **Per-principal token buckets** (``principal_rate``/
   ``principal_burst``) — one greedy client cannot starve the rest.
3. **Concurrency gate + priority queue** (``max_concurrent``/
   ``max_queue``) — up to ``max_concurrent`` calls run at once; the
   overflow waits in a bounded queue ordered by the request's priority
   (higher wins; FIFO within a class).  A full queue sheds the lowest
   priority — evicting a queued waiter when the newcomer outranks it.

Everything is usable from plain threads *and* from an asyncio event
loop (:meth:`AdmissionController.admit` vs
:meth:`~AdmissionController.admit_async`); wakeups cross the boundary
via ``loop.call_soon_threadsafe``.  Layering: this module is policy —
it must not import transports, servers, clients or chaos
(``tools/layering_lint.py`` enforces it).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.clock import SYSTEM_CLOCK, Clock
from repro.errors import OverloadedError
from repro.obs import get_metrics

__all__ = ["TokenBucket", "AdmissionController", "AdmissionHandler",
           "Ticket"]

#: Fallback ``retry_after_s`` hint when no token bucket can compute a
#: better one (queue sheds): long enough to matter, short enough that a
#: backing-off client re-offers promptly once load drops.
DEFAULT_RETRY_HINT_S = 0.05


class TokenBucket:
    """Classic token bucket on an injectable clock; thread-safe.

    Tokens accrue continuously at ``rate`` per second up to ``burst``;
    :meth:`try_take` never blocks — admission control *sheds*, it does
    not make the server wait on behalf of the client.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Clock = SYSTEM_CLOCK):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(max(burst, 1.0))
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock.monotonic()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock.monotonic()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; ``False`` means shed."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until *tokens* will have accrued (a client hint)."""
        with self._lock:
            self._refill()
            deficit = tokens - self._tokens
            return max(deficit, 0.0) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens


class Ticket:
    """Permission to run one admitted call; release exactly once.

    Context-manager use (``with controller.admit(...):``) is the safe
    idiom; :meth:`release` is idempotent for the manual paths.
    """

    def __init__(self, controller: "AdmissionController"):
        self._controller = controller
        self._released = False

    def release(self) -> None:
        """Give the concurrency slot back (idempotent)."""
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "Ticket":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


@dataclass
class _Waiter:
    """One queued call: who it is, how it ranks, how to wake it."""

    priority: int
    seq: int
    principal: str
    outcome: Optional[str] = None      # "admitted" | "shed" once decided
    event: Optional[threading.Event] = None          # sync waiters
    future: Optional[asyncio.Future] = None          # async waiters
    loop: Optional[asyncio.AbstractEventLoop] = None
    enqueued_at: float = 0.0
    shed_reason: str = ""
    retry_after_s: float = field(default=DEFAULT_RETRY_HINT_S)

    def wake(self, outcome: str) -> None:
        """Deliver the decision (caller holds the controller lock)."""
        self.outcome = outcome
        if self.event is not None:
            self.event.set()
        if self.future is not None and self.loop is not None:
            def _resolve(future: asyncio.Future = self.future,
                         value: str = outcome) -> None:
                if not future.done():
                    future.set_result(value)
            self.loop.call_soon_threadsafe(_resolve)


class AdmissionController:
    """Decide run / wait / shed for every incoming call.

    Thread-safe and loop-safe: the sync server chains call
    :meth:`admit` from worker threads while the async front door calls
    :meth:`admit_async` on the event loop; both feed the same buckets,
    gate and queue, so policy holds across serving planes.

    Parameters
    ----------
    max_concurrent:
        Calls allowed to run simultaneously.
    max_queue:
        Waiters allowed behind the gate before shedding starts.
        ``0`` disables queueing entirely (immediate shed when busy).
    rate / burst:
        Global token bucket; ``None`` disables the global rate limit.
    principal_rate / principal_burst:
        Per-principal buckets, lazily created per identity; ``None``
        disables per-principal limiting.  The anonymous principal
        (``""``) shares one bucket like any other identity.
    queue_timeout_s:
        Longest a call may wait in the queue before being shed.  Wall
        clock (a real ``threading.Event`` wait) — the injectable
        *clock* governs only bucket refill math.
    retry_hint_s:
        The ``retry_after_s`` floor advertised on queue sheds
        (full/evicted/timed out).  Under heavy oversubscription a
        bigger hint is the server's only lever against thousands of
        shed clients re-offering immediately and spending its cycles
        on rejections instead of answers.
    clock:
        Time source for the buckets (tests pass a
        :class:`~repro.clock.FakeClock` for deterministic refill).
    """

    def __init__(self, max_concurrent: int = 8, max_queue: int = 32,
                 rate: float | None = None, burst: float | None = None,
                 principal_rate: float | None = None,
                 principal_burst: float | None = None,
                 queue_timeout_s: float = 1.0,
                 retry_hint_s: float = DEFAULT_RETRY_HINT_S,
                 clock: Clock = SYSTEM_CLOCK):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = int(max_concurrent)
        self.max_queue = int(max_queue)
        self.queue_timeout_s = float(queue_timeout_s)
        self.retry_hint_s = float(retry_hint_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._inflight = 0
        self._seq = 0
        self._queue: list[_Waiter] = []
        self._global_bucket = (
            TokenBucket(rate, burst if burst is not None else rate, clock)
            if rate is not None else None)
        self._principal_rate = principal_rate
        self._principal_burst = (principal_burst if principal_burst
                                 is not None else principal_rate)
        self._principal_buckets: dict[str, TokenBucket] = {}

    # -- introspection -------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def queued(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- the decision --------------------------------------------------------

    def _shed(self, reason: str, principal: str,
              retry_after_s: float) -> OverloadedError:
        metrics = get_metrics()
        metrics.counter("ws.admission.shed", reason=reason).inc()
        if principal:
            metrics.counter("ws.admission.shed_by_principal",
                            principal=principal).inc()
        return OverloadedError(
            f"admission control shed this call ({reason}); "
            f"retry after {retry_after_s:.3f}s",
            retry_after_s=retry_after_s)

    def _check_buckets(self, principal: str) -> None:
        """Raise the rate-limit sheds; cheapest checks first."""
        if self._global_bucket is not None \
                and not self._global_bucket.try_take():
            raise self._shed("rate", principal,
                             self._global_bucket.retry_after())
        if self._principal_rate is not None:
            bucket = self._principal_buckets.get(principal)
            if bucket is None:
                bucket = TokenBucket(self._principal_rate,
                                     self._principal_burst, self._clock)
                self._principal_buckets[principal] = bucket
            if not bucket.try_take():
                raise self._shed("principal_rate", principal,
                                 bucket.retry_after())

    def _gate(self, waiter_factory, principal: str, priority: int):
        """Pass the concurrency gate now, or return an enqueued waiter.

        Returns ``None`` when admitted immediately; otherwise the
        waiter built by *waiter_factory* is queued (possibly evicting a
        lower-priority waiter) and returned.  Raises the shed when
        there is no room at this priority.
        """
        with self._lock:
            if self._inflight < self.max_concurrent:
                self._inflight += 1
                get_metrics().counter("ws.admission.admitted").inc()
                self._note_depth()
                return None
            if len(self._queue) >= self.max_queue:
                victim = self._lowest_ranked()
                if victim is None or victim.priority >= priority:
                    raise self._shed("queue_full", principal,
                                     self._retry_hint())
                # the newcomer outranks the tail of the queue: trade
                self._queue.remove(victim)
                victim.shed_reason = "evicted"
                victim.retry_after_s = self._retry_hint()
                victim.wake("shed")
                get_metrics().counter("ws.admission.evicted").inc()
            self._seq += 1
            waiter = waiter_factory(priority, self._seq, principal)
            waiter.enqueued_at = self._clock.monotonic()
            self._queue.append(waiter)
            get_metrics().counter("ws.admission.queued").inc()
            self._note_depth()
            return waiter

    def _lowest_ranked(self) -> Optional[_Waiter]:
        """The queue's weakest entry: lowest priority, newest within it."""
        if not self._queue:
            return None
        return min(self._queue, key=lambda w: (w.priority, -w.seq))

    def _highest_ranked(self) -> Optional[_Waiter]:
        """The next waiter to run: highest priority, oldest within it."""
        if not self._queue:
            return None
        return max(self._queue, key=lambda w: (w.priority, -w.seq))

    def _retry_hint(self) -> float:
        if self._global_bucket is not None:
            return max(self._global_bucket.retry_after(),
                       self.retry_hint_s)
        return self.retry_hint_s

    def _note_depth(self) -> None:
        metrics = get_metrics()
        metrics.gauge("ws.admission.inflight").set(self._inflight)
        metrics.gauge("ws.admission.queue_depth").set(len(self._queue))

    def _release(self) -> None:
        """One admitted call finished: hand its slot to the best waiter."""
        with self._lock:
            self._inflight -= 1
            runner = self._highest_ranked()
            if runner is not None:
                self._queue.remove(runner)
                self._inflight += 1
                get_metrics().counter("ws.admission.admitted").inc()
                get_metrics().histogram(
                    "ws.admission.queue_wait_seconds").observe(
                    self._clock.monotonic() - runner.enqueued_at)
                runner.wake("admitted")
            self._note_depth()

    def _abandon(self, waiter: _Waiter) -> bool:
        """Remove a timed-out waiter; ``False`` if it was decided first."""
        with self._lock:
            if waiter.outcome is not None:
                return False
            self._queue.remove(waiter)
            self._note_depth()
            return True

    # -- public entry points -------------------------------------------------

    def admit(self, principal: str = "", priority: int = 0) -> Ticket:
        """Admit or shed one call from a plain thread.

        Returns a :class:`Ticket` (use as a context manager around the
        dispatch) or raises :class:`~repro.errors.OverloadedError`.
        Blocks at most ``queue_timeout_s`` while queued.
        """
        self._check_buckets(principal)

        def factory(prio: int, seq: int, who: str) -> _Waiter:
            return _Waiter(priority=prio, seq=seq, principal=who,
                           event=threading.Event())

        waiter = self._gate(factory, principal, priority)
        if waiter is None:
            return Ticket(self)
        waiter.event.wait(self.queue_timeout_s)
        if waiter.outcome == "admitted":
            return Ticket(self)
        if waiter.outcome == "shed":
            raise self._shed(waiter.shed_reason or "evicted", principal,
                             waiter.retry_after_s)
        if self._abandon(waiter):
            raise self._shed("queue_timeout", principal,
                             self._retry_hint())
        # decided while we were giving up: honour the decision
        if waiter.outcome == "admitted":
            return Ticket(self)
        raise self._shed(waiter.shed_reason or "evicted", principal,
                         waiter.retry_after_s)

    async def admit_async(self, principal: str = "",
                          priority: int = 0) -> Ticket:
        """Admit or shed one call from the event loop (never blocks it)."""
        self._check_buckets(principal)
        loop = asyncio.get_running_loop()

        def factory(prio: int, seq: int, who: str) -> _Waiter:
            return _Waiter(priority=prio, seq=seq, principal=who,
                           future=loop.create_future(), loop=loop)

        waiter = self._gate(factory, principal, priority)
        if waiter is None:
            return Ticket(self)
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(waiter.future), self.queue_timeout_s)
        except asyncio.TimeoutError:
            if self._abandon(waiter):
                raise self._shed("queue_timeout", principal,
                                 self._retry_hint()) from None
            outcome = waiter.outcome
        if outcome == "admitted":
            return Ticket(self)
        raise self._shed(waiter.shed_reason or "evicted", principal,
                         waiter.retry_after_s)


class AdmissionHandler:
    """The server-chain step: gate every dispatch through a controller.

    Sits right after the ``deadline`` step in the container chain (see
    ``ServiceContainer(admission=...)``): a call whose budget is spent
    is rejected before it costs an admission token, and an admitted
    call holds its concurrency slot for exactly the stats → cache →
    lifecycle → dispatch span below it.  Raises
    :class:`~repro.errors.OverloadedError`, which the gateways encode
    as the ``repro:Overloaded`` fault — *not* a ``soapenv:Server``
    fault, so client retry policies back off instead of re-offering.
    """

    name = "admission"

    def __init__(self, controller: AdmissionController):
        self.controller = controller

    def handle(self, request: Any, ctx: Any, proceed) -> Any:
        """Admit (or shed) the dispatch, holding the slot across it."""
        ticket = self.controller.admit(principal=request.principal,
                                       priority=request.priority)
        with ticket:
            return proceed(request)

    def __call__(self, request: Any, ctx: Any, proceed) -> Any:
        return self.handle(request, ctx, proceed)
