"""Deadline propagation: one time budget bounds a whole call tree.

The paper's §3 monitoring requirement implies a user waiting on a result;
a production stack additionally needs the *waiting itself* bounded — a
workflow-level budget must limit every nested SOAP call it triggers, and a
call that cannot finish in time must fail fast rather than hang.

A :class:`Deadline` is an absolute expiry on an injectable
:class:`~repro.clock.Clock`.  The *current* deadline travels in a
contextvar: :func:`deadline_scope` installs one for a block (nesting takes
the tighter of parent and child — a child can never extend its parent's
budget), :func:`current_deadline` reads it, and the SOAP layer carries the
remaining budget across hops in a ``<repro:Deadline remainingMs=".."/>``
header (see :mod:`repro.ws.soap`).  Each hop re-anchors the remaining
milliseconds on its own clock, so budgets decrement across machines
without any clock synchronisation.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.clock import SYSTEM_CLOCK, Clock
from repro.errors import DeadlineExceeded

_current: ContextVar["Deadline | None"] = ContextVar(
    "repro_deadline", default=None)


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry instant on a specific clock."""

    expires_at: float
    clock: Clock = field(default=SYSTEM_CLOCK, repr=False)

    @classmethod
    def after(cls, seconds: float,
              clock: Clock = SYSTEM_CLOCK) -> "Deadline":
        """A deadline *seconds* from now on *clock*."""
        return cls(clock.monotonic() + seconds, clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - self.clock.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "call") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        remaining = self.remaining()
        if remaining <= 0:
            raise DeadlineExceeded(
                f"deadline exceeded before {what} "
                f"(over budget by {-remaining:.3f}s)")


def current_deadline() -> Deadline | None:
    """The deadline governing the current context, if any."""
    return _current.get()


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | float | None,
                   clock: Clock = SYSTEM_CLOCK):
    """Install *deadline* (a :class:`Deadline` or seconds-from-now) for
    the block.  Nested scopes keep whichever expiry is tighter."""
    if deadline is None:
        yield current_deadline()
        return
    if not isinstance(deadline, Deadline):
        deadline = Deadline.after(float(deadline), clock)
    outer = _current.get()
    if outer is not None and outer.clock is deadline.clock and \
            outer.expires_at <= deadline.expires_at:
        deadline = outer  # parent is already tighter
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)
