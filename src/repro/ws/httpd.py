"""HTTP hosting of SOAP services (the Tomcat/Axis substitution).

:class:`SoapHttpServer` hosts one :class:`~repro.ws.container
.ServiceContainer` on a localhost port using a threading HTTP server:

* ``POST /services/<name>``            — SOAP invocation
* ``GET  /services/<name>?wsdl``       — the service's WSDL document
* ``GET  /services``                   — plain-text service index

Addresses follow the paper's convention of one endpoint per service, so the
workflow engine can show "a URL specifying the location of the WSDL document"
for each imported tool.

Pass ``uds_path=...`` to additionally serve the same container over a
Unix domain socket (``unix://`` endpoints, see
:class:`~repro.ws.transport.UnixSocketTransport`) — the same-host fast
path that skips the TCP loopback stack entirely.

The handler here is pure HTTP mechanics (routing, header parsing, byte
I/O); everything between "POST body arrived" and "bytes to answer with"
— decompression, envelope decode, deadline shedding, tracing, fault
mapping, response compression, metrics — lives in
:class:`repro.ws.pipeline.HttpGateway`, keeping this module free of
policy imports (enforced by ``tools/layering_lint.py``).
"""

from __future__ import annotations

import os
import socket
import socketserver
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

from repro.errors import ServiceError
from repro.ws import shm, wsdl
from repro.ws.container import ServiceContainer
from repro.ws.pipeline import HttpGateway
from repro.ws.soap import SoapFault


class _Handler(BaseHTTPRequestHandler):
    server_version = "ReproSOAP/1.0"
    # HTTP/1.1 keep-alive: clients pool one connection across exchanges
    # (every response carries Content-Length, so pipelined framing is
    # unambiguous).  The client side heals pooled connections the server
    # has since dropped — see HttpTransport's stale-retry.
    protocol_version = "HTTP/1.1"
    # one coalesced send per response (headers + body), and no Nagle
    # stall on what remains: an un-buffered two-write response against
    # a keep-alive connection costs a ~40ms delayed-ACK pause per call
    wbufsize = -1
    disable_nagle_algorithm = True
    container: ServiceContainer  # injected by the server factory
    gateway: HttpGateway         # injected by the server factory
    base_url: str

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test output clean; stats live on the container

    def _send(self, status: int, body: bytes,
              content_type: str = "text/xml; charset=utf-8",
              encoding: str | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        # capability advertisement: clients upgrade dataset arguments
        # from ARFF text to binary columnar frames once they see this
        self.send_header("X-Repro-Codecs", "columnar")
        # same-host advertisement: a client seeing its own boot id may
        # send shared-memory payload refs instead of inline bytes
        self.send_header("X-Repro-Boot", shm.boot_id())
        if encoding:
            self.send_header("Content-Encoding", encoding)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _service_name(self) -> str | None:
        path = urlparse(self.path).path
        parts = [p for p in path.split("/") if p]
        if len(parts) == 2 and parts[0] == "services":
            return parts[1]
        return None

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        if parsed.path.rstrip("/") == "/services":
            body = "\n".join(self.container.services()).encode()
            self._send(200, body, "text/plain; charset=utf-8")
            return
        name = self._service_name()
        if name is None or "wsdl" not in parsed.query.lower():
            self._send(404, b"not found", "text/plain")
            return
        try:
            definition = self.container.definition(name)
        except (ServiceError, SoapFault):
            self._send(404, f"no service {name!r}".encode(), "text/plain")
            return
        address = f"{self.base_url}/services/{name}"
        self._send(200, wsdl.generate(definition, address).encode())

    def do_POST(self) -> None:  # noqa: N802
        name = self._service_name()
        if name is None:
            self._send(404, b"not found", "text/plain")
            return
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length)
        status, body, content_type, encoding = self.gateway.post(
            name, raw,
            content_encoding=self.headers.get("Content-Encoding"),
            accept_encoding=self.headers.get("Accept-Encoding"))
        self._send(status, body, content_type, encoding)


class _UnixHandler(_Handler):
    # TCP_NODELAY does not exist on AF_UNIX sockets (setup() would
    # raise); there is no Nagle to disable either
    disable_nagle_algorithm = False


class _UnixThreadingHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to an ``AF_UNIX`` stream socket."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        # HTTPServer.server_bind unpacks (host, port) and resolves the
        # fqdn — meaningless for a filesystem address; bind raw and pin
        # the HTTP-level identity instead
        socketserver.TCPServer.server_bind(self)
        self.server_name = "localhost"
        self.server_port = 0


class SoapHttpServer:
    """A threaded SOAP-over-HTTP host bound to 127.0.0.1.

    With ``uds_path`` the same container is *also* served on a Unix
    domain socket at that path (stale socket files are replaced); both
    listeners share one :class:`~repro.ws.pipeline.HttpGateway`, so
    policy and metrics are identical across transports.
    """

    def __init__(self, container: ServiceContainer, port: int = 0,
                 compress: bool = True, uds_path: str | None = None):
        handler = type("BoundHandler", (_Handler,), {})
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), handler)
        self.port = self._httpd.server_address[1]
        self.base_url = f"http://127.0.0.1:{self.port}"
        handler.container = container
        handler.gateway = HttpGateway(container, compress=compress)
        handler.base_url = self.base_url
        self.container = container
        self.uds_path: str | None = None
        self._uds_httpd: _UnixThreadingHTTPServer | None = None
        if uds_path:
            uds_handler = type("BoundUnixHandler", (_UnixHandler,), {})
            uds_handler.container = container
            uds_handler.gateway = handler.gateway
            uds_handler.base_url = self.base_url
            if os.path.exists(uds_path):
                os.unlink(uds_path)
            self._uds_httpd = _UnixThreadingHTTPServer(
                uds_path, uds_handler)
            self.uds_path = uds_path
        self._thread: threading.Thread | None = None
        self._uds_thread: threading.Thread | None = None

    def start(self) -> "SoapHttpServer":
        """Start serving in a background thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name=f"soap-httpd-{self.port}")
        self._thread.start()
        if self._uds_httpd is not None:
            self._uds_thread = threading.Thread(
                target=self._uds_httpd.serve_forever, daemon=True,
                name=f"soap-httpd-uds-{self.port}")
            self._uds_thread.start()
        return self

    def stop(self) -> None:
        """Shut down and release resources."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread:
            self._thread.join(timeout=5)
        if self._uds_httpd is not None:
            self._uds_httpd.shutdown()
            self._uds_httpd.server_close()
            if self._uds_thread:
                self._uds_thread.join(timeout=5)
            if self.uds_path and os.path.exists(self.uds_path):
                os.unlink(self.uds_path)

    def endpoint(self, service: str) -> str:
        """The SOAP endpoint URL of *service*."""
        return f"{self.base_url}/services/{service}"

    def uds_endpoint(self, service: str) -> str:
        """The ``unix://`` endpoint URL of *service* (uds_path set)."""
        if not self.uds_path:
            raise ServiceError("server has no unix socket listener")
        from repro.ws.transport import unix_url
        return unix_url(self.uds_path, f"/services/{service}")

    def wsdl_url(self, service: str) -> str:
        """The WSDL URL of *service*."""
        return f"{self.endpoint(service)}?wsdl"

    def __enter__(self) -> "SoapHttpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
