"""HTTP hosting of SOAP services (the Tomcat/Axis substitution).

:class:`SoapHttpServer` hosts one :class:`~repro.ws.container
.ServiceContainer` on a localhost port using a threading HTTP server:

* ``POST /services/<name>``            — SOAP invocation
* ``GET  /services/<name>?wsdl``       — the service's WSDL document
* ``GET  /services``                   — plain-text service index

Addresses follow the paper's convention of one endpoint per service, so the
workflow engine can show "a URL specifying the location of the WSDL document"
for each imported tool.
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

from repro.errors import DeadlineExceeded, ServiceError, TransportError
from repro.obs import SpanContext, get_metrics, get_tracer
from repro.ws import payload as wspayload
from repro.ws import soap, wsdl
from repro.ws.container import ServiceContainer
from repro.ws.payload import PayloadMissError
from repro.ws.soap import DEADLINE_FAULTCODE, SoapFault


class _Handler(BaseHTTPRequestHandler):
    server_version = "ReproSOAP/1.0"
    container: ServiceContainer  # injected by the server factory
    base_url: str
    compress: bool = True  # gzip responses for gzip-accepting clients

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test output clean; stats live on the container

    def _send(self, status: int, body: bytes,
              content_type: str = "text/xml; charset=utf-8",
              allow_gzip: bool = False) -> None:
        encoding = None
        if allow_gzip and self.compress and "gzip" in \
                (self.headers.get("Accept-Encoding") or "").lower():
            body, encoding = wspayload.maybe_compress(body)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        if encoding:
            self.send_header("Content-Encoding", encoding)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _service_name(self) -> str | None:
        path = urlparse(self.path).path
        parts = [p for p in path.split("/") if p]
        if len(parts) == 2 and parts[0] == "services":
            return parts[1]
        return None

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        if parsed.path.rstrip("/") == "/services":
            body = "\n".join(self.container.services()).encode()
            self._send(200, body, "text/plain; charset=utf-8")
            return
        name = self._service_name()
        if name is None or "wsdl" not in parsed.query.lower():
            self._send(404, b"not found", "text/plain")
            return
        try:
            definition = self.container.definition(name)
        except (ServiceError, SoapFault):
            self._send(404, f"no service {name!r}".encode(), "text/plain")
            return
        address = f"{self.base_url}/services/{name}"
        self._send(200, wsdl.generate(definition, address).encode())

    def do_POST(self) -> None:  # noqa: N802
        name = self._service_name()
        if name is None:
            self._send(404, b"not found", "text/plain")
            return
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length)
        start = time.perf_counter()
        status = 200
        tracer = get_tracer()
        try:
            try:
                raw = wspayload.decompress(
                    raw, self.headers.get("Content-Encoding"))
            except TransportError as exc:
                self._send(400, str(exc).encode(), "text/plain")
                status = 400
                return
            request = soap.decode_request(raw)
            request.service = name  # the URL wins over the envelope
            if request.deadline_s is not None and request.deadline_s <= 0:
                # budget already spent: reject before dispatch so a
                # hammered server sheds doomed work at the front door
                get_metrics().counter("ws.http.deadline_rejections",
                                      service=name).inc()
                raise DeadlineExceeded(
                    f"time budget exhausted before dispatching "
                    f"POST /services/{name}")
            # tag the handler span with the trace context the SOAP
            # header carried, so server-side spans join the client trace
            parent = SpanContext(request.trace_id,
                                 request.parent_span_id) \
                if request.trace_id else None
            with tracer.span(f"http:POST /services/{name}",
                             {"request_bytes": len(raw)},
                             parent=parent) as span:
                response = self.container.invoke(request)
                body = soap.encode_response(response)
                span.set_attribute("response_bytes", len(body))
                span.set_attribute("http_status", status)
            self._send(200, body, allow_gzip=True)
        except PayloadMissError as exc:
            # the client referenced a blob this process does not hold:
            # answer with the dedicated fault so it resends inline
            status = 500
            self._send(500, soap.encode_fault(SoapFault(
                wspayload.MISS_FAULTCODE, str(exc), detail=exc.digest)))
        except SoapFault as fault:
            status = 500
            self._send(500, soap.encode_fault(fault))
        except DeadlineExceeded as exc:
            status = 500
            self._send(500, soap.encode_fault(
                SoapFault(DEADLINE_FAULTCODE, str(exc))))
        except ServiceError as exc:
            status = 500
            self._send(500, soap.encode_fault(
                SoapFault("soapenv:Server", str(exc))))
        finally:
            metrics = get_metrics()
            metrics.counter("ws.http.requests", service=name,
                            status=status).inc()
            metrics.histogram("ws.http.seconds", service=name).observe(
                time.perf_counter() - start)


class SoapHttpServer:
    """A threaded SOAP-over-HTTP host bound to 127.0.0.1."""

    def __init__(self, container: ServiceContainer, port: int = 0,
                 compress: bool = True):
        handler = type("BoundHandler", (_Handler,), {})
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), handler)
        self.port = self._httpd.server_address[1]
        self.base_url = f"http://127.0.0.1:{self.port}"
        handler.container = container
        handler.base_url = self.base_url
        handler.compress = compress
        self.container = container
        self._thread: threading.Thread | None = None

    def start(self) -> "SoapHttpServer":
        """Start serving in a background thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name=f"soap-httpd-{self.port}")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and release resources."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread:
            self._thread.join(timeout=5)

    def endpoint(self, service: str) -> str:
        """The SOAP endpoint URL of *service*."""
        return f"{self.base_url}/services/{service}"

    def wsdl_url(self, service: str) -> str:
        """The WSDL URL of *service*."""
        return f"{self.endpoint(service)}?wsdl"

    def __enter__(self) -> "SoapHttpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
