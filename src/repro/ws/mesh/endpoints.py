"""Mesh endpoint discovery: the registry as a live replica source.

The mesh publishes every worker replica into the UDDI registry under
``{service}@{worker_id}`` with a ``service:{name}`` category and the
service's WSDL ``portType``; a crashed worker's leases expire (or its
breaker marks it ``down``), so *reading the registry* is all the
discovery the router and the callers need:

* :class:`RegistryEndpoints` answers "which live replicas implement
  service X right now?" for the router, and feeds breaker verdicts back
  as registry health states.
* :class:`ServiceEndpoints` is the *caller*-facing source: it binds one
  service name and materialises a :class:`~repro.ws.client.ServiceProxy`
  per live replica on demand — the shape
  :func:`repro.ws.scatter.resolve_endpoints` duck-types, so
  ``ScatterGather``, ``grid.*`` and the experiment runner consume
  discovery instead of static endpoint lists.

Both work against a local :class:`~repro.ws.registry.UDDIRegistry`
object or a remote hosted ``Registry`` service (pass its endpoint URL),
so out-of-process callers discover over SOAP like everything else.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import RegistryError
from repro.ws.registry import HEALTH_DOWN, UDDIRegistry

#: Category every mesh replica is published under, plus the per-service
#: ``service:{name}`` tag the inquiry index keys on.
MESH_CATEGORY = "mesh-worker"


def service_category(service: str) -> str:
    """The registry category tagging replicas of *service*."""
    return f"service:{service}"


def port_type_of(service: str) -> str:
    """The WSDL portType name of *service* (equivalence key)."""
    return f"{service}PortType"


def endpoint_url_of(wsdl_url: str) -> str:
    """The SOAP endpoint URL behind a ``...?wsdl`` URL."""
    return wsdl_url.split("?", 1)[0]


@dataclass(frozen=True)
class MeshEndpoint:
    """One live replica of a service."""

    name: str       # registry entry name, e.g. "Classifier@w2"
    service: str    # logical service name
    url: str        # SOAP endpoint URL (stable identity: TCP)
    wsdl_url: str
    health: str = "up"
    uds_url: str = ""  # same-host fast-path endpoint, "" if none


def _entry_to_endpoint(service: str, entry) -> MeshEndpoint:
    """Normalise a RegistryEntry or its dict form into a MeshEndpoint."""
    if isinstance(entry, dict):
        name, wsdl_url = entry["name"], entry["wsdl_url"]
        health = entry.get("health", "up")
        uds_url = entry.get("uds_url", "")
    else:
        name, wsdl_url = entry.name, entry.wsdl_url
        health = entry.health
        uds_url = getattr(entry, "uds_url", "")
    return MeshEndpoint(name=name, service=service,
                        url=endpoint_url_of(wsdl_url),
                        wsdl_url=wsdl_url, health=health,
                        uds_url=uds_url)


class RegistryEndpoints:
    """Live replica discovery over a local or remote registry.

    *registry* is either a :class:`UDDIRegistry` object (the in-process
    mesh arrangement) or the endpoint URL of a hosted ``Registry``
    service (``http://host:port/services/Registry``) — inquiry then
    travels over SOAP.  Health feedback is best-effort and local-only:
    a remote consumer observes health, it does not vote.
    """

    def __init__(self, registry: UDDIRegistry | str):
        self._registry = registry if not isinstance(registry, str) \
            else None
        self._registry_url = registry if isinstance(registry, str) \
            else None
        self._proxy = None
        self._proxy_lock = threading.Lock()
        #: last health verdict sent per entry, so repeated successes
        #: do not spam the registry with no-op updates
        self._noted: dict[str, str] = {}

    # -- inquiry ---------------------------------------------------------

    def endpoints(self, service: str) -> list[MeshEndpoint]:
        """Live, non-``down`` replicas of *service*, name-ordered.

        Replica lookup goes through the category index
        (``service:{name}``), which by construction equals the
        same-portType equivalence class — any entry returned here is a
        valid substitution target for any other.  A registry without
        mesh replicas falls back to the exact-name entry (the plain
        hosted-toolbox arrangement), so mesh-aware callers work
        unchanged against a singleton deployment.
        """
        entries = self._inquire(f"{service}@*", service_category(service))
        if not entries:
            entries = self._inquire(service, None)
        return [_entry_to_endpoint(service, e) for e in entries]

    def service_names(self) -> list[str]:
        """Logical services with at least one live replica."""
        names: set[str] = set()
        for entry in self._inquire("*", None):
            categories = entry["categories"] if isinstance(entry, dict) \
                else entry.categories
            for category in categories:
                if category.startswith("service:"):
                    names.add(category.split(":", 1)[1])
        return sorted(names)

    def _inquire(self, pattern: str, category: str | None) -> list:
        if self._registry is not None:
            return self._registry.inquire(pattern, category,
                                          healthy_only=True)
        return [e for e in self._remote_proxy().call(
                    "inquire", pattern=pattern, category=category or "",
                    healthy_only=True)]

    def _remote_proxy(self):
        with self._proxy_lock:
            if self._proxy is None:
                from repro.ws.client import ServiceProxy
                self._proxy = ServiceProxy.from_wsdl_url(
                    f"{self._registry_url}?wsdl")
            return self._proxy

    # -- health feedback -------------------------------------------------

    def note_health(self, name: str, health: str) -> None:
        """Record a router verdict (breaker open = ``down``) for *name*.

        Best-effort: an entry whose lease already expired is simply
        gone, and remote registries are observe-only.
        """
        if self._registry is None or self._noted.get(name) == health:
            return
        self._noted[name] = health
        try:
            self._registry.set_health(name, health)
        except RegistryError:
            self._noted.pop(name, None)

    def is_down(self, name: str) -> bool:
        """Was *name* last noted ``down``?"""
        return self._noted.get(name) == HEALTH_DOWN

    def source_for(self, service: str) -> "ServiceEndpoints":
        """A caller-facing, proxy-materialising source for *service*."""
        return ServiceEndpoints(self, service)


class ServiceEndpoints:
    """A mesh-aware endpoint source for the scatter/grid/runner callers.

    ``proxies()`` answers one :class:`~repro.ws.client.ServiceProxy` per
    *currently live* replica — the duck-typed protocol
    :func:`repro.ws.scatter.resolve_endpoints` resolves.  Proxies are
    cached per endpoint URL, so repeated resolution (each grid batch,
    each scatter run) reuses warm keep-alive transports, and a replica
    that died and came back on a new port gets a fresh proxy
    automatically.
    """

    def __init__(self, discovery: RegistryEndpoints, service: str):
        self.discovery = discovery
        self.service = service
        self._proxies: dict[str, object] = {}
        self._lock = threading.Lock()

    def endpoints(self) -> list[MeshEndpoint]:
        """The service's live replicas right now."""
        return self.discovery.endpoints(self.service)

    def proxies(self) -> list:
        """One client proxy per live replica (cached per URL)."""
        from repro.ws.client import ServiceProxy
        out = []
        for endpoint in self.endpoints():
            with self._lock:
                proxy = self._proxies.get(endpoint.url)
                if proxy is None:
                    proxy = ServiceProxy.from_wsdl_url(endpoint.wsdl_url)
                    self._proxies[endpoint.url] = proxy
            out.append(proxy)
        return out
