"""The mesh front door: one stable HTTP endpoint over a churning fleet.

Clients talk to the gateway exactly as they would to a single
:class:`~repro.ws.httpd.SoapHttpServer` — same paths, same envelopes,
same faults, same gzip negotiation — because the gateway *reuses* the
PR-4 :class:`~repro.ws.pipeline.HttpGateway` for all byte-level policy
and swaps only the thing behind it: instead of a local container,
:class:`MeshIngress` forwards each decoded request through a client
interceptor chain whose terminal step is the
:class:`~repro.ws.mesh.router.MeshRoute`.  Routing therefore composes
with the standard deadline / trace / metrics steps like any other
chain member — the tentpole's "routing as an interceptor-chain step".

WSDL requests are answered by fetching a live replica's document and
re-pointing its ``soap:address`` at the gateway, so
``ServiceProxy.from_wsdl_url(gateway.wsdl_url("Classifier"))`` binds a
proxy whose calls ride the mesh without knowing it exists.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

from repro.errors import TransportError
from repro.ws import shm
from repro.ws.client import fetch_url
from repro.ws.deadline import deadline_scope
from repro.ws.mesh.endpoints import RegistryEndpoints
from repro.ws.mesh.router import MeshRoute, MeshRouter
from repro.ws.pipeline import (CallContext, CallMetrics, CallTrace,
                               HttpGateway, ProxyDeadline, run_chain)
from repro.ws.soap import SoapRequest, SoapResponse


def default_gateway_chain(router: MeshRouter) -> list:
    """The gateway's client chain: deadline → trace → metrics → route.

    The route step is terminal; everything before it is exactly what a
    direct client proxy runs, so routed calls get budget re-stamping,
    span parenting and per-call metrics for free.
    """
    return [ProxyDeadline(), CallTrace(), CallMetrics(),
            MeshRoute(router)]


def _unrouted(request: SoapRequest) -> SoapResponse:
    raise TransportError(
        "mesh gateway chain has no terminal route step")


class MeshIngress:
    """A duck-typed 'container' whose invoke() routes across the mesh.

    :class:`~repro.ws.pipeline.HttpGateway` only ever calls
    ``container.invoke(request)``, so satisfying that one method buys
    the whole ingress policy surface — decompression, front-door
    deadline shedding, payload-miss / overload / deadline fault
    mapping, response compression, ``ws.http.*`` metrics — unchanged.
    """

    def __init__(self, router: MeshRouter, chain: list | None = None):
        self.router = router
        self.chain = chain if chain is not None \
            else default_gateway_chain(router)

    def invoke(self, request: SoapRequest) -> SoapResponse:
        """Route one decoded request through the gateway's client chain."""
        ctx = CallContext(kind="mesh", endpoint="mesh",
                          service=request.service,
                          operation=request.operation)
        # re-anchor the caller's remaining budget so the deadline step
        # re-stamps it net of gateway time, and the routed send inherits
        # it as an ambient scope (timeout shrinks hop by hop)
        with deadline_scope(request.deadline_s):
            return run_chain(self.chain, request, ctx, _unrouted)


class _MeshHandler(BaseHTTPRequestHandler):
    server_version = "ReproMesh/1.0"
    protocol_version = "HTTP/1.1"
    # one coalesced send per response (headers + body), and no Nagle
    # stall on what remains: an un-buffered two-write response against
    # a keep-alive connection costs a ~40ms delayed-ACK pause per call
    wbufsize = -1
    disable_nagle_algorithm = True
    gateway: HttpGateway          # injected by MeshGateway
    discovery: RegistryEndpoints  # injected by MeshGateway
    base_url: str
    status_fn: object = None

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # mesh telemetry lives in metrics, not stderr

    def _send(self, status: int, body: bytes,
              content_type: str = "text/xml; charset=utf-8",
              encoding: str | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("X-Repro-Codecs", "columnar")
        self.send_header("X-Repro-Boot", shm.boot_id())
        if encoding:
            self.send_header("Content-Encoding", encoding)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _service_name(self) -> str | None:
        path = urlparse(self.path).path
        parts = [p for p in path.split("/") if p]
        if len(parts) == 2 and parts[0] == "services":
            return parts[1]
        return None

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/")
        if path == "/services":
            body = "\n".join(self.discovery.service_names()).encode()
            self._send(200, body, "text/plain; charset=utf-8")
            return
        if path == "/mesh/status":
            status = self.status_fn() if self.status_fn else {}
            self._send(200, json.dumps(status, indent=2).encode(),
                       "application/json")
            return
        name = self._service_name()
        if name is None or "wsdl" not in parsed.query.lower():
            self._send(404, b"not found", "text/plain")
            return
        endpoints = self.discovery.endpoints(name)
        if not endpoints:
            self._send(404, f"no live replica of {name!r}".encode(),
                       "text/plain")
            return
        replica = endpoints[0]
        try:
            document = fetch_url(replica.wsdl_url)
        except TransportError as exc:
            self._send(502, str(exc).encode(), "text/plain")
            return
        # the generated WSDL carries the replica's endpoint URL exactly
        # once, in soap:address/@location — re-point it at the gateway
        document = document.replace(
            replica.url, f"{self.base_url}/services/{name}")
        self._send(200, document.encode())

    def do_POST(self) -> None:  # noqa: N802
        name = self._service_name()
        if name is None:
            self._send(404, b"not found", "text/plain")
            return
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length)
        status, body, content_type, encoding = self.gateway.post(
            name, raw,
            content_encoding=self.headers.get("Content-Encoding"),
            accept_encoding=self.headers.get("Accept-Encoding"))
        self._send(status, body, content_type, encoding)


class MeshGateway:
    """The mesh's stable HTTP front, bound to 127.0.0.1.

    Same surface as :class:`~repro.ws.httpd.SoapHttpServer` — ``POST
    /services/<name>``, ``GET /services/<name>?wsdl``, ``GET
    /services`` — plus ``GET /mesh/status`` (JSON fleet/profile
    snapshot via the injected *status_fn*).
    """

    def __init__(self, router: MeshRouter,
                 discovery: RegistryEndpoints, port: int = 0,
                 compress: bool = True, chain: list | None = None,
                 status_fn=None):
        handler = type("BoundMeshHandler", (_MeshHandler,), {})
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), handler)
        self.port = self._httpd.server_address[1]
        self.base_url = f"http://127.0.0.1:{self.port}"
        self.router = router
        self.ingress = MeshIngress(router, chain=chain)
        handler.gateway = HttpGateway(self.ingress, compress=compress)
        handler.discovery = discovery
        handler.base_url = self.base_url
        if status_fn is not None:
            handler.status_fn = staticmethod(status_fn)
        self._thread: threading.Thread | None = None

    def start(self) -> "MeshGateway":
        """Start serving in a background thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name=f"mesh-gateway-{self.port}")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the front door and the router's pooled transports."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread:
            self._thread.join(timeout=5)
        self.router.close()

    def endpoint(self, service: str) -> str:
        """The mesh-fronted SOAP endpoint URL of *service*."""
        return f"{self.base_url}/services/{service}"

    def wsdl_url(self, service: str) -> str:
        """The mesh-fronted WSDL URL of *service*."""
        return f"{self.endpoint(service)}?wsdl"

    def __enter__(self) -> "MeshGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
