"""Per-endpoint latency/error profiles mined from the telemetry streams.

The adaptive routing policy needs one number per endpoint: "how
expensive is sending the next call here?".  This module maintains that
number the same way the scatter-gather plane sizes its chunks — an
exponentially weighted moving average — fed from two sources:

* **Direct observation.**  The router files every send's latency (or
  failure) as it happens.
* **Trace mining.**  :meth:`ProfileBook.mine_spans` replays the
  ``send:*`` spans the tracing plane already collects (each carries an
  ``endpoint`` attribute and ok/error status), so a fresh router warms
  its profiles from history instead of starting blind — the
  "mine the usage logs to drive composition" move from the related
  work, applied to replica choice.

Failures decay the same EWMA toward an error *rate* in [0, 1]; the
blended :meth:`EndpointProfile.cost` is what the policy ranks on.
"""

from __future__ import annotations

from typing import Iterable

from repro.clock import SYSTEM_CLOCK, Clock

#: EWMA smoothing factor — matches the scatter plane's default: heavy
#: enough to move within a handful of calls, light enough to ride out
#: one outlier.
DEFAULT_ALPHA = 0.3

#: Cost penalty for a 100% error rate, in seconds.  One failed send is
#: worth ~a breaker cooldown of latency: erroring endpoints sort last.
ERROR_PENALTY_S = 30.0


class EndpointProfile:
    """EWMA latency + error rate for one endpoint."""

    __slots__ = ("alpha", "latency_s", "error_rate", "observations",
                 "last_observed")

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        self.alpha = alpha
        self.latency_s: float | None = None
        self.error_rate = 0.0
        self.observations = 0
        self.last_observed: float | None = None

    def observe(self, seconds: float) -> None:
        """Fold one successful send's latency into the profile."""
        seconds = max(0.0, float(seconds))
        if self.latency_s is None:
            self.latency_s = seconds
        else:
            self.latency_s += self.alpha * (seconds - self.latency_s)
        self.error_rate *= (1.0 - self.alpha)
        self.observations += 1

    def observe_error(self) -> None:
        """Fold one failed send into the error rate."""
        self.error_rate += self.alpha * (1.0 - self.error_rate)
        self.observations += 1

    def cost(self) -> float:
        """Expected cost of the next send here, in seconds."""
        return (self.latency_s or 0.0) + self.error_rate * ERROR_PENALTY_S

    def as_dict(self) -> dict:
        """JSON-ready snapshot (``repro mesh`` status output)."""
        return {"latency_s": self.latency_s,
                "error_rate": round(self.error_rate, 4),
                "observations": self.observations,
                "cost": self.cost()}


class ProfileBook:
    """All endpoint profiles one router knows, with freshness stamps.

    ``last_observed`` runs on the injected clock so the policy can tell
    a *stale* profile (worth re-probing — the endpoint may have healed
    or warmed up) from a fresh one.  Not thread-safe per entry beyond
    the GIL's atomicity; the router serialises writes per call anyway
    and a lost race costs one duplicate observation, not correctness.
    """

    def __init__(self, alpha: float = DEFAULT_ALPHA,
                 clock: Clock = SYSTEM_CLOCK):
        self.alpha = alpha
        self._clock = clock
        self._profiles: dict[str, EndpointProfile] = {}

    def profile(self, endpoint: str) -> EndpointProfile:
        """The (created-on-demand) profile of *endpoint*."""
        found = self._profiles.get(endpoint)
        if found is None:
            found = self._profiles[endpoint] = EndpointProfile(self.alpha)
        return found

    def observe(self, endpoint: str, seconds: float) -> None:
        """File one successful send."""
        entry = self.profile(endpoint)
        entry.observe(seconds)
        entry.last_observed = self._clock.monotonic()

    def observe_error(self, endpoint: str) -> None:
        """File one failed send."""
        entry = self.profile(endpoint)
        entry.observe_error()
        entry.last_observed = self._clock.monotonic()

    def age_s(self, endpoint: str) -> float | None:
        """Seconds since *endpoint* was last observed (None = never)."""
        entry = self._profiles.get(endpoint)
        if entry is None or entry.last_observed is None:
            return None
        return self._clock.monotonic() - entry.last_observed

    def endpoints(self) -> list[str]:
        """Endpoints with at least one observation, sorted."""
        return sorted(self._profiles)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready profile dump."""
        return {ep: prof.as_dict()
                for ep, prof in sorted(self._profiles.items())}

    def mine_spans(self, spans: Iterable) -> int:
        """Warm the profiles from collected ``send:*`` spans.

        Accepts :class:`~repro.obs.trace.Span` objects or their
        ``to_dict`` form (snapshot files), so a router can be seeded
        from the live collector *or* from a ``repro run --trace``
        snapshot.  Returns the number of spans mined.
        """
        mined = 0
        for span in spans:
            data = span.to_dict() if hasattr(span, "to_dict") else span
            if not str(data.get("name", "")).startswith("send:"):
                continue
            endpoint = data.get("attributes", {}).get("endpoint")
            if not endpoint:
                continue
            if data.get("status") == "error":
                self.observe_error(endpoint)
            else:
                duration = max(0.0, data.get("ended_at", 0.0) -
                               data.get("started_at", 0.0))
                self.observe(endpoint, duration)
            mined += 1
        return mined
