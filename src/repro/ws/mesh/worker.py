"""Mesh worker main: one catalogue shard behind the async serving plane.

Run as a child process by the :class:`~repro.ws.mesh.supervisor
.WorkerSupervisor`::

    python -m repro.ws.mesh.worker --announce /path/announce.json \
        --services Classifier,Math

The worker deploys its shard of the algorithm catalogue into a
:class:`~repro.ws.container.ServiceContainer`, hosts it on an
:class:`~repro.ws.aserve.AsyncSoapHttpServer` with front-door admission
(the PR-6 arrangement), then *announces* itself by atomically writing a
JSON file — ``{"pid", "port", "base_url", "services", "uds_path",
"boot_id"}`` — which is how the supervisor learns the ephemeral port
(and optional same-host Unix socket) of a worker it just forked.
``SIGTERM`` drains gracefully: stop accepting, finish in-flight
dispatches, exit 0.

``--slow-ms`` installs a fixed pre-dispatch delay, modelling a cold or
distant site for the skewed-replica routing benchmark — the *worker*
degrades itself, so the mesh package needs no chaos import (the
layering lint forbids one).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import threading
import time

from repro.ws.aserve import AsyncSoapHttpServer
from repro.ws.container import ServiceContainer
from repro.ws.pipeline import ServerHandler, chain_insert_after


class SlowDispatch(ServerHandler):
    """A fixed pre-dispatch delay (models a cold/overloaded site)."""

    name = "slow"

    def __init__(self, delay_s: float):
        self.delay_s = delay_s

    def handle(self, request, ctx, proceed):
        time.sleep(self.delay_s)
        return proceed(request)


def build_container(services: list[str] | None,
                    lifecycle: str = "harness",
                    slow_ms: float = 0.0) -> ServiceContainer:
    """A container carrying the named shard of the toolbox catalogue."""
    from repro.services.deploy import TOOLBOX
    if services is None:
        services = list(TOOLBOX)
    unknown = sorted(set(services) - set(TOOLBOX))
    if unknown:
        raise SystemExit(f"unknown toolbox service(s) {unknown}; "
                         f"known: {sorted(TOOLBOX)}")
    container = ServiceContainer("mesh-worker")
    for name in services:
        cls, _ = TOOLBOX[name]
        container.deploy(cls, name, lifecycle=lifecycle)
    if slow_ms > 0:
        container.handlers = chain_insert_after(
            container.handlers, "deadline", SlowDispatch(slow_ms / 1000.0))
    return container


def announce(path: str, server: AsyncSoapHttpServer,
             services: list[str]) -> None:
    """Atomically publish this worker's coordinates for the supervisor."""
    from repro.ws import shm
    record = {"pid": os.getpid(), "port": server.port,
              "base_url": server.base_url, "services": services,
              "uds_path": server.uds_path or "",
              "boot_id": shm.boot_id()}
    fd, staging = tempfile.mkstemp(dir=os.path.dirname(path) or ".",
                                   prefix=".announce-")
    with os.fdopen(fd, "w") as handle:
        json.dump(record, handle)
    os.replace(staging, path)


def main(argv: list[str] | None = None) -> int:
    """Entry point for one forked worker: serve until told to stop.

    Binds an ephemeral port, writes the announce file, then blocks
    until SIGTERM/SIGINT triggers a drain-and-exit.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.ws.mesh.worker",
        description="one mesh worker: a catalogue shard on the async "
                    "serving plane")
    parser.add_argument("--announce", required=True, metavar="PATH",
                        help="JSON file to write once serving "
                             "(pid/port/base_url/services)")
    parser.add_argument("--services", default="all", metavar="CSV",
                        help="comma-separated shard, or 'all' "
                             "(default) for the full catalogue")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (default: ephemeral)")
    parser.add_argument("--lifecycle", default="harness",
                        choices=("harness", "serialize"))
    parser.add_argument("--max-concurrent", type=int, default=8,
                        dest="max_concurrent",
                        help="admission concurrency bound "
                             "(0 disables admission; default 8)")
    parser.add_argument("--slow-ms", type=float, default=0.0,
                        dest="slow_ms",
                        help="fixed per-dispatch delay in ms (skewed-"
                             "replica benchmarking; default 0)")
    parser.add_argument("--uds", default="", metavar="PATH",
                        help="also listen on this Unix socket path "
                             "(same-host zero-copy fast path)")
    args = parser.parse_args(argv)

    shard = None if args.services == "all" else \
        [s for s in args.services.split(",") if s]
    container = build_container(shard, lifecycle=args.lifecycle,
                                slow_ms=args.slow_ms)
    admission = None
    if args.max_concurrent > 0:
        from repro.ws.admission import AdmissionController
        admission = AdmissionController(
            max_concurrent=args.max_concurrent)
    server = AsyncSoapHttpServer(container, port=args.port,
                                 admission=admission,
                                 uds_path=args.uds or None).start()
    try:
        announce(args.announce, server, container.services())

        drain = threading.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: drain.set())
        drain.wait()
    finally:
        server.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
