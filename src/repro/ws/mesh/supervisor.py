"""The mesh process plane: fork, watch, restart, drain worker processes.

:class:`WorkerSupervisor` owns N child processes, each running
``python -m repro.ws.mesh.worker`` with its catalogue shard.  The
contract with the worker is deliberately tiny:

* **Announce.**  A worker binds an ephemeral port and atomically writes
  a JSON announce file; the supervisor polls for it, then publishes one
  registry entry per hosted service — ``{service}@{worker_id}`` with a
  lease — so discovery reflects the worker the moment it serves.
* **Watchdog.**  A background thread polls child liveness.  A crashed
  worker's entries are withdrawn immediately (callers stop routing to
  it without waiting for lease expiry) and the worker is relaunched
  after an exponential backoff (``backoff_base_s · 2^(n-1)``, capped),
  so a crash-looping shard cannot fork-bomb the host.
* **Heartbeat.**  Leases are renewed every ``heartbeat_s`` while the
  child lives.  If the *supervisor* dies, nobody renews and the fleet
  ages out of the registry on its own — the lease is the liveness
  ground truth.
* **Drain.**  :meth:`stop` sends ``SIGTERM`` (the worker finishes
  in-flight dispatches and exits), escalating to ``SIGKILL`` only
  after a grace period, then withdraws the registry entries.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
from dataclasses import dataclass, field

from repro.clock import SYSTEM_CLOCK, Clock
from repro.errors import RegistryError
from repro.obs import get_metrics
from repro.ws import payload, shm
from repro.ws.mesh.endpoints import (MESH_CATEGORY, port_type_of,
                                     service_category)
from repro.ws.registry import UDDIRegistry
from repro.ws.transport import unix_url

#: Seconds a SIGTERMed worker gets to drain before SIGKILL.
DRAIN_GRACE_S = 5.0


@dataclass(frozen=True)
class WorkerSpec:
    """What one worker should host (``services=None`` = full catalogue)."""

    worker_id: str
    services: tuple[str, ...] | None = None
    slow_ms: float = 0.0
    max_concurrent: int = 8
    lifecycle: str = "harness"


@dataclass
class WorkerHandle:
    """One supervised worker's live state."""

    spec: WorkerSpec
    process: subprocess.Popen | None = None
    port: int = 0
    base_url: str = ""
    services: tuple[str, ...] = ()
    entry_names: tuple[str, ...] = ()
    restarts: int = 0
    restart_at: float | None = None
    stderr_path: str = ""
    uds_path: str = ""
    boot_id: str = ""
    _extra: dict = field(default_factory=dict)

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def as_dict(self) -> dict:
        """JSON-ready snapshot for ``/mesh/status`` and the CLI."""
        return {"worker_id": self.spec.worker_id, "pid": self.pid,
                "port": self.port, "base_url": self.base_url,
                "services": list(self.services),
                "restarts": self.restarts, "alive": self.alive,
                "uds_path": self.uds_path}


class WorkerSupervisor:
    """Forks the worker fleet and keeps it (and its leases) alive."""

    def __init__(self, specs: list[WorkerSpec], registry: UDDIRegistry,
                 *, lease_ttl_s: float = 15.0,
                 heartbeat_s: float | None = None,
                 backoff_base_s: float = 0.5,
                 backoff_cap_s: float = 10.0,
                 spawn_timeout_s: float = 60.0,
                 poll_interval_s: float = 0.2,
                 python: str = sys.executable,
                 transport: str = "tcp",
                 clock: Clock = SYSTEM_CLOCK):
        if not specs:
            raise ValueError("a mesh needs at least one worker spec")
        if transport not in ("tcp", "uds"):
            raise ValueError(f"unknown transport {transport!r}; "
                             f"expected 'tcp' or 'uds'")
        ids = [spec.worker_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate worker ids in {ids}")
        self.registry = registry
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_s = heartbeat_s if heartbeat_s is not None \
            else max(0.5, lease_ttl_s / 3.0)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.spawn_timeout_s = spawn_timeout_s
        self.poll_interval_s = poll_interval_s
        self.python = python
        self.transport = transport
        self._clock = clock
        self.handles = [WorkerHandle(spec=spec) for spec in specs]
        self._dir = ""
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "WorkerSupervisor":
        """Spawn every worker, publish its endpoints, arm the watchdog."""
        # reclaim shm segments orphaned by a previous fleet that died
        # without draining (the refcounted lifecycle's crash backstop)
        payload.sweep_shm_orphans()
        self._dir = tempfile.mkdtemp(prefix="repro-mesh-")
        try:
            for handle in self.handles:
                self._launch(handle)
                self._publish(handle)
        except Exception:
            self.stop()
            raise
        self._thread = threading.Thread(target=self._watch, daemon=True,
                                        name="mesh-supervisor")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain the fleet: SIGTERM, grace, SIGKILL, withdraw entries."""
        self._stopping.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        for handle in self.handles:
            process = handle.process
            if process is None or process.poll() is not None:
                continue
            process.send_signal(signal.SIGTERM)
        for handle in self.handles:
            process = handle.process
            if process is None:
                continue
            try:
                process.wait(timeout=DRAIN_GRACE_S)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=DRAIN_GRACE_S)
        for handle in self.handles:
            self._unpublish(handle)
        if self._dir:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = ""
        # drop this process's owned segments, then sweep anything the
        # (now dead) workers left mapped in /dev/shm
        payload.release_shm_segments()
        payload.sweep_shm_orphans()

    def __enter__(self) -> "WorkerSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- introspection ---------------------------------------------------

    def status(self) -> dict:
        """JSON-ready fleet snapshot (the ``repro mesh`` status file)."""
        return {"workers": [handle.as_dict() for handle in self.handles],
                "lease_ttl_s": self.lease_ttl_s,
                "heartbeat_s": self.heartbeat_s,
                "transport": self.transport}

    def handle_of(self, worker_id: str) -> WorkerHandle:
        """The live handle for *worker_id* (KeyError if unknown)."""
        for handle in self.handles:
            if handle.spec.worker_id == worker_id:
                return handle
        raise KeyError(worker_id)

    # -- spawning --------------------------------------------------------

    def _launch(self, handle: WorkerHandle) -> None:
        spec = handle.spec
        announce = os.path.join(self._dir, f"{spec.worker_id}.json")
        if os.path.exists(announce):
            os.remove(announce)
        handle.stderr_path = os.path.join(self._dir,
                                          f"{spec.worker_id}.err")
        cmd = [self.python, "-m", "repro.ws.mesh.worker",
               "--announce", announce,
               "--services",
               "all" if spec.services is None else
               ",".join(spec.services),
               "--max-concurrent", str(spec.max_concurrent),
               "--lifecycle", spec.lifecycle]
        if spec.slow_ms > 0:
            cmd += ["--slow-ms", str(spec.slow_ms)]
        if self.transport == "uds":
            cmd += ["--uds",
                    os.path.join(self._dir, f"{spec.worker_id}.sock")]
        with open(handle.stderr_path, "wb") as stderr:
            handle.process = subprocess.Popen(
                cmd, stdout=subprocess.DEVNULL, stderr=stderr)
        record = self._await_announce(handle, announce)
        handle.port = record["port"]
        handle.base_url = record["base_url"]
        handle.services = tuple(record["services"])
        handle.uds_path = record.get("uds_path", "")
        handle.boot_id = record.get("boot_id", "")
        handle.restart_at = None
        get_metrics().counter("ws.mesh.worker.spawns",
                              worker=spec.worker_id).inc()

    def _await_announce(self, handle: WorkerHandle,
                        announce: str) -> dict:
        deadline = self._clock.monotonic() + self.spawn_timeout_s
        process = handle.process
        while self._clock.monotonic() < deadline:
            if os.path.exists(announce):
                try:
                    with open(announce, encoding="utf-8") as fh:
                        record = json.load(fh)
                except (OSError, ValueError):
                    record = None  # mid-replace; retry
                if record is not None and record.get("pid") == process.pid:
                    return record
            if process.poll() is not None:
                raise RuntimeError(
                    f"mesh worker {handle.spec.worker_id!r} exited "
                    f"with status {process.returncode} before "
                    f"announcing: {self._stderr_tail(handle)}")
            self._clock.sleep(0.05)
        process.kill()
        raise RuntimeError(
            f"mesh worker {handle.spec.worker_id!r} did not announce "
            f"within {self.spawn_timeout_s}s")

    def _stderr_tail(self, handle: WorkerHandle, limit: int = 800) -> str:
        try:
            with open(handle.stderr_path, encoding="utf-8",
                      errors="replace") as fh:
                return fh.read()[-limit:].strip() or "(no stderr)"
        except OSError:
            return "(no stderr)"

    # -- registry --------------------------------------------------------

    def _publish(self, handle: WorkerHandle) -> None:
        names = []
        # advertise the Unix-socket fast path only when the worker
        # proved it shares this host's boot id — a registry mirrored
        # across hosts must not leak unreachable socket paths
        same_host = bool(handle.uds_path) \
            and handle.boot_id == shm.boot_id()
        for service in handle.services:
            name = f"{service}@{handle.spec.worker_id}"
            self.registry.publish(
                name, f"{handle.base_url}/services/{service}?wsdl",
                categories=(MESH_CATEGORY, service_category(service)),
                description=f"mesh replica on {handle.spec.worker_id}",
                lease_ttl_s=self.lease_ttl_s,
                port_type=port_type_of(service),
                uds_url=unix_url(handle.uds_path,
                                 f"/services/{service}")
                if same_host else "")
            names.append(name)
        handle.entry_names = tuple(names)

    def _unpublish(self, handle: WorkerHandle) -> None:
        for name in handle.entry_names:
            try:
                self.registry.unpublish(name)
            except RegistryError:
                pass  # lease already expired
        handle.entry_names = ()
        # a withdrawn (usually crashed) worker can no longer release
        # the segments it published — reap them here
        payload.sweep_shm_orphans()

    # -- watchdog --------------------------------------------------------

    def _watch(self) -> None:
        last_heartbeat = self._clock.monotonic()
        while not self._stopping.wait(self.poll_interval_s):
            now = self._clock.monotonic()
            for handle in self.handles:
                self._tend(handle, now)
            if now - last_heartbeat >= self.heartbeat_s:
                last_heartbeat = now
                self._heartbeat()

    def _tend(self, handle: WorkerHandle, now: float) -> None:
        if handle.process is not None and handle.process.poll() is None:
            return
        if handle.restart_at is None:
            # freshly noticed crash: withdraw the dead endpoints now so
            # discovery stops offering them, and arm the backoff
            get_metrics().counter("ws.mesh.worker.crashes",
                                  worker=handle.spec.worker_id).inc()
            self._unpublish(handle)
            handle.restarts += 1
            delay = min(self.backoff_cap_s,
                        self.backoff_base_s *
                        (2 ** (handle.restarts - 1)))
            handle.restart_at = now + delay
            return
        if now < handle.restart_at:
            return
        try:
            self._launch(handle)
            self._publish(handle)
        except RuntimeError:
            # the relaunch itself failed: back off harder and retry
            handle.restarts += 1
            delay = min(self.backoff_cap_s,
                        self.backoff_base_s *
                        (2 ** (handle.restarts - 1)))
            handle.restart_at = self._clock.monotonic() + delay

    def _heartbeat(self) -> None:
        for handle in self.handles:
            if not handle.alive:
                continue
            for name in handle.entry_names:
                try:
                    self.registry.renew(name)
                except RegistryError:
                    # lease slipped past its TTL (a long GC pause, a
                    # loaded host): re-publish rather than vanish
                    self._publish(handle)
                    break
