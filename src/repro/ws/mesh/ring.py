"""Consistent-hash ring: stable shard assignment under membership churn.

The mesh shards the algorithm catalogue over N worker processes and must
keep those assignments *stable* while workers join, crash and return:
naive ``hash(key) % N`` remaps almost every key whenever N changes,
invalidating every worker-local warm state (payload stores, result
caches, trained-model instances) at once.  A consistent-hash ring with
virtual nodes remaps only ~1/N of the key space per membership change —
the classic DHT construction the DAME-style fleets rely on.

Two properties are load-bearing (and pinned by hypothesis tests):

* **Determinism across processes.**  Hashing uses SHA-256, never
  Python's seeded ``hash()``, so the gateway, every worker and every
  test subprocess compute identical assignments regardless of
  ``PYTHONHASHSEED``.
* **Minimal movement.**  When a member joins, the only keys that change
  owner move *to* the new member; when one leaves, only the keys it
  owned move.  With ``vnodes`` virtual points per member the moved
  fraction concentrates near 1/N.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

#: Virtual points per member: enough to keep per-member load within a
#: few percent of 1/N without making membership changes expensive.
DEFAULT_VNODES = 64


def stable_hash(key: str) -> int:
    """A 64-bit position on the ring, independent of PYTHONHASHSEED."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Members own arcs of a 2^64 ring via ``vnodes`` virtual points.

    Lookups walk clockwise from the key's position: :meth:`assign`
    returns the first member met, :meth:`replicas` the first *n*
    distinct members — the natural preference order for placing a
    service on several workers.
    """

    def __init__(self, members: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._members: set[str] = set()
        #: sorted (position, member) points; ties break on the member
        #: name so iteration order never depends on insertion order
        self._points: list[tuple[int, str]] = []
        for member in members:
            self.add(member)

    # -- membership ------------------------------------------------------

    def add(self, member: str) -> None:
        """Add *member* (idempotent)."""
        if not member:
            raise ValueError("member name must be non-empty")
        if member in self._members:
            return
        self._members.add(member)
        for index in range(self.vnodes):
            point = (stable_hash(f"{member}#{index}"), member)
            bisect.insort(self._points, point)

    def remove(self, member: str) -> None:
        """Remove *member*; unknown members raise ``KeyError``."""
        if member not in self._members:
            raise KeyError(member)
        self._members.discard(member)
        self._points = [p for p in self._points if p[1] != member]

    def members(self) -> frozenset[str]:
        """The current membership set."""
        return frozenset(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def __len__(self) -> int:
        return len(self._members)

    # -- lookup ----------------------------------------------------------

    def assign(self, key: str) -> str:
        """The member owning *key* (first point clockwise of its hash)."""
        owners = self.replicas(key, 1)
        if not owners:
            raise KeyError("ring has no members")
        return owners[0]

    def replicas(self, key: str, n: int) -> list[str]:
        """The first *n* distinct members clockwise of *key*'s position.

        Fewer than *n* members yields them all; the order is the
        preference order for replica placement and failover.
        """
        if n < 1 or not self._points:
            return []
        # first virtual point at-or-after the key's position (the bare
        # (hash,) tuple sorts before any (hash, member) point)
        start = bisect.bisect_left(self._points, (stable_hash(key),))
        out: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            member = self._points[(start + offset) %
                                  len(self._points)][1]
            if member not in seen:
                seen.add(member)
                out.append(member)
                if len(out) == n:
                    break
        return out
