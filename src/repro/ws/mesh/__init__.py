"""The service mesh: sharded worker fleet + trace-mined adaptive routing.

The mesh turns the single-process toolbox host into a supervised
multi-process deployment while keeping every client-facing contract —
SOAP envelopes, WSDL binding, deadlines, payload refs, gzip — exactly
as it was:

* :mod:`~repro.ws.mesh.ring` — a consistent-hash ring, stable under
  membership churn (shard planning and hash-affinity routing).
* :mod:`~repro.ws.mesh.profile` — per-endpoint EWMA latency/error
  profiles, minable from the tracing plane's ``send:*`` spans.
* :mod:`~repro.ws.mesh.endpoints` — the UDDI registry as live replica
  discovery, plus the caller-facing endpoint source.
* :mod:`~repro.ws.mesh.router` — routing policies (static / hash /
  adaptive), per-replica breakers, equivalent-service substitution.
* :mod:`~repro.ws.mesh.worker` — the child-process main: one catalogue
  shard on the async serving plane, announce-file handshake.
* :mod:`~repro.ws.mesh.supervisor` — fork/watch/restart/drain of the
  worker fleet; lease heartbeats keep the registry truthful.
* :mod:`~repro.ws.mesh.gateway` — the stable HTTP front door; routing
  runs as a client interceptor-chain step behind the PR-4 gateway.
* :mod:`~repro.ws.mesh.host` — :func:`start_mesh`, the one-call
  composition root.

By layering decree (``tools/layering_lint.py``) this package never
imports :mod:`repro.chaos` or :mod:`repro.ml`, and the transport/httpd
layers never import it back.
"""

from repro.ws.mesh.endpoints import (MeshEndpoint, RegistryEndpoints,
                                     ServiceEndpoints)
from repro.ws.mesh.gateway import MeshGateway, MeshIngress
from repro.ws.mesh.host import MeshHost, plan_shards, start_mesh
from repro.ws.mesh.profile import EndpointProfile, ProfileBook
from repro.ws.mesh.ring import ConsistentHashRing, stable_hash
from repro.ws.mesh.router import (AdaptivePolicy, HashPolicy, MeshRoute,
                                  MeshRouter, RoundRobinPolicy,
                                  RoutingPolicy, make_policy)
from repro.ws.mesh.supervisor import (WorkerHandle, WorkerSpec,
                                      WorkerSupervisor)

__all__ = [
    "AdaptivePolicy", "ConsistentHashRing", "EndpointProfile",
    "HashPolicy", "MeshEndpoint", "MeshGateway", "MeshHost",
    "MeshIngress", "MeshRoute", "MeshRouter", "ProfileBook",
    "RegistryEndpoints", "RoundRobinPolicy", "RoutingPolicy",
    "ServiceEndpoints", "WorkerHandle", "WorkerSpec",
    "WorkerSupervisor", "make_policy", "plan_shards", "stable_hash",
    "start_mesh",
]
