"""Mesh assembly: shard planning and the one-call ``start_mesh``.

This is the composition root the CLI (``repro mesh``) and the tests
use: plan which worker hosts which services, fork the fleet under a
:class:`~repro.ws.mesh.supervisor.WorkerSupervisor`, wire discovery
and the policy-driven :class:`~repro.ws.mesh.router.MeshRouter`, warm
the routing profiles from any already-collected trace, and open the
:class:`~repro.ws.mesh.gateway.MeshGateway` front door.  The returned
:class:`MeshHost` owns the lot and tears it down in reverse.
"""

from __future__ import annotations

from repro.clock import SYSTEM_CLOCK, Clock
from repro.ws import payload
from repro.ws.mesh.endpoints import RegistryEndpoints, ServiceEndpoints
from repro.ws.mesh.gateway import MeshGateway
from repro.ws.mesh.ring import ConsistentHashRing
from repro.ws.mesh.router import MeshRouter, make_policy
from repro.ws.mesh.supervisor import WorkerSpec, WorkerSupervisor
from repro.ws.registry import UDDIRegistry


def plan_shards(services: list[str] | None, worker_ids: list[str],
                spec: str = "all") -> dict[str, tuple[str, ...] | None]:
    """Assign services to workers according to a shard *spec*.

    ``"all"`` replicates the whole catalogue on every worker (``None``
    per worker = the worker is catalogue-authoritative, so the gateway
    process never imports the service classes).  ``"ring:R"`` places
    each service on R workers chosen by the consistent-hash ring over
    the worker ids — the same ring the routing layer uses, so adding a
    worker re-homes ~1/N of the services instead of reshuffling all.
    """
    if spec == "all":
        hosted = None if services is None else tuple(services)
        return {wid: hosted for wid in worker_ids}
    if spec.startswith("ring:"):
        try:
            replicas = int(spec.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"bad shard spec {spec!r}: expected "
                             f"'ring:<replicas>'") from None
        if replicas < 1:
            raise ValueError(f"bad shard spec {spec!r}: replica count "
                             f"must be >= 1")
        if services is None:
            from repro.services.deploy import TOOLBOX
            services = sorted(TOOLBOX)
        ring = ConsistentHashRing(worker_ids)
        plan: dict[str, list[str]] = {wid: [] for wid in worker_ids}
        for service in services:
            for wid in ring.replicas(service,
                                     min(replicas, len(worker_ids))):
                plan[wid].append(service)
        return {wid: tuple(hosted) for wid, hosted in plan.items()}
    raise ValueError(f"unknown shard spec {spec!r}; "
                     f"expected 'all' or 'ring:<replicas>'")


class MeshHost:
    """One running mesh: registry + fleet + router + gateway.

    Built by :func:`start_mesh`; usable as a context manager.  The
    gateway speaks plain SOAP-over-HTTP, so any existing client — a
    :class:`~repro.ws.client.ServiceProxy`, the scatter plane, the
    experiment runner — targets :meth:`wsdl_url` and rides the mesh
    unchanged; :meth:`source_for` is the discovery-backed endpoint
    source for callers that want per-replica fan-out instead.
    """

    def __init__(self, registry: UDDIRegistry,
                 supervisor: WorkerSupervisor,
                 discovery: RegistryEndpoints, router: MeshRouter,
                 gateway: MeshGateway):
        self.registry = registry
        self.supervisor = supervisor
        self.discovery = discovery
        self.router = router
        self.gateway = gateway

    @property
    def base_url(self) -> str:
        return self.gateway.base_url

    @property
    def port(self) -> int:
        return self.gateway.port

    def endpoint(self, service: str) -> str:
        """The mesh-fronted SOAP endpoint URL of *service*."""
        return self.gateway.endpoint(service)

    def wsdl_url(self, service: str) -> str:
        """The mesh-fronted WSDL URL of *service*."""
        return self.gateway.wsdl_url(service)

    def source_for(self, service: str) -> ServiceEndpoints:
        """A live endpoint source for scatter/grid/runner callers."""
        return self.discovery.source_for(service)

    def status(self) -> dict:
        """JSON-ready snapshot: fleet, registry, routing profiles."""
        now = self.registry.now()
        return {"gateway": self.base_url,
                "policy": self.router.policy.name,
                "supervisor": self.supervisor.status(),
                "registry": [entry.as_dict(now=now) for entry
                             in self.registry.inquire("*")],
                "profiles": self.router.book.snapshot(),
                "transports": self.router.transport_schemes(),
                "shm": payload.shm_counters()}

    def stop(self) -> None:
        """Tear down front-to-back: gateway, then fleet and leases."""
        self.gateway.stop()
        self.supervisor.stop()

    def __enter__(self) -> "MeshHost":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_mesh(workers: int = 4, services: list[str] | None = None,
               shards: str = "all", policy: str = "adaptive",
               port: int = 0, *, lease_ttl_s: float = 15.0,
               heartbeat_s: float | None = None,
               max_concurrent: int = 8,
               slow_ms: dict[str, float] | None = None,
               backoff_base_s: float = 0.5,
               backoff_cap_s: float = 10.0,
               spawn_timeout_s: float = 60.0,
               compress: bool = True,
               registry: UDDIRegistry | None = None,
               transport: str = "tcp",
               clock: Clock = SYSTEM_CLOCK) -> MeshHost:
    """Fork a worker fleet and return its running :class:`MeshHost`.

    *slow_ms* maps worker ids (``w1``..``wN``) to a fixed per-dispatch
    delay — the skewed-replica knob the PERF-MESH benchmark turns.
    ``transport="uds"`` adds a Unix-socket listener per worker and
    routes same-host calls over it (with shm payload hand-off).
    """
    if workers < 1:
        raise ValueError("a mesh needs at least one worker")
    worker_ids = [f"w{i + 1}" for i in range(workers)]
    plan = plan_shards(services, worker_ids, shards)
    delays = slow_ms or {}
    specs = [WorkerSpec(worker_id=wid, services=plan[wid],
                        slow_ms=delays.get(wid, 0.0),
                        max_concurrent=max_concurrent)
             for wid in worker_ids]
    registry = registry if registry is not None \
        else UDDIRegistry(clock=clock)
    supervisor = WorkerSupervisor(
        specs, registry, lease_ttl_s=lease_ttl_s,
        heartbeat_s=heartbeat_s, backoff_base_s=backoff_base_s,
        backoff_cap_s=backoff_cap_s, spawn_timeout_s=spawn_timeout_s,
        transport=transport, clock=clock)
    supervisor.start()
    try:
        discovery = RegistryEndpoints(registry)
        router = MeshRouter(discovery, make_policy(policy), clock=clock)
        router.warm_from_trace()
        # the status closure reads `host`, which is assigned below —
        # the gateway only calls it once requests arrive, well after
        gateway = MeshGateway(router, discovery, port=port,
                              compress=compress,
                              status_fn=lambda: host.status())
        gateway.start()
    except Exception:
        supervisor.stop()
        raise
    host = MeshHost(registry=registry, supervisor=supervisor,
                    discovery=discovery, router=router, gateway=gateway)
    return host
