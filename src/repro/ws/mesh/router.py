"""Replica routing: policies, substitution and the chain's route step.

:class:`MeshRouter` is the gateway's forwarding engine.  For each call
it asks discovery for the live replicas of the target service, ranks
them with a pluggable :class:`RoutingPolicy`, and walks the ranked list
until one replica answers — a delivery failure (or an open breaker)
moves the call to the next *equivalent* replica, which is exactly the
paper-era "complete the task by moving the job to another resource"
requirement, automated.

Three policies ship:

* :class:`RoundRobinPolicy` — the static baseline the benchmark
  compares against: ignore everything, rotate.
* :class:`HashPolicy` — consistent-hash affinity on the call's
  service+operation key; stable under membership churn
  (:mod:`repro.ws.mesh.ring`), so repeat calls keep landing where the
  warm caches are.
* :class:`AdaptivePolicy` — the trace-mined default: rank replicas by
  EWMA cost (:mod:`repro.ws.mesh.profile`), probing unobserved or
  stale endpoints first so a restarted worker earns its way back in
  with one call instead of being guessed at forever.

Per-replica :class:`~repro.ws.breaker.CircuitBreaker`\\ s guard every
endpoint; breaker transitions feed the registry's health states via the
discovery source, so a dead replica vanishes from *everyone's* view,
not just this router's.  :class:`MeshRoute` packages the router as a
:class:`~repro.ws.pipeline.ClientInterceptor`, so routing composes with
the deadline/trace/metrics steps like any other chain member.
"""

from __future__ import annotations

import os
import threading
import time

from repro.clock import SYSTEM_CLOCK, Clock
from repro.errors import (DeadlineExceeded, OverloadedError,
                          TransportError)
from repro.obs import get_metrics, get_tracer
from repro.ws.breaker import OPEN, CircuitBreaker
from repro.ws.mesh.endpoints import MeshEndpoint, RegistryEndpoints
from repro.ws.mesh.profile import ProfileBook
from repro.ws.mesh.ring import ConsistentHashRing
from repro.ws.pipeline import ClientInterceptor
from repro.ws.registry import HEALTH_DOWN, HEALTH_UP
from repro.ws.soap import SoapFault, SoapRequest, SoapResponse
from repro.ws.transport import (HttpTransport, parse_unix_url,
                                transport_for)

#: Waiting this long since an endpoint's last observation makes its
#: profile *stale*: the adaptive policy re-probes it ahead of ranked
#: traffic, so a healed or warmed-up replica is rediscovered.
DEFAULT_REPROBE_AFTER_S = 10.0


class RoutingPolicy:
    """Ranks a service's live replicas, most preferred first."""

    name = "policy"

    def rank(self, service: str, endpoints: list[MeshEndpoint],
             request: SoapRequest,
             book: ProfileBook) -> list[MeshEndpoint]:
        """Order *endpoints* by preference for *request*.

        The router sends to the first candidate and walks down the
        ranking on failover, so position 0 is the policy's actual
        choice and the tail is its contingency plan.
        """
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Static rotation — the profile-blind baseline."""

    name = "static"

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._lock = threading.Lock()

    def rank(self, service, endpoints, request, book):
        if not endpoints:
            return []
        with self._lock:
            turn = self._counters.get(service, 0)
            self._counters[service] = turn + 1
        offset = turn % len(endpoints)
        return endpoints[offset:] + endpoints[:offset]


class HashPolicy(RoutingPolicy):
    """Consistent-hash affinity on the call key (service + operation).

    Repeat calls of the same operation stick to the same replica while
    membership holds — and move minimally when it changes — so
    replica-local warm state (result caches, absorbed payloads, trained
    instances) keeps paying off.
    """

    name = "hash"

    def __init__(self, vnodes: int | None = None):
        self._vnodes = vnodes
        self._ring: ConsistentHashRing | None = None
        self._ring_members: frozenset[str] = frozenset()
        self._lock = threading.Lock()

    def rank(self, service, endpoints, request, book):
        by_name = {e.name: e for e in endpoints}
        members = frozenset(by_name)
        with self._lock:
            if members != self._ring_members:
                kwargs = {} if self._vnodes is None \
                    else {"vnodes": self._vnodes}
                self._ring = ConsistentHashRing(members, **kwargs)
                self._ring_members = members
            ring = self._ring
        if ring is None or not members:
            return []
        key = f"{service}.{request.operation}"
        return [by_name[name]
                for name in ring.replicas(key, len(members))]


class AdaptivePolicy(RoutingPolicy):
    """Mined EWMA ranking: cheapest replica first, probe the unknown.

    Endpoints never observed (or not observed for
    ``reprobe_after_s``) outrank everything — one real call refreshes
    their profile, after which they compete on cost like the rest.
    That single-probe discipline is what keeps a chaos-delayed replica
    out of the p99: it gets one observation, then traffic routes
    around it until the profile goes stale again.
    """

    name = "adaptive"

    def __init__(self,
                 reprobe_after_s: float = DEFAULT_REPROBE_AFTER_S):
        self.reprobe_after_s = reprobe_after_s

    def rank(self, service, endpoints, request, book):
        def preference(endpoint: MeshEndpoint):
            age = book.age_s(endpoint.url)
            if age is None or age >= self.reprobe_after_s:
                return (0, 0.0, endpoint.name)
            return (1, book.profile(endpoint.url).cost(), endpoint.name)
        return sorted(endpoints, key=preference)


POLICIES = {"static": RoundRobinPolicy, "hash": HashPolicy,
            "adaptive": AdaptivePolicy}


def make_policy(name: str) -> RoutingPolicy:
    """Instantiate a routing policy by CLI name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown routing policy {name!r}; "
                         f"known: {sorted(POLICIES)}") from None


class MeshRouter:
    """Routes one SOAP request to a live replica, substituting on failure.

    The walk over the ranked candidates implements both *failover* (a
    send that dies mid-flight moves on) and *substitution* (an endpoint
    whose breaker is open is skipped without paying a timeout).  A SOAP
    fault stops the walk — the endpoint answered, so the service-level
    error belongs to the caller.  An admission shed
    (:class:`~repro.errors.OverloadedError`) tries the next replica
    without a breaker penalty: an overloaded replica is alive.
    """

    def __init__(self, discovery: RegistryEndpoints,
                 policy: RoutingPolicy | None = None, *,
                 book: ProfileBook | None = None,
                 breaker_failure_threshold: int = 2,
                 breaker_cooldown_s: float = 5.0,
                 timeout_s: float = 30.0,
                 compress: bool = True,
                 clock: Clock = SYSTEM_CLOCK):
        self.discovery = discovery
        self.policy = policy or AdaptivePolicy()
        self.book = book or ProfileBook(clock=clock)
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.timeout_s = timeout_s
        self.compress = compress
        self._clock = clock
        self._transports: dict[str, HttpTransport] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        #: last dial scheme per stable endpoint URL (``/mesh/status``)
        self._schemes: dict[str, str] = {}
        self._lock = threading.Lock()

    # -- plumbing --------------------------------------------------------

    def _dial_url(self, endpoint: MeshEndpoint) -> str:
        """The URL to actually dial: the Unix socket when it is real.

        An advertised ``uds_url`` is only trusted if its socket path
        exists on this host — a stale registry entry (or one mirrored
        from another machine) degrades to TCP instead of failing.
        """
        if endpoint.uds_url:
            try:
                path, _ = parse_unix_url(endpoint.uds_url)
            except TransportError:
                return endpoint.url
            if os.path.exists(path):
                return endpoint.uds_url
        return endpoint.url

    def _transport(self, endpoint: MeshEndpoint) -> HttpTransport:
        dial = self._dial_url(endpoint)
        with self._lock:
            transport = self._transports.get(dial)
            if transport is None:
                transport = transport_for(dial, timeout=self.timeout_s,
                                          compress=self.compress)
                self._transports[dial] = transport
            self._schemes[endpoint.url] = getattr(transport, "kind",
                                                  "http")
            return transport

    def transport_schemes(self) -> dict[str, str]:
        """Last-used dial scheme per endpoint URL (``http``/``uds``)."""
        with self._lock:
            return dict(self._schemes)

    def _breaker(self, url: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(url)
            if breaker is None:
                breaker = CircuitBreaker(
                    endpoint=url,
                    failure_threshold=self.breaker_failure_threshold,
                    cooldown_s=self.breaker_cooldown_s,
                    clock=self._clock)
                self._breakers[url] = breaker
            return breaker

    def warm_from_trace(self) -> int:
        """Seed the profiles from the collector's ``send:*`` spans."""
        collector = getattr(get_tracer(), "collector", None)
        if collector is None:
            return 0
        return self.book.mine_spans(collector.spans())

    def _note(self, endpoint: MeshEndpoint,
              breaker: CircuitBreaker) -> None:
        health = HEALTH_DOWN if breaker.state == OPEN else HEALTH_UP
        self.discovery.note_health(endpoint.name, health)

    # -- the route -------------------------------------------------------

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver *request* to some live replica of its service."""
        metrics = get_metrics()
        endpoints = self.discovery.endpoints(request.service)
        if not endpoints:
            metrics.counter("ws.mesh.unroutable",
                            service=request.service).inc()
            raise TransportError(
                f"no live replica of {request.service!r} in the mesh "
                f"registry")
        ranked = self.policy.rank(request.service, endpoints, request,
                                  self.book)
        last_error: Exception | None = None
        substituted = False
        for endpoint in ranked:
            breaker = self._breaker(endpoint.url)
            if not breaker.allow():
                # fast substitution: skip the presumed-dead replica
                # without paying its timeout
                substituted = True
                continue
            transport = self._transport(endpoint)
            start = time.perf_counter()
            try:
                response = transport.send(request)
            except DeadlineExceeded:
                raise  # the budget is global; no replica can help
            except OverloadedError as exc:
                metrics.counter("ws.mesh.overloads",
                                endpoint=endpoint.name).inc()
                substituted = True
                last_error = exc
                continue
            except SoapFault:
                # the endpoint answered: service-level errors are the
                # caller's, and the replica has proven itself alive
                breaker.record_success()
                self.book.observe(endpoint.url,
                                  time.perf_counter() - start)
                self._note(endpoint, breaker)
                raise
            except (TransportError, OSError) as exc:
                breaker.record_failure()
                self.book.observe_error(endpoint.url)
                self._note(endpoint, breaker)
                metrics.counter("ws.mesh.failovers",
                                endpoint=endpoint.name).inc()
                substituted = True
                last_error = exc
                continue
            breaker.record_success()
            self.book.observe(endpoint.url,
                              time.perf_counter() - start)
            self._note(endpoint, breaker)
            metrics.counter("ws.mesh.routed",
                            endpoint=endpoint.name).inc()
            if substituted:
                metrics.counter("ws.mesh.substitutions",
                                service=request.service).inc()
            return response
        metrics.counter("ws.mesh.unroutable",
                        service=request.service).inc()
        if last_error is not None:
            raise last_error
        raise TransportError(
            f"every live replica of {request.service!r} is "
            f"circuit-open")

    def close(self) -> None:
        """Release pooled transport connections."""
        with self._lock:
            transports = list(self._transports.values())
        for transport in transports:
            transport.close()


class MeshRoute(ClientInterceptor):
    """The routing decision as a chain step.

    Terminal by design — it answers from the router instead of calling
    ``proceed`` — so the gateway composes it after the standard
    deadline/trace/metrics steps and everything the PR-4 pipeline
    already does (budget stamping, span parenting, per-call metrics)
    applies to routed calls unchanged.
    """

    name = "route"

    def __init__(self, router: MeshRouter):
        self.router = router

    def intercept(self, request, ctx, proceed):
        return self.router.send(request)
