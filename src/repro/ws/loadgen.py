"""Closed-loop load generation against a SOAP endpoint.

A *closed-loop* client waits for each response before offering its next
request, so offered load self-adjusts to what the server actually
sustains — the honest way to measure saturation (an open-loop generator
measures its own queue).  :func:`run` drives ``concurrency`` such
clients from one event loop over ``duration_s`` seconds, separating
three outcomes per call:

* **served** — a real answer; its latency feeds the p50/p95/p99.
* **shed** — the server answered ``repro:Overloaded``; the client backs
  off for the server's ``Retry-After`` hint (± seeded jitter) before
  re-offering.  Shed *latency* is tracked separately: the whole point
  of front-door admission is that a rejection costs a fraction of a
  served call.
* **error** — transport failures and deadline misses.

Results come back as a :class:`LoadReport`, JSON-ready for
``BENCH_serving.json`` (the ``serving-load`` CI gate) via
:meth:`LoadReport.as_dict`.  The driver is ``repro loadgen`` on the CLI
or ``benchmarks/test_bench_serving.py`` under pytest.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from urllib.parse import urlparse

from repro.errors import OverloadedError, ReproError
from repro.ws.admission import DEFAULT_RETRY_HINT_S
from repro.ws.soap import SoapRequest
from repro.ws.transport import transport_for

__all__ = ["LoadReport", "run"]


def _percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile of pre-sorted data (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(p / 100.0 * (len(sorted_values) - 1)))))
    return sorted_values[rank]


@dataclass
class LoadReport:
    """What a closed-loop run measured (post-warmup window only)."""

    concurrency: int
    duration_s: float
    transport: str = "http"
    served: int = 0
    shed: int = 0
    errors: int = 0
    served_latencies_ms: list[float] = field(default_factory=list)
    shed_latencies_ms: list[float] = field(default_factory=list)

    @property
    def offered(self) -> int:
        """Calls that completed with any outcome in the window."""
        return self.served + self.shed + self.errors

    @property
    def served_rps(self) -> float:
        """Sustained successful answers per second."""
        return self.served / self.duration_s if self.duration_s else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of offered calls the server shed."""
        return self.shed / self.offered if self.offered else 0.0

    def served_percentile_ms(self, p: float) -> float:
        """Latency percentile (milliseconds) of served calls."""
        return _percentile(sorted(self.served_latencies_ms), p)

    def shed_percentile_ms(self, p: float) -> float:
        """Latency percentile (milliseconds) of shed calls."""
        return _percentile(sorted(self.shed_latencies_ms), p)

    def as_dict(self) -> dict:
        """JSON-ready summary (the ``BENCH_serving.json`` schema)."""
        return {
            "concurrency": self.concurrency,
            "duration_s": round(self.duration_s, 3),
            "transport": self.transport,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "errors": self.errors,
            "served_rps": round(self.served_rps, 2),
            "shed_rate": round(self.shed_rate, 4),
            "latency_ms": {
                "p50": round(self.served_percentile_ms(50), 3),
                "p95": round(self.served_percentile_ms(95), 3),
                "p99": round(self.served_percentile_ms(99), 3),
            },
            "shed_latency_ms": {
                "p50": round(self.shed_percentile_ms(50), 3),
                "p99": round(self.shed_percentile_ms(99), 3),
            },
        }


async def _client_loop(index: int, endpoint: str, service: str,
                       operation: str, params: dict,
                       principal: str, priority: int,
                       deadline: float, warmup_until: float,
                       report: LoadReport, rng: random.Random,
                       timeout_s: float) -> None:
    """One closed-loop client: request, await, repeat until *deadline*."""
    transport = transport_for(endpoint, timeout=timeout_s,
                              compress=False)
    try:
        while time.perf_counter() < deadline:
            request = SoapRequest(service, operation, dict(params),
                                  principal=principal, priority=priority)
            start = time.perf_counter()
            try:
                await transport.send_async(request)
            except OverloadedError as exc:
                elapsed = time.perf_counter() - start
                if start >= warmup_until:
                    report.shed += 1
                    report.shed_latencies_ms.append(elapsed * 1000.0)
                hint = exc.retry_after_s or DEFAULT_RETRY_HINT_S
                # jittered backoff keeps 1k shed clients from
                # re-offering in one synchronized wave
                await asyncio.sleep(hint * (0.5 + rng.random()))
                continue
            except (ReproError, OSError):
                if start >= warmup_until:
                    report.errors += 1
                await asyncio.sleep(0.01 * (1 + rng.random()))
                continue
            elapsed = time.perf_counter() - start
            if start >= warmup_until:
                report.served += 1
                report.served_latencies_ms.append(elapsed * 1000.0)
    finally:
        transport.close()


async def _run_async(endpoint: str, service: str, operation: str,
                     params: dict, concurrency: int, duration_s: float,
                     warmup_s: float, priority_levels: int, seed: int,
                     timeout_s: float, scheme: str) -> LoadReport:
    report = LoadReport(concurrency=concurrency, duration_s=duration_s,
                        transport="uds" if scheme == "unix" else "http")
    rng = random.Random(seed)
    start = time.perf_counter()
    warmup_until = start + warmup_s
    deadline = warmup_until + duration_s
    clients = []
    for index in range(concurrency):
        priority = index % priority_levels if priority_levels > 1 else 0
        clients.append(_client_loop(
            index, endpoint, service, operation, params,
            principal=f"client-{index % 16}", priority=priority,
            deadline=deadline, warmup_until=warmup_until, report=report,
            rng=random.Random(rng.random()), timeout_s=timeout_s))
    await asyncio.gather(*clients)
    return report


def run(endpoint: str, operation: str, params: dict | None = None, *,
        concurrency: int = 64, duration_s: float = 5.0,
        warmup_s: float = 1.0, priority_levels: int = 1, seed: int = 0,
        timeout_s: float = 30.0, transport: str = "auto") -> LoadReport:
    """Drive *endpoint* with closed-loop clients; returns the report.

    *endpoint* is a ``…/services/<Name>`` URL — ``http://`` or
    ``unix://`` — and the service name is taken from the path.
    *transport* (``auto``/``tcp``/``uds``) asserts the endpoint's
    scheme matches what the caller meant to measure, so a benchmark
    arm cannot silently run over the wrong plane.  ``priority_levels >
    1`` spreads clients round-robin over priorities ``0..levels-1``,
    exercising the priority queue's shed ordering.  The run lasts
    ``warmup_s + duration_s``; only calls started after the warmup are
    counted.
    """
    scheme = urlparse(endpoint).scheme
    expected = {"auto": None, "tcp": "http", "uds": "unix"}
    if transport not in expected:
        raise ValueError(f"unknown transport {transport!r}; "
                         f"expected one of {sorted(expected)}")
    want = expected[transport]
    if want is not None and scheme != want:
        raise ValueError(
            f"--transport {transport} needs a {want}:// endpoint, "
            f"got {endpoint!r}")
    service = [p for p in urlparse(endpoint).path.split("/") if p][-1]
    return asyncio.run(_run_async(
        endpoint, service, operation, dict(params or {}),
        concurrency=concurrency, duration_s=duration_s,
        warmup_s=warmup_s, priority_levels=priority_levels, seed=seed,
        timeout_s=timeout_s, scheme=scheme))
