"""WSDL 1.1-style service descriptions.

The toolkit imports a service by WSDL ("A Web Service is imported to the
workspace by providing its WSDL interface.  Once the interface is provided,
Triana creates a tool for each operation") — so the WSDL document is the
contract between the hosting side (:mod:`repro.ws.container` /
:mod:`repro.ws.httpd`) and the composition side
(:mod:`repro.workflow.wsimport`).  We generate WSDL from a
:class:`~repro.ws.service.ServiceDefinition` and parse it back into a
:class:`WsdlDescription`; round-tripping is lossless for everything the
toolkit uses (operations, typed parts, docs, endpoint address).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro.errors import WsdlError
from repro.ws.service import OperationInfo, ServiceDefinition

WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"
SOAP_BINDING_NS = "http://schemas.xmlsoap.org/wsdl/soap/"
REPRO_NS = "http://repro.example.org/faehim"

ET.register_namespace("wsdl", WSDL_NS)
ET.register_namespace("soap", SOAP_BINDING_NS)


def _q(ns: str, local: str) -> str:
    return f"{{{ns}}}{local}"


@dataclass(frozen=True)
class WsdlOperation:
    """One operation as described by a WSDL document."""

    name: str
    doc: str
    params: tuple[tuple[str, str], ...]
    returns: str
    required: tuple[str, ...]


@dataclass
class WsdlDescription:
    """Everything a client/toolbox needs to drive a service."""

    service: str
    doc: str
    address: str
    operations: dict[str, WsdlOperation] = field(default_factory=dict)


def generate(definition: ServiceDefinition, address: str) -> str:
    """Generate a WSDL document for *definition* bound at *address*."""
    root = ET.Element(_q(WSDL_NS, "definitions"))
    root.set("name", definition.name)
    root.set("targetNamespace", REPRO_NS)
    if definition.doc:
        doc_el = ET.SubElement(root, _q(WSDL_NS, "documentation"))
        doc_el.text = definition.doc
    # messages
    for op in definition.operations.values():
        msg_in = ET.SubElement(root, _q(WSDL_NS, "message"))
        msg_in.set("name", f"{op.name}Request")
        for pname, ptype in op.params:
            part = ET.SubElement(msg_in, _q(WSDL_NS, "part"))
            part.set("name", pname)
            part.set("type", ptype)
            if pname in op.required:
                part.set("required", "true")
        msg_out = ET.SubElement(root, _q(WSDL_NS, "message"))
        msg_out.set("name", f"{op.name}Response")
        part = ET.SubElement(msg_out, _q(WSDL_NS, "part"))
        part.set("name", "return")
        part.set("type", op.returns)
    # portType
    port_type = ET.SubElement(root, _q(WSDL_NS, "portType"))
    port_type.set("name", f"{definition.name}PortType")
    for op in definition.operations.values():
        op_el = ET.SubElement(port_type, _q(WSDL_NS, "operation"))
        op_el.set("name", op.name)
        if op.doc:
            d = ET.SubElement(op_el, _q(WSDL_NS, "documentation"))
            d.text = op.doc
        inp = ET.SubElement(op_el, _q(WSDL_NS, "input"))
        inp.set("message", f"{op.name}Request")
        out = ET.SubElement(op_el, _q(WSDL_NS, "output"))
        out.set("message", f"{op.name}Response")
    # binding (rpc/encoded-style marker, constant for the toolkit)
    binding = ET.SubElement(root, _q(WSDL_NS, "binding"))
    binding.set("name", f"{definition.name}Binding")
    binding.set("type", f"{definition.name}PortType")
    soap_binding = ET.SubElement(binding, _q(SOAP_BINDING_NS, "binding"))
    soap_binding.set("style", "rpc")
    soap_binding.set("transport", "http://schemas.xmlsoap.org/soap/http")
    # service + port
    service = ET.SubElement(root, _q(WSDL_NS, "service"))
    service.set("name", definition.name)
    port = ET.SubElement(service, _q(WSDL_NS, "port"))
    port.set("name", f"{definition.name}Port")
    port.set("binding", f"{definition.name}Binding")
    addr = ET.SubElement(port, _q(SOAP_BINDING_NS, "address"))
    addr.set("location", address)
    return ET.tostring(root, encoding="unicode")


def parse(document: str) -> WsdlDescription:
    """Parse a WSDL document into a :class:`WsdlDescription`."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise WsdlError(f"malformed WSDL: {exc}") from exc
    if root.tag != _q(WSDL_NS, "definitions"):
        raise WsdlError(f"not a WSDL document: {root.tag}")
    name = root.get("name", "")
    doc = root.findtext(_q(WSDL_NS, "documentation"), "") or ""
    messages: dict[str, list[tuple[str, str, bool]]] = {}
    for msg in root.findall(_q(WSDL_NS, "message")):
        parts = []
        for part in msg.findall(_q(WSDL_NS, "part")):
            parts.append((part.get("name", ""), part.get("type", ""),
                          part.get("required") == "true"))
        messages[msg.get("name", "")] = parts
    operations: dict[str, WsdlOperation] = {}
    port_type = root.find(_q(WSDL_NS, "portType"))
    if port_type is None:
        raise WsdlError("WSDL has no portType")
    for op_el in port_type.findall(_q(WSDL_NS, "operation")):
        op_name = op_el.get("name", "")
        op_doc = op_el.findtext(_q(WSDL_NS, "documentation"), "") or ""
        inp = op_el.find(_q(WSDL_NS, "input"))
        out = op_el.find(_q(WSDL_NS, "output"))
        if inp is None or out is None:
            raise WsdlError(f"operation {op_name!r} lacks input/output")
        in_parts = messages.get(inp.get("message", ""), [])
        out_parts = messages.get(out.get("message", ""), [])
        returns = out_parts[0][1] if out_parts else "xsd:string"
        operations[op_name] = WsdlOperation(
            name=op_name,
            doc=op_doc.strip(),
            params=tuple((p, t) for p, t, _ in in_parts),
            returns=returns,
            required=tuple(p for p, _, req in in_parts if req))
    service_el = root.find(_q(WSDL_NS, "service"))
    address = ""
    if service_el is not None:
        port = service_el.find(_q(WSDL_NS, "port"))
        if port is not None:
            addr = port.find(_q(SOAP_BINDING_NS, "address"))
            if addr is not None:
                address = addr.get("location", "")
    if not operations:
        raise WsdlError("WSDL describes no operations")
    return WsdlDescription(service=name, doc=doc.strip(),
                           address=address, operations=operations)


def describe(definition: ServiceDefinition,
             address: str) -> WsdlDescription:
    """Shortcut: definition → WSDL text → parsed description."""
    return parse(generate(definition, address))


def operation_info_of(op: WsdlOperation) -> OperationInfo:
    """Convert a parsed WSDL operation back to server-side metadata."""
    return OperationInfo(name=op.name, doc=op.doc, params=op.params,
                         returns=op.returns, required=op.required)
