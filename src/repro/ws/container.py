"""The service container (Tomcat/Axis analogue) with the two §4.5 lifecycles.

The paper's key performance observation:

    "repeated invocations of a particular Web Service often resulted in a
    significant performance penalty ... an instance of the service was
    created as an object for each invocation; if an object already existed
    this had to be re-built from its serialised state on disk.  On completion
    of the invocation the state of the object was recorded: it was serialised
    and stored to disk. ... To overcome this performance penalty a harness
    was implemented that maintained an algorithm instance object in memory."

:class:`ServiceContainer` therefore supports two lifecycles per deployment:

* ``"serialize"`` — the 2005 default Axis behaviour: before each call the
  instance is unpickled from disk (created fresh on the first call), and
  after each call it is pickled back.  Every invocation pays the round-trip.
* ``"harness"`` — the paper's fix: one instance lives in memory for the
  container's lifetime.

Both lifecycles are observable through per-service :class:`ServiceStats`
(invocation counts, serialisation time, bytes), which the PERF-4.5 bench
reports.

Dispatch itself is a :mod:`repro.ws.pipeline` handler chain (trace join,
deployment resolution, deadline re-anchoring, invocation stats, result
cache, lifecycle acquire/release, fault mapping — see
:func:`repro.ws.pipeline.default_server_handlers`); :meth:`invoke` just
runs the chain into the actual method dispatch.  Pass ``handlers=`` to
install a custom chain.
"""

from __future__ import annotations

import asyncio
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import ServiceError
from repro.ws import pipeline
from repro.ws.admission import AdmissionController, AdmissionHandler
from repro.ws.pipeline import (RESULT_CACHE_ENTRIES,  # noqa: F401
                               DispatchContext, _params_digest,
                               _result_cache, reset_result_cache)
from repro.ws.service import ServiceDefinition
from repro.ws.soap import SoapFault, SoapRequest, SoapResponse

LIFECYCLES = ("harness", "serialize")


@dataclass
class ServiceStats:
    """Observable per-deployment counters."""

    invocations: int = 0
    faults: int = 0
    cache_hits: int = 0
    serialize_seconds: float = 0.0
    serialized_bytes: int = 0
    dispatch_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form (SOAP/JSON-ready)."""
        return {
            "invocations": self.invocations,
            "faults": self.faults,
            "cache_hits": self.cache_hits,
            "serialize_seconds": self.serialize_seconds,
            "serialized_bytes": self.serialized_bytes,
            "dispatch_seconds": self.dispatch_seconds,
        }


@dataclass
class _Deployment:
    definition: ServiceDefinition
    factory: Callable[[], Any]
    lifecycle: str
    stats: ServiceStats = field(default_factory=ServiceStats)
    instance: Any = None
    state_path: Path | None = None
    # re-entrant: the serialize lifecycle holds it across the dispatch
    # while inner handlers (stats, faults) briefly take it again
    lock: threading.RLock = field(default_factory=threading.RLock)


class ServiceContainer:
    """Hosts service deployments and dispatches SOAP requests to them."""

    def __init__(self, name: str = "container",
                 state_dir: str | Path | None = None,
                 handlers=None,
                 admission: AdmissionController | None = None):
        self.name = name
        self._deployments: dict[str, _Deployment] = {}
        self._state_dir = Path(state_dir) if state_dir else \
            Path(tempfile.mkdtemp(prefix="repro-ws-"))
        self._state_dir.mkdir(parents=True, exist_ok=True)
        self.handlers = list(handlers) if handlers is not None \
            else pipeline.default_server_handlers()
        self.admission = admission
        if admission is not None:
            # right after the deadline anchor: a spent budget is
            # rejected before it costs an admission token, and a shed
            # happens before multicall expansion / stats / lifecycle
            # spend anything on the call
            self.handlers = pipeline.chain_insert_after(
                self.handlers, "deadline", AdmissionHandler(admission))

    # -- deployment ---------------------------------------------------------
    def deploy(self, service_cls: type, name: str | None = None,
               factory: Callable[[], Any] | None = None,
               lifecycle: str = "harness") -> ServiceDefinition:
        """Deploy *service_cls* under *name* with the given lifecycle."""
        if lifecycle not in LIFECYCLES:
            raise ServiceError(
                f"unknown lifecycle {lifecycle!r}; known: {LIFECYCLES}")
        definition = ServiceDefinition.from_class(service_cls, name)
        if definition.name in self._deployments:
            raise ServiceError(
                f"service {definition.name!r} already deployed")
        dep = _Deployment(definition=definition,
                          factory=factory or service_cls,
                          lifecycle=lifecycle)
        if lifecycle == "serialize":
            dep.state_path = self._state_dir / f"{definition.name}.pkl"
        self._deployments[definition.name] = dep
        return definition

    def undeploy(self, name: str) -> None:
        """Remove a deployment (and its serialised state)."""
        dep = self._deployments.pop(name, None)
        if dep is None:
            raise ServiceError(f"service {name!r} is not deployed")
        if dep.state_path and dep.state_path.exists():
            dep.state_path.unlink()

    def services(self) -> list[str]:
        """Sorted names of the deployed services."""
        return sorted(self._deployments)

    def definition(self, name: str) -> ServiceDefinition:
        """ServiceDefinition of a deployed service."""
        return self._deployment(name).definition

    def stats(self, name: str) -> ServiceStats:
        """Mutable stats record of a deployed service."""
        return self._deployment(name).stats

    def lifecycle(self, name: str) -> str:
        """Lifecycle name of a deployed service."""
        return self._deployment(name).lifecycle

    def _deployment(self, name: str) -> _Deployment:
        dep = self._deployments.get(name)
        if dep is None:
            raise SoapFault("soapenv:Client",
                            f"no service named {name!r} "
                            f"(deployed: {self.services()})")
        return dep

    # -- invocation ----------------------------------------------------------
    def invoke(self, request: SoapRequest) -> SoapResponse:
        """Dispatch one request through the handler chain."""
        ctx = DispatchContext(container=self)
        return pipeline.run_chain(
            self.handlers, request, ctx,
            lambda req: self._dispatch(req, ctx))

    def _dispatch(self, request: SoapRequest,
                  ctx: DispatchContext) -> SoapResponse:
        """The chain terminal: the actual operation dispatch."""
        dep = ctx.deployment
        result = dep.definition.dispatch(
            ctx.properties["instance"], request.operation, request.params)
        return SoapResponse(service=request.service,
                            operation=request.operation, result=result)

    async def invoke_async(self, request: SoapRequest) -> SoapResponse:
        """Dispatch one request without blocking the event loop.

        The sync handler chain runs unchanged on a worker thread
        (``asyncio.to_thread`` carries the ambient contextvars, so
        deadline scopes and trace context propagate); CPU-bound ML
        dispatches therefore never stall the serving loop.  Admission
        control still applies — the chain's ``admission`` step runs on
        the worker — but async front doors should prefer shedding via
        :meth:`~repro.ws.admission.AdmissionController.admit_async`
        before paying for the offload.
        """
        return await asyncio.to_thread(self.invoke, request)

    def call(self, service: str, operation: str, **params: Any) -> Any:
        """Convenience in-process invocation."""
        return self.invoke(SoapRequest(service, operation, params)).result

    # -- lifecycle plumbing ---------------------------------------------------
    def _acquire(self, dep: _Deployment) -> Any:
        if dep.lifecycle == "harness":
            if dep.instance is None:
                dep.instance = dep.factory()
            return dep.instance
        # serialize lifecycle: rebuild from disk (or create on first call)
        assert dep.state_path is not None
        start = time.perf_counter()
        if dep.state_path.exists():
            with dep.state_path.open("rb") as fp:
                instance = pickle.load(fp)
        else:
            instance = dep.factory()
        dep.stats.serialize_seconds += time.perf_counter() - start
        return instance

    def _release(self, dep: _Deployment, instance: Any) -> None:
        if dep.lifecycle == "harness":
            return
        assert dep.state_path is not None
        start = time.perf_counter()
        payload = pickle.dumps(instance)
        dep.state_path.write_bytes(payload)
        dep.stats.serialize_seconds += time.perf_counter() - start
        dep.stats.serialized_bytes = len(payload)

    def reset(self, name: str) -> None:
        """Discard any live/serialised instance state for *name*."""
        dep = self._deployment(name)
        with dep.lock:
            dep.instance = None
            if dep.state_path and dep.state_path.exists():
                dep.state_path.unlink()
            dep.stats = ServiceStats()
