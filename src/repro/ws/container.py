"""The service container (Tomcat/Axis analogue) with the two §4.5 lifecycles.

The paper's key performance observation:

    "repeated invocations of a particular Web Service often resulted in a
    significant performance penalty ... an instance of the service was
    created as an object for each invocation; if an object already existed
    this had to be re-built from its serialised state on disk.  On completion
    of the invocation the state of the object was recorded: it was serialised
    and stored to disk. ... To overcome this performance penalty a harness
    was implemented that maintained an algorithm instance object in memory."

:class:`ServiceContainer` therefore supports two lifecycles per deployment:

* ``"serialize"`` — the 2005 default Axis behaviour: before each call the
  instance is unpickled from disk (created fresh on the first call), and
  after each call it is pickled back.  Every invocation pays the round-trip.
* ``"harness"`` — the paper's fix: one instance lives in memory for the
  container's lifetime.

Both lifecycles are observable through per-service :class:`ServiceStats`
(invocation counts, serialisation time, bytes), which the PERF-4.5 bench
reports.
"""

from __future__ import annotations

import copy
import hashlib
import json
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.data import cache as datacache
from repro.errors import DeadlineExceeded, ServiceError
from repro.obs import SpanContext, get_metrics, get_tracer
from repro.ws.deadline import deadline_scope
from repro.ws.service import ServiceDefinition
from repro.ws.soap import (DEADLINE_FAULTCODE, SoapFault, SoapRequest,
                           SoapResponse)

LIFECYCLES = ("harness", "serialize")

#: Idempotent results kept process-wide (LRU beyond this).
RESULT_CACHE_ENTRIES = 256

#: Process-global idempotent-result cache.  ``cacheable=True`` declares
#: an operation *pure* — its result is a function of its arguments — so
#: results are shareable across every container hosting the same
#: implementation class (the class is part of the key).
_result_cache = datacache.LruCache(RESULT_CACHE_ENTRIES)


def reset_result_cache() -> None:
    """Drop all cached operation results (test isolation)."""
    _result_cache.clear()


def _params_digest(params: dict[str, Any]) -> str:
    """Order-independent content digest of one call's arguments."""
    canonical = json.dumps(params, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ServiceStats:
    """Observable per-deployment counters."""

    invocations: int = 0
    faults: int = 0
    cache_hits: int = 0
    serialize_seconds: float = 0.0
    serialized_bytes: int = 0
    dispatch_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form (SOAP/JSON-ready)."""
        return {
            "invocations": self.invocations,
            "faults": self.faults,
            "cache_hits": self.cache_hits,
            "serialize_seconds": self.serialize_seconds,
            "serialized_bytes": self.serialized_bytes,
            "dispatch_seconds": self.dispatch_seconds,
        }


@dataclass
class _Deployment:
    definition: ServiceDefinition
    factory: Callable[[], Any]
    lifecycle: str
    stats: ServiceStats = field(default_factory=ServiceStats)
    instance: Any = None
    state_path: Path | None = None
    lock: threading.Lock = field(default_factory=threading.Lock)


class ServiceContainer:
    """Hosts service deployments and dispatches SOAP requests to them."""

    def __init__(self, name: str = "container",
                 state_dir: str | Path | None = None):
        self.name = name
        self._deployments: dict[str, _Deployment] = {}
        self._state_dir = Path(state_dir) if state_dir else \
            Path(tempfile.mkdtemp(prefix="repro-ws-"))
        self._state_dir.mkdir(parents=True, exist_ok=True)

    # -- deployment ---------------------------------------------------------
    def deploy(self, service_cls: type, name: str | None = None,
               factory: Callable[[], Any] | None = None,
               lifecycle: str = "harness") -> ServiceDefinition:
        """Deploy *service_cls* under *name* with the given lifecycle."""
        if lifecycle not in LIFECYCLES:
            raise ServiceError(
                f"unknown lifecycle {lifecycle!r}; known: {LIFECYCLES}")
        definition = ServiceDefinition.from_class(service_cls, name)
        if definition.name in self._deployments:
            raise ServiceError(
                f"service {definition.name!r} already deployed")
        dep = _Deployment(definition=definition,
                          factory=factory or service_cls,
                          lifecycle=lifecycle)
        if lifecycle == "serialize":
            dep.state_path = self._state_dir / f"{definition.name}.pkl"
        self._deployments[definition.name] = dep
        return definition

    def undeploy(self, name: str) -> None:
        """Remove a deployment (and its serialised state)."""
        dep = self._deployments.pop(name, None)
        if dep is None:
            raise ServiceError(f"service {name!r} is not deployed")
        if dep.state_path and dep.state_path.exists():
            dep.state_path.unlink()

    def services(self) -> list[str]:
        """Sorted names of the deployed services."""
        return sorted(self._deployments)

    def definition(self, name: str) -> ServiceDefinition:
        """ServiceDefinition of a deployed service."""
        return self._deployment(name).definition

    def stats(self, name: str) -> ServiceStats:
        """Mutable stats record of a deployed service."""
        return self._deployment(name).stats

    def lifecycle(self, name: str) -> str:
        """Lifecycle name of a deployed service."""
        return self._deployment(name).lifecycle

    def _deployment(self, name: str) -> _Deployment:
        dep = self._deployments.get(name)
        if dep is None:
            raise SoapFault("soapenv:Client",
                            f"no service named {name!r} "
                            f"(deployed: {self.services()})")
        return dep

    # -- invocation ----------------------------------------------------------
    def invoke(self, request: SoapRequest) -> SoapResponse:
        """Dispatch one request through the deployment's lifecycle."""
        tracer = get_tracer()
        # server-side span: join the client's trace when the request
        # carries a <repro:TraceContext> header and no local span (an
        # HTTP handler or in-process transport span) is already active
        parent = tracer.current_span()
        if parent is None and request.trace_id:
            parent = SpanContext(request.trace_id, request.parent_span_id)
        name = f"dispatch:{request.service}.{request.operation}"
        with tracer.span(name, {"container": self.name},
                         parent=parent) as span:
            dep = self._deployment(request.service)
            span.set_attribute("lifecycle", dep.lifecycle)
            # re-anchor the caller's remaining budget on this host's
            # clock; every call the service itself makes inherits it
            with deadline_scope(request.deadline_s) as deadline:
                if deadline is not None and deadline.expired:
                    self._count_fault(request)
                    get_metrics().counter(
                        "ws.server.deadline_rejections",
                        service=request.service).inc()
                    raise SoapFault(
                        DEADLINE_FAULTCODE,
                        f"time budget exhausted before dispatching "
                        f"{request.service}.{request.operation}")
                return self._dispatch_locked(dep, request)

    def _dispatch_locked(self, dep: _Deployment,
                         request: SoapRequest) -> SoapResponse:
        metrics = get_metrics()
        with dep.lock:
            dep.stats.invocations += 1
            info = dep.definition.operations.get(request.operation)
            cache_key = None
            if info is not None and info.cacheable and \
                    datacache.enabled():
                cache_key = (dep.definition.cls, request.operation,
                             _params_digest(request.params))
                hit = _result_cache.get(cache_key)
                if hit is not None:
                    result, approx_bytes = hit
                    dep.stats.cache_hits += 1
                    metrics.counter("ws.cache.result.hits",
                                    service=request.service).inc()
                    metrics.counter("ws.cache.result.bytes_saved",
                                    service=request.service
                                    ).inc(approx_bytes)
                    # deep-copied: callers own their result objects
                    return SoapResponse(service=request.service,
                                        operation=request.operation,
                                        result=copy.deepcopy(result))
                metrics.counter("ws.cache.result.misses",
                                service=request.service).inc()
            instance = self._acquire(dep)
            start = time.perf_counter()
            try:
                result = dep.definition.dispatch(
                    instance, request.operation, request.params)
            except SoapFault:
                dep.stats.faults += 1
                self._count_fault(request)
                raise
            except DeadlineExceeded as exc:
                # a nested call ran out of budget mid-dispatch; surface
                # it under the dedicated fault code so the caller's
                # client resurfaces DeadlineExceeded, not a retriable
                # server fault
                dep.stats.faults += 1
                self._count_fault(request)
                raise SoapFault(DEADLINE_FAULTCODE, str(exc)) from exc
            except Exception as exc:
                dep.stats.faults += 1
                self._count_fault(request)
                raise SoapFault("soapenv:Server", str(exc),
                                detail=type(exc).__name__) from exc
            finally:
                elapsed = time.perf_counter() - start
                dep.stats.dispatch_seconds += elapsed
                get_metrics().histogram(
                    "ws.server.dispatch.seconds",
                    service=request.service,
                    operation=request.operation).observe(elapsed)
                self._release(dep, instance)
            if cache_key is not None:
                # estimate the dispatch cost a future hit avoids by the
                # canonical size of the answer
                approx_bytes = len(json.dumps(result, default=repr))
                _result_cache.put(
                    cache_key, (copy.deepcopy(result), approx_bytes))
        return SoapResponse(service=request.service,
                            operation=request.operation, result=result)

    @staticmethod
    def _count_fault(request: SoapRequest) -> None:
        get_metrics().counter("ws.server.faults", service=request.service,
                              operation=request.operation).inc()

    def call(self, service: str, operation: str, **params: Any) -> Any:
        """Convenience in-process invocation."""
        return self.invoke(SoapRequest(service, operation, params)).result

    # -- lifecycle plumbing ---------------------------------------------------
    def _acquire(self, dep: _Deployment) -> Any:
        if dep.lifecycle == "harness":
            if dep.instance is None:
                dep.instance = dep.factory()
            return dep.instance
        # serialize lifecycle: rebuild from disk (or create on first call)
        assert dep.state_path is not None
        start = time.perf_counter()
        if dep.state_path.exists():
            with dep.state_path.open("rb") as fp:
                instance = pickle.load(fp)
        else:
            instance = dep.factory()
        dep.stats.serialize_seconds += time.perf_counter() - start
        return instance

    def _release(self, dep: _Deployment, instance: Any) -> None:
        if dep.lifecycle == "harness":
            return
        assert dep.state_path is not None
        start = time.perf_counter()
        payload = pickle.dumps(instance)
        dep.state_path.write_bytes(payload)
        dep.stats.serialize_seconds += time.perf_counter() - start
        dep.stats.serialized_bytes = len(payload)

    def reset(self, name: str) -> None:
        """Discard any live/serialised instance state for *name*."""
        dep = self._deployment(name)
        with dep.lock:
            dep.instance = None
            if dep.state_path and dep.state_path.exists():
                dep.state_path.unlink()
            dep.stats = ServiceStats()
