"""POSIX shared-memory segments: the zero-copy tier under payload refs.

The PR-3 payload plane moves large parameters *by reference* but still
copies the bytes — sender store → SOAP envelope → receiver store — on
the first send, and every resolve copies them out again.  On one host
that copy is pure waste: DAME's typed-array transfer and the Grid-DDM
surveys both put intra-node data movement at the top of the cost stack
once compute is vectorised.  This module removes it.

A producer :meth:`SegmentStore.publish`-es a blob once into a named
``multiprocessing.shared_memory`` segment (``repro-shm-<digest16>``);
any same-host consumer :meth:`SegmentStore.attach`-es the segment and
gets a **memoryview into the shared pages** — no copy, no socket.  The
SOAP layer ships only the 64-hex digest (tagged ``via="shm"``), and
:func:`repro.ws.payload.resolve` maps the segment instead of reading
the envelope.  Misses (segment evicted, cross-host peer, shm disabled)
fall back to the classic inline path transparently.

Segment layout: a 24-byte header — magic ``RSHM``, format version, the
owner pid, the payload length — then the payload.  The payload is
written *before* the magic, so a consumer racing a mid-write producer
sees an invalid header and treats the segment as absent.  Integrity is
the same contract as :class:`~repro.ws.payload.PayloadStore`: the first
attach of each digest re-hashes the mapped bytes and refuses a segment
that does not hash to its name.

Lifecycle: the creating process owns its segments and unlinks them on
eviction (LRU, bounded count/bytes) and at :meth:`SegmentStore.close`.
Abnormal exits leak named segments by design of POSIX shm, so
:func:`sweep_orphans` scans ``/dev/shm`` for ``repro-shm-*`` whose
header owner pid is dead and reclaims them — the mesh supervisor runs
it at startup and whenever a worker is unpublished.

Kept free of :mod:`repro.obs`, :mod:`repro.chaos` and the mesh/policy
layers (enforced by ``tools/layering_lint.py``); counters for this tier
are emitted by :mod:`repro.ws.payload`, which wraps these primitives.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading

try:  # pragma: no cover - platform probe
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - no shm on this platform
    resource_tracker = None
    shared_memory = None

#: Name prefix of every segment this module creates (the sweep target).
SEGMENT_PREFIX = "repro-shm-"

#: Bounds of the process-local set of *owned* (created-here) segments.
OWNED_MAX_SEGMENTS = 64
OWNED_MAX_BYTES = 256 * 1024 * 1024

_MAGIC = b"RSHM"
_VERSION = 1
#: magic, version, 3 pad bytes, owner pid, payload length.
_HEADER = struct.Struct("<4sBxxxQQ")
HEADER_BYTES = _HEADER.size

_boot_id: str | None = None
_boot_lock = threading.Lock()


def boot_id() -> str:
    """A stable identifier of this host's current boot.

    Two processes reporting the same boot id share kernel shm objects;
    the transport layer compares peer-advertised boot ids against this
    one before preferring segment references over inline bytes.  Reads
    ``/proc/sys/kernel/random/boot_id`` where available, falling back
    to a per-hostname surrogate (still correct: equal ⇒ same host).
    """
    global _boot_id
    if _boot_id is None:
        with _boot_lock:
            if _boot_id is None:
                try:
                    with open("/proc/sys/kernel/random/boot_id",
                              encoding="ascii") as fh:
                        _boot_id = fh.read().strip()
                except OSError:
                    import socket
                    _boot_id = "host-" + hashlib.sha256(
                        socket.gethostname().encode()).hexdigest()[:32]
    return _boot_id


def supported() -> bool:
    """True when this platform can create named shared-memory segments."""
    return shared_memory is not None and os.name == "posix"


def segment_name(digest: str) -> str:
    """The shm object name for *digest* (first 16 hex chars suffice:
    collisions within one host's live working set are astronomically
    unlikely, and the attach-time re-hash catches one anyway)."""
    return SEGMENT_PREFIX + digest[:16]


def _untrack(shm) -> None:
    """Detach *shm* from the resource tracker.

    Python's tracker unlinks every registered segment when *any*
    attached process exits — exactly wrong for segments whose lifetime
    is owned explicitly by the creating process (and swept by the
    supervisor).  ``track=False`` only exists from 3.13, so unregister
    by hand on both the create and attach paths.
    """
    if resource_tracker is None:  # pragma: no cover - platform guard
        return
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


def _unlink(shm) -> None:
    """Unlink *shm* without upsetting the resource tracker.

    ``SharedMemory.unlink`` sends the tracker an unregister for the
    name, but every segment here was already unregistered at create or
    attach time (see :func:`_untrack`) — re-register first so the
    tracker daemon does not log a KeyError for the unmatched message.
    """
    if resource_tracker is not None:  # pragma: no branch
        try:
            resource_tracker.register(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
    shm.unlink()


def _quiet_close(shm) -> None:
    """Close *shm*, tolerating live exported views.

    CPython refuses to close an mmap while memoryviews export it, and
    ``SharedMemory.__del__`` retries the close at garbage collection —
    spraying ``Exception ignored ... BufferError`` at interpreter
    shutdown for every view a zero-copy consumer still holds.  Disarm
    instead: drop the segment's mmap reference (the last surviving view
    keeps the mapping alive and unmaps it silently when it dies) and
    close the file descriptor, leaving ``__del__`` nothing to retry.
    """
    try:
        shm.close()
    except BufferError:
        shm._mmap = None
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
            shm._fd = -1


class SegmentStore:
    """Publish/attach named shared-memory segments, content-addressed.

    One instance per process (see :func:`get_segment_store`).  *Owned*
    segments — created here — are LRU-bounded and unlinked on eviction;
    *attached* segments — created elsewhere — are kept mapped for the
    life of the process (their memoryviews may be referenced by live
    request objects) and merely closed on :meth:`reset`.
    """

    def __init__(self, max_segments: int = OWNED_MAX_SEGMENTS,
                 max_bytes: int = OWNED_MAX_BYTES):
        self.max_segments = max_segments
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        # digest → SharedMemory created by this process (insertion =
        # LRU order; move_to_end on re-publish)
        self._owned: dict[str, object] = {}
        self._owned_bytes = 0
        # digest → (SharedMemory, payload length) attached from peers
        self._attached: dict[str, tuple[object, int]] = {}
        self._verified: set[str] = set()

    # -- producer side ---------------------------------------------------

    def publish(self, digest: str, data: bytes | memoryview) -> bool:
        """Write *data* into the segment named for *digest*.

        Returns ``True`` when the segment exists after the call (fresh
        or already published), ``False`` when the platform refused
        (no shm support, ``/dev/shm`` full, permissions) — callers fall
        back to inline bytes.
        """
        if not supported():
            return False
        view = memoryview(data).cast("B")
        size = len(view)
        with self._lock:
            if digest in self._owned:
                return True
            name = segment_name(digest)
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=HEADER_BYTES + size)
            except FileExistsError:
                return True  # another local producer beat us to it
            except OSError:
                return False
            _untrack(shm)
            # payload first, header (with magic) last: a consumer racing
            # this write sees a zeroed header and reports a miss
            shm.buf[HEADER_BYTES:HEADER_BYTES + size] = view
            shm.buf[:HEADER_BYTES] = _HEADER.pack(
                _MAGIC, _VERSION, os.getpid(), size)
            self._owned[digest] = shm
            self._owned_bytes += size
            self._evict()
            return True

    def _evict(self) -> None:
        while self._owned and (
                len(self._owned) > self.max_segments or
                self._owned_bytes > self.max_bytes):
            digest = next(iter(self._owned))
            self._unlink_owned(digest)

    def _unlink_owned(self, digest: str) -> None:
        shm = self._owned.pop(digest)
        self._owned_bytes -= max(0, len(shm.buf) - HEADER_BYTES)
        try:
            _unlink(shm)
        except OSError:  # pragma: no cover - already reclaimed
            pass
        _quiet_close(shm)

    # -- consumer side ---------------------------------------------------

    def attach(self, digest: str) -> memoryview | None:
        """Map the segment for *digest*; returns a read-only view of the
        payload bytes (zero-copy), or ``None`` on any miss.

        The first attach of each digest re-hashes the mapped bytes —
        a segment that does not hash to its name is treated as absent
        (the classic inline fallback covers it), matching the
        :class:`~repro.ws.payload.PayloadStore` integrity contract.
        """
        if not supported():
            return None
        with self._lock:
            owned = self._owned.get(digest)
            if owned is not None:
                size = _HEADER.unpack_from(owned.buf)[3]
                return memoryview(owned.buf)[
                    HEADER_BYTES:HEADER_BYTES + size].toreadonly()
            entry = self._attached.get(digest)
            if entry is None:
                try:
                    shm = shared_memory.SharedMemory(
                        name=segment_name(digest))
                except (OSError, ValueError):
                    return None
                _untrack(shm)
                header = self._read_header(shm)
                if header is None:
                    shm.close()
                    return None
                entry = (shm, header[1])
                self._attached[digest] = entry
            shm, size = entry
            view = memoryview(shm.buf)[
                HEADER_BYTES:HEADER_BYTES + size].toreadonly()
            if digest not in self._verified:
                if hashlib.sha256(view).hexdigest() != digest:
                    view.release()
                    self._attached.pop(digest, None)
                    shm.close()
                    return None
                self._verified.add(digest)
            return view

    @staticmethod
    def _read_header(shm) -> tuple[int, int] | None:
        """(owner pid, payload length), or ``None`` if malformed."""
        if len(shm.buf) < HEADER_BYTES:
            return None
        magic, version, pid, size = _HEADER.unpack_from(shm.buf)
        if magic != _MAGIC or version != _VERSION or \
                size > len(shm.buf) - HEADER_BYTES:
            return None
        return pid, size

    # -- introspection / lifecycle --------------------------------------

    def holds(self, digest: str) -> bool:
        """True when this process created the segment for *digest*."""
        with self._lock:
            return digest in self._owned

    def __len__(self) -> int:
        with self._lock:
            return len(self._owned)

    @property
    def owned_bytes(self) -> int:
        """Payload bytes across segments this process created."""
        with self._lock:
            return self._owned_bytes

    def release_owned(self) -> int:
        """Unlink every owned segment; returns how many were dropped."""
        with self._lock:
            count = len(self._owned)
            for digest in list(self._owned):
                self._unlink_owned(digest)
            return count

    def close(self) -> None:
        """Unlink owned segments and drop attached mappings.

        Attached views handed out earlier keep their segments mapped
        until the last view is garbage-collected — those segments are
        disarmed (:func:`_quiet_close`) rather than force-closed, so
        the surviving view stays valid and nothing raises at exit.
        """
        with self._lock:
            for digest in list(self._owned):
                self._unlink_owned(digest)
            attached, self._attached = self._attached, {}
            self._verified = set()
        for shm, _ in attached.values():
            _quiet_close(shm)


_segment_store = SegmentStore()


def get_segment_store() -> SegmentStore:
    """The process-global segment store."""
    return _segment_store


def reset_segment_store() -> None:
    """Unlink owned segments and drop mappings (test isolation)."""
    _segment_store.close()


def sweep_orphans() -> int:
    """Reclaim ``repro-shm-*`` segments whose owner process is dead.

    POSIX named segments survive their creator's abnormal exit (that is
    the point of them), so a SIGKILLed worker leaks its published
    segments.  Scans ``/dev/shm``, reads each candidate's header, and
    unlinks segments whose recorded owner pid no longer exists — plus
    malformed ones, which can only be debris.  Segments owned by this
    process (or any live process) are left alone.  Returns the number
    of segments reclaimed.
    """
    if not supported():
        return 0
    try:
        names = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - tmpfs not mounted
        return 0
    swept = 0
    for name in names:
        if not name.startswith(SEGMENT_PREFIX):
            continue
        try:
            shm = shared_memory.SharedMemory(name=name)
        except (OSError, ValueError):
            continue  # unlinked between listdir and attach
        _untrack(shm)
        header = SegmentStore._read_header(shm)
        try:
            if header is None:
                _unlink(shm)
                swept += 1
                continue
            pid = header[0]
            if pid == os.getpid():
                continue
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                _unlink(shm)
                swept += 1
            except PermissionError:
                pass  # pid live, owned by someone else
        except OSError:  # pragma: no cover - lost a race to unlink
            pass
        finally:
            try:
                shm.close()
            except BufferError:  # pragma: no cover
                pass
    return swept
