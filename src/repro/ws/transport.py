"""Transports: how SOAP bytes travel between client and service.

Three implementations, all sharing one interface (:class:`Transport`):

* :class:`InProcessTransport` — straight into a local
  :class:`~repro.ws.container.ServiceContainer` (still paying the SOAP
  encode/decode, like a co-located Axis client).
* :class:`HttpTransport` — real sockets to an
  :class:`~repro.ws.httpd.SoapHttpServer` (localhost stands in for the
  paper's campus network).
* :class:`SimulatedTransport` — wraps another transport and charges a
  latency + bandwidth cost per message, either as real ``sleep`` time or as
  an accumulated *virtual clock*.  This is the substitution for the paper's
  1 Gb/s testbed network: distribution effects are functions of message
  count and payload size, which the model captures explicitly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import TransportError
from repro.obs import get_metrics, get_tracer
from repro.ws import payload, soap
from repro.ws.container import ServiceContainer
from repro.ws.deadline import current_deadline
from repro.ws.payload import PayloadMissError
from repro.ws.soap import SoapFault, SoapRequest, SoapResponse


class Transport:
    """Send one SOAP request, receive one SOAP response."""

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (default: none)."""


def stamp_trace_context(request: SoapRequest, span) -> None:
    """Inject *span*'s trace context into an unstamped request.

    A request already carrying a trace id keeps it (the outermost hop —
    usually the client proxy — wins), so wrapped transports don't
    overwrite the caller's context.
    """
    if span.recording and not request.trace_id:
        request.trace_id = span.trace_id
        request.parent_span_id = span.span_id


def apply_deadline(request: SoapRequest) -> None:
    """Enforce + propagate the ambient deadline on an outgoing request.

    Fails fast (:class:`~repro.errors.DeadlineExceeded`) when the budget
    is already spent, and stamps the remaining seconds onto an unstamped
    request so every hop below this one inherits the (shrinking) budget.
    An explicit ``deadline_s`` set by the caller wins.
    """
    deadline = current_deadline()
    if deadline is None:
        return
    deadline.check(f"send {request.service}.{request.operation}")
    if request.deadline_s is None:
        request.deadline_s = deadline.remaining()


def record_transport_metrics(transport: str, seconds: float,
                             bytes_sent: int, bytes_received: int) -> None:
    """File one send's latency + byte counts under the global registry."""
    metrics = get_metrics()
    metrics.histogram("ws.transport.seconds",
                      transport=transport).observe(seconds)
    metrics.counter("ws.transport.messages", transport=transport).inc()
    metrics.counter("ws.transport.bytes_sent",
                    transport=transport).inc(bytes_sent)
    metrics.counter("ws.transport.bytes_received",
                    transport=transport).inc(bytes_received)


def payload_fallback(send_once, request: SoapRequest,
                     peer: payload.PeerState) -> SoapResponse:
    """Externalize + send, with the transparent full-payload fallback.

    First attempt goes out with by-reference params for everything the
    peer is believed to hold.  A :class:`PayloadMissError` (the peer
    lost — or never had — a referenced blob, or a ref was corrupted in
    flight) clears the peer record and resends the original request
    fully inline, so callers never observe the miss.
    """
    try:
        return send_once(payload.externalize(request, peer))
    except PayloadMissError:
        get_metrics().counter("ws.payload.fallbacks").inc()
        peer.clear()
        return send_once(payload.internalize(request))


class InProcessTransport(Transport):
    """Serialise through SOAP but dispatch into a local container."""

    def __init__(self, container: ServiceContainer):
        self.container = container
        self.bytes_sent = 0
        self.bytes_received = 0
        self._peer = payload.PeerState()

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        start = time.perf_counter()
        with get_tracer().span("send:inprocess") as span:
            stamp_trace_context(request, span)
            apply_deadline(request)
            return payload_fallback(
                lambda outbound: self._exchange(outbound, span, start),
                request, self._peer)

    def _exchange(self, request: SoapRequest, span,
                  start: float) -> SoapResponse:
        wire = soap.encode_request(request)
        self.bytes_sent += len(wire)
        decoded = soap.decode_request(wire)  # resolves payload refs
        try:
            response = self.container.invoke(decoded)
            wire_out = soap.encode_response(response)
        except SoapFault as fault:
            wire_out = soap.encode_fault(fault)
        self.bytes_received += len(wire_out)
        span.set_attribute("bytes_sent", len(wire))
        span.set_attribute("bytes_received", len(wire_out))
        span.set_attribute("payload_refs", len(payload.refs_in(request)))
        record_transport_metrics(
            "inprocess", time.perf_counter() - start,
            len(wire), len(wire_out))
        return soap.decode_response(wire_out)


@dataclass
class NetworkModel:
    """A latency + bandwidth cost model for one network path.

    ``latency_s`` is charged once per message; payloads additionally take
    ``len(payload) / bandwidth_bps`` seconds.  The defaults model the
    paper's testbed: ~1 ms campus RTT and a 1 Gb/s link.
    """

    latency_s: float = 0.001
    bandwidth_bps: float = 1e9 / 8  # 1 Gb/s in bytes per second

    def transfer_time(self, n_bytes: int) -> float:
        """Seconds to move *n_bytes* over this network path.

        Callers must bill the bytes that actually cross the wire:
        :class:`SimulatedTransport` charges post-compression envelope
        sizes (see :func:`repro.ws.payload.simulated_wire_size`), so
        ref-sized and gzip-shrunk messages cost what they would on the
        paper's testbed, not their uncompressed document size.
        """
        return self.latency_s + n_bytes / self.bandwidth_bps

    def wire_cost(self, wire: bytes) -> tuple[int, float]:
        """(billed bytes, seconds) for one encoded SOAP message,
        honouring link-level compression of large bodies."""
        n_bytes = payload.simulated_wire_size(wire)
        return n_bytes, self.transfer_time(n_bytes)


#: A slow wide-area path (50 ms RTT, 10 Mb/s) for the streaming ablation.
WAN = NetworkModel(latency_s=0.050, bandwidth_bps=10e6 / 8)
#: The paper's testbed (§5.1): 1 Gb/s, sub-millisecond campus latency.
LAN = NetworkModel(latency_s=0.001, bandwidth_bps=1e9 / 8)


@dataclass
class SimulatedTransport(Transport):
    """Charge a :class:`NetworkModel` cost around an inner transport.

    With ``real_sleep=True`` the cost is spent in ``time.sleep`` (so
    wall-clock benchmarks see it); otherwise it accumulates in
    :attr:`virtual_seconds`, which deterministic tests read.
    """

    inner: Transport
    model: NetworkModel = field(default_factory=NetworkModel)
    real_sleep: bool = False
    virtual_seconds: float = 0.0
    messages: int = 0
    bytes_on_wire: int = 0

    def __post_init__(self) -> None:
        self._peer = payload.PeerState()

    def _charge(self, wire: bytes) -> int:
        """Bill one message; returns the post-compression billed bytes."""
        n_bytes, cost = self.model.wire_cost(wire)
        self.virtual_seconds += cost
        self.bytes_on_wire += n_bytes
        self.messages += 1
        if self.real_sleep:
            time.sleep(cost)
        return n_bytes

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        start = time.perf_counter()
        cost_before = self.virtual_seconds
        bytes_before = self.bytes_on_wire
        with get_tracer().span("send:simulated") as span:
            stamp_trace_context(request, span)
            apply_deadline(request)
            # replace repeat payloads with refs *before* billing, so the
            # modelled network sees the bytes the data plane really ships
            try:
                outbound = payload.externalize(request, self._peer)
            except PayloadMissError:
                get_metrics().counter("ws.payload.fallbacks").inc()
                self._peer.clear()
                outbound = payload.internalize(request)
            wire = soap.encode_request(outbound)
            sent_bytes = 0
            try:
                sent_bytes = self._charge(wire)
                try:
                    response = self.inner.send(outbound)
                    wire_out = soap.encode_response(response)
                except SoapFault as fault:
                    wire_out = soap.encode_fault(fault)
                    self._charge(wire_out)
                    raise
                self._charge(wire_out)
                return response
            finally:
                # the paper-model network cost this message pair incurred
                charged = self.virtual_seconds - cost_before
                wire_bytes = self.bytes_on_wire - bytes_before
                span.set_attribute("charge_seconds", round(charged, 6))
                span.set_attribute("wire_bytes", wire_bytes)
                span.set_attribute("payload_refs",
                                   len(payload.refs_in(outbound)))
                span.set_attribute("latency_s", self.model.latency_s)
                record_transport_metrics(
                    "simulated", time.perf_counter() - start,
                    sent_bytes, max(0, wire_bytes - sent_bytes))
                get_metrics().counter(
                    "ws.transport.simulated_cost_seconds").inc(charged)

    def close(self) -> None:
        self.inner.close()


class FailingTransport(Transport):
    """Test double: fail the first *failures* sends, then delegate.

    Used by the fault-tolerance benches to exercise job migration.
    """

    def __init__(self, inner: Transport, failures: int = 1):
        self.inner = inner
        self.remaining_failures = failures
        self.attempts = 0

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        self.attempts += 1
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise TransportError(
                f"simulated network failure (attempt {self.attempts})")
        return self.inner.send(request)

    def close(self) -> None:
        self.inner.close()
