"""Transports: how SOAP bytes travel between client and service.

Three byte movers, all sharing one interface (:class:`Transport`):

* :class:`InProcessTransport` — straight into a local
  :class:`~repro.ws.container.ServiceContainer` (still paying the SOAP
  encode/decode, like a co-located Axis client).
* :class:`HttpTransport` — real sockets to an
  :class:`~repro.ws.httpd.SoapHttpServer` (localhost stands in for the
  paper's campus network).
* :class:`SimulatedTransport` — wraps another transport and charges a
  latency + bandwidth cost per message, either as real ``sleep`` time or as
  an accumulated *virtual clock*.  This is the substitution for the paper's
  1 Gb/s testbed network: distribution effects are functions of message
  count and payload size, which the model captures explicitly.

Since the handler-chain refactor these classes are *pure* byte movers:
each implements only :meth:`ChainedTransport._exchange` (sockets,
container dispatch, cost modelling), while the cross-cutting concerns —
trace spans, metrics, deadline budgeting, payload-ref substitution,
gzip negotiation — run as a :mod:`repro.ws.pipeline` interceptor chain
around it.  Movers report telemetry only through the per-call
:class:`~repro.ws.pipeline.CallContext`; this module must not import
:mod:`repro.obs`, :mod:`repro.ws.breaker` or :mod:`repro.chaos`
(enforced by ``tools/layering_lint.py``).
"""

from __future__ import annotations

import asyncio
import http.client
import os
import socket
import threading
import time
from dataclasses import dataclass
from urllib.parse import quote, unquote, urlparse

from repro.errors import DeadlineExceeded, OverloadedError, TransportError
from repro.ws import payload, pipeline, shm, soap
from repro.ws.container import ServiceContainer
from repro.ws.pipeline import CallContext
from repro.ws.soap import SoapFault, SoapRequest, SoapResponse


def unix_url(socket_path: str, resource: str = "/") -> str:
    """The ``unix://`` endpoint URL for *socket_path* + *resource*.

    The socket path rides in the authority component, percent-encoded
    (``unix://%2Ftmp%2Fw.sock/services/Data``), so the resource path
    stays a plain HTTP request target and every URL-splitting consumer
    (proxies, registries, the WSDL re-pointer) works unchanged.
    """
    return "unix://" + quote(os.path.abspath(socket_path), safe="") + \
        (resource if resource.startswith("/") else "/" + resource)


def parse_unix_url(endpoint: str) -> tuple[str, str]:
    """``(socket_path, resource_path)`` of a ``unix://`` endpoint URL."""
    parsed = urlparse(endpoint)
    # netloc, not .hostname: hostname lowercases, and socket paths are
    # case-sensitive filesystem paths
    if parsed.scheme != "unix" or not parsed.netloc:
        raise TransportError(f"unsupported endpoint {endpoint!r}")
    return unquote(parsed.netloc), parsed.path or "/"


class Transport:
    """Send one SOAP request, receive one SOAP response."""

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        raise NotImplementedError

    async def send_async(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request from an event loop.

        Default: run the sync :meth:`send` on a worker thread, so any
        transport is awaitable; :class:`ChainedTransport` overrides
        this with a chain-running version and :class:`HttpTransport`
        moves bytes natively on asyncio streams.
        """
        return await asyncio.to_thread(self.send, request)

    def speaks(self, codec: str) -> bool:
        """True when the peer behind this transport is known to accept
        the named wire codec (e.g. ``"columnar"``).

        The default is conservative (``False`` → callers fall back to
        ARFF text, which every peer speaks).  :class:`HttpTransport`
        learns capabilities from the ``X-Repro-Codecs`` response header,
        so the first call to an un-probed peer ships ARFF and later
        calls upgrade — un-upgraded peers never see a frame.
        """
        return False

    def same_host(self) -> bool:
        """True when the peer is known to share this host's kernel.

        Drives the shared-memory payload tier: only a same-host peer
        can map a published segment, so the payload chain step consults
        this before sending ``via="shm"`` references.  Learned, not
        configured — :class:`HttpTransport` compares the peer's
        ``X-Repro-Boot`` response header against the local boot id, so
        the first exchange with any peer ships inline and later ones
        upgrade (cross-host peers simply never do).
        """
        return False

    def close(self) -> None:
        """Release any underlying resources (default: none)."""


class ChainedTransport(Transport):
    """A transport whose :meth:`send` runs an interceptor chain around a
    pure byte-moving :meth:`_exchange`.

    Pass ``interceptors`` to replace the default chain (see
    :func:`repro.ws.pipeline.default_transport_interceptors`); the list
    is consulted live, so tests may also mutate
    :attr:`interceptors` between calls.
    """

    kind = "chained"

    def __init__(self, interceptors=None):
        self.interceptors = list(interceptors) if interceptors is not None \
            else self.default_interceptors()

    def default_interceptors(self):
        """The chain installed when no explicit one is passed."""
        return pipeline.default_transport_interceptors()

    def endpoint_label(self) -> str:
        """Endpoint attribute for the chain's ``send:*`` span ("" = none)."""
        return ""

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        ctx = CallContext(kind=self.kind, endpoint=self.endpoint_label(),
                          service=request.service,
                          operation=request.operation)
        ctx.properties["same_host"] = self.same_host()
        return pipeline.run_chain(
            self.interceptors, request, ctx,
            lambda outbound: self._exchange(outbound, ctx))

    async def send_async(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request from an event loop.

        The same interceptor chain runs (async mirrors where steps
        provide them, thread-bridged otherwise) into
        :meth:`_exchange_async`, so sync and async callers get
        identical policy and telemetry.
        """
        ctx = CallContext(kind=self.kind, endpoint=self.endpoint_label(),
                          service=request.service,
                          operation=request.operation)
        ctx.properties["same_host"] = self.same_host()

        async def terminal(outbound: SoapRequest) -> SoapResponse:
            return await self._exchange_async(outbound, ctx)

        return await pipeline.run_chain_async(
            self.interceptors, request, ctx, terminal)

    async def _exchange_async(self, request: SoapRequest,
                              ctx: CallContext = None) -> SoapResponse:
        """Async byte move; default runs :meth:`_exchange` off-loop."""
        return await asyncio.to_thread(self._exchange, request, ctx)

    def _context_of(self, ctx) -> CallContext:
        """Normalise *ctx* for direct ``_exchange`` calls (tests poke the
        mover with legacy ``(request, span, start)`` arguments); a real
        per-call context from :meth:`send` passes through unchanged."""
        if isinstance(ctx, CallContext):
            return ctx
        return CallContext(kind=self.kind, endpoint=self.endpoint_label())

    def _exchange(self, request: SoapRequest, ctx: CallContext = None,
                  *_legacy) -> SoapResponse:
        raise NotImplementedError


class InProcessTransport(ChainedTransport):
    """Serialise through SOAP but dispatch into a local container."""

    kind = "inprocess"

    def __init__(self, container: ServiceContainer, interceptors=None):
        super().__init__(interceptors)
        self.container = container
        self.bytes_sent = 0
        self.bytes_received = 0

    def speaks(self, codec: str) -> bool:
        """Both ends are this process, so every local codec works."""
        return codec == "columnar"

    def _exchange(self, request: SoapRequest, ctx: CallContext = None,
                  *_legacy) -> SoapResponse:
        ctx = self._context_of(ctx)
        wire = soap.encode_request(request)
        self.bytes_sent += len(wire)
        decoded = soap.decode_request(wire)  # resolves payload refs
        try:
            response = self.container.invoke(decoded)
            wire_out = soap.encode_response(response)
        except SoapFault as fault:
            wire_out = soap.encode_fault(fault)
        except OverloadedError as exc:
            # same wire behaviour as the HTTP gateways: a shed becomes
            # the dedicated fault, decoded back into OverloadedError
            wire_out = soap.encode_fault(soap.fault_for(exc))
        self.bytes_received += len(wire_out)
        ctx.note("bytes_sent", len(wire))
        ctx.note("bytes_received", len(wire_out))
        ctx.note("payload_refs", len(payload.refs_in(request)))
        ctx.on_wire(len(wire), len(wire_out))
        return soap.decode_response(wire_out)


class HttpTransport(ChainedTransport):
    """SOAP POST over a persistent HTTP connection.

    Bodies above :data:`repro.ws.payload.COMPRESS_MIN_BYTES` go out
    gzip-compressed (``Content-Encoding: gzip``), and every request
    advertises ``Accept-Encoding: gzip`` so a compressing server can
    answer in kind; a peer that ignores both stays fully interoperable.
    Pass ``compress=False`` to negotiate identity encoding only (the
    flag feeds the chain's gzip step).
    """

    kind = "http"

    def __init__(self, endpoint: str, timeout: float = 30.0,
                 compress: bool = True, interceptors=None):
        self.endpoint = endpoint
        self._timeout = timeout
        self._configure(endpoint)
        # keep-alive pool: each logical call checks a connection out for
        # exclusive use and returns it after a clean exchange, so
        # concurrent callers never interleave request/response pairs on
        # one socket (and never misattribute another call's staleness)
        self._pool: list[http.client.HTTPConnection] = []
        self._pool_lock = threading.Lock()
        self._apool: list[tuple[asyncio.StreamReader,
                                asyncio.StreamWriter]] = []
        self.compress = compress
        self.bytes_sent = 0
        self.bytes_received = 0
        # wire codecs the peer has advertised via X-Repro-Codecs; grows
        # monotonically as responses come back (capability discovery)
        self.peer_codecs: frozenset[str] = frozenset()
        # the peer's host boot id (X-Repro-Boot); learned the same way
        self.peer_boot = ""
        super().__init__(interceptors)

    def _configure(self, endpoint: str) -> None:
        """Parse *endpoint* into dial coordinates (subclass seam)."""
        parsed = urlparse(endpoint)
        if parsed.scheme != "http" or not parsed.hostname:
            raise TransportError(f"unsupported endpoint {endpoint!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._path = parsed.path or "/"
        self._netloc = f"{self._host}:{self._port}"

    def _new_connection(self) -> http.client.HTTPConnection:
        """A fresh connection to the peer (subclass seam)."""
        return http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout)

    def speaks(self, codec: str) -> bool:
        """True once the server has advertised *codec* in a response."""
        return codec in self.peer_codecs

    def same_host(self) -> bool:
        """True once the server has advertised this host's boot id."""
        return bool(self.peer_boot) and self.peer_boot == shm.boot_id()

    def default_interceptors(self):
        """The standard HTTP chain, with the gzip negotiation step."""
        return pipeline.default_transport_interceptors(
            compress=self.compress)

    def endpoint_label(self) -> str:
        """This transport's URL, tagged on its ``send:http`` spans."""
        return self.endpoint

    #: The pooled keep-alive connection was closed by the server between
    #: exchanges; a fresh connection deserves one silent retry.
    _STALE_ERRORS = (http.client.RemoteDisconnected,
                     http.client.BadStatusLine)

    def _checkout(self) -> tuple[http.client.HTTPConnection, bool]:
        """An exclusive connection for one logical call.

        Returns ``(conn, reused)``: a pooled keep-alive connection when
        one is idle (``reused=True`` — eligible for the one stale
        retry), a fresh one otherwise.
        """
        with self._pool_lock:
            if self._pool:
                return self._pool.pop(), True
        return self._new_connection(), False

    def _checkin(self, conn: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            self._pool.append(conn)

    def _deadline_timeout(self, request: SoapRequest) -> float:
        """Never wait on a socket longer than the remaining budget."""
        effective = self._timeout
        if request.deadline_s is not None:
            effective = min(effective, max(request.deadline_s, 1e-3))
        return effective

    def _post(self, conn: http.client.HTTPConnection,
              request: SoapRequest, wire: bytes, headers: dict):
        effective = self._deadline_timeout(request)
        conn.timeout = effective
        if conn.sock is not None:
            conn.sock.settimeout(effective)
        conn.request("POST", self._path, body=wire, headers=headers)
        http_response = conn.getresponse()
        return http_response, http_response.read()

    def _raise_unreachable(self, exc: Exception, request: SoapRequest,
                           ctx: CallContext) -> None:
        ctx.on_transport_error()
        if isinstance(exc, TimeoutError) and \
                request.deadline_s is not None and \
                request.deadline_s < self._timeout:
            raise DeadlineExceeded(
                f"{self.endpoint} did not answer within the "
                f"remaining {request.deadline_s:.3f}s budget"
            ) from exc
        raise TransportError(
            f"cannot reach {self.endpoint}: {exc}") from exc

    def _prepare(self, request: SoapRequest,
                 ctx: CallContext) -> tuple[bytes, dict]:
        """Encode one request to ``(wire, headers)``."""
        encoded = soap.encode_request(request)
        headers = {
            "Content-Type": "text/xml; charset=utf-8",
            "SOAPAction": f'"{request.operation}"',
            # advertise the columnar dataset codec; servers answer with
            # X-Repro-Codecs and callers check Transport.speaks() before
            # shipping binary frames instead of ARFF text
            "Accept": "text/xml, application/x-repro-columnar",
        }
        if request.principal:
            # mirrored out of the envelope so admission front doors can
            # identify the caller without an XML parse
            headers["X-Repro-Principal"] = request.principal
        if request.priority:
            headers["X-Repro-Priority"] = str(request.priority)
        wire = encoded
        if ctx.get("accept_gzip"):
            headers["Accept-Encoding"] = "gzip"
            wire, encoding = payload.maybe_compress(encoded)
            if encoding:
                headers["Content-Encoding"] = encoding
        return wire, headers

    def _finish(self, request: SoapRequest, ctx: CallContext, wire: bytes,
                body: bytes, status: int,
                content_encoding: str | None,
                codecs_header: str | None = None,
                boot_header: str | None = None) -> SoapResponse:
        """Account for + decode one completed exchange."""
        if codecs_header:
            advertised = {token.strip() for token in codecs_header.split(",")
                          if token.strip()}
            if not advertised <= self.peer_codecs:
                self.peer_codecs = self.peer_codecs | frozenset(advertised)
        if boot_header:
            self.peer_boot = boot_header.strip()
        self.bytes_received += len(body)
        ctx.note("bytes_sent", len(wire))
        ctx.note("bytes_received", len(body))
        ctx.note("payload_refs", len(payload.refs_in(request)))
        ctx.note("http_status", status)
        ctx.on_wire(len(wire), len(body))
        body = payload.decompress(body, content_encoding)
        return soap.decode_response(body)  # raises SoapFault on faults

    def _exchange(self, request: SoapRequest, ctx: CallContext = None,
                  *_legacy) -> SoapResponse:
        ctx = self._context_of(ctx)
        wire, headers = self._prepare(request, ctx)
        self.bytes_sent += len(wire)
        conn, reused = self._checkout()
        try:
            http_response, body = self._post(conn, request, wire, headers)
        except self._STALE_ERRORS as exc:
            conn.close()
            if not reused:
                self._raise_unreachable(exc, request, ctx)
            # a keep-alive connection pooled from an earlier exchange
            # went stale under us; that says nothing about endpoint
            # health, so retry once on a fresh connection instead of
            # surfacing a failure to the retry/breaker layers.  The
            # retry connection is this call's own — concurrent callers
            # hold their own checkouts, so exactly one retry happens
            # per logical call and the breaker sees at most one verdict
            conn, reused = self._new_connection(), False
            ctx.note("stale_retry", True)
            ctx.emit_counter("ws.transport.stale_retries")
            try:
                http_response, body = self._post(conn, request, wire,
                                                 headers)
            except (OSError, http.client.HTTPException) as retry_exc:
                conn.close()
                self._raise_unreachable(retry_exc, request, ctx)
        except (OSError, http.client.HTTPException) as exc:
            conn.close()
            self._raise_unreachable(exc, request, ctx)
        self._checkin(conn)
        return self._finish(request, ctx, wire, body, http_response.status,
                            http_response.getheader("Content-Encoding"),
                            http_response.getheader("X-Repro-Codecs"),
                            http_response.getheader("X-Repro-Boot"))

    # -- native asyncio exchange --------------------------------------------

    _ASYNC_STALE_ERRORS = (ConnectionResetError, BrokenPipeError,
                           asyncio.IncompleteReadError)

    def _checkout_async(self) -> tuple[tuple[asyncio.StreamReader,
                                             asyncio.StreamWriter] | None,
                                       bool]:
        """A pooled stream pair, or ``(None, False)`` to dial fresh.

        Only ever called on the owning event loop, so the bare list
        needs no lock.
        """
        if self._apool:
            return self._apool.pop(), True
        return None, False

    async def _dial(self) -> tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]:
        return await asyncio.open_connection(self._host, self._port)

    async def _post_async(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter,
                          wire: bytes, headers: dict
                          ) -> tuple[int, dict, bytes]:
        """One raw HTTP/1.1 POST over asyncio streams.

        Returns ``(status, lowercased headers, body)``.  An empty read
        on the status line surfaces as ``IncompleteReadError`` — the
        stale-connection signal, same as the sync path's
        ``RemoteDisconnected``.
        """
        lines = [f"POST {self._path} HTTP/1.1",
                 f"Host: {self._netloc}",
                 f"Content-Length: {len(wire)}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(wire)
        await writer.drain()

        status_line = await reader.readuntil(b"\r\n")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise TransportError(
                f"malformed status line from {self.endpoint}: "
                f"{status_line!r}")
        status = int(parts[1])
        response_headers: dict[str, str] = {}
        while True:
            line = (await reader.readuntil(b"\r\n")).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = response_headers.get("content-length")
        if length is None:
            raise TransportError(
                f"{self.endpoint} answered without Content-Length")
        body = await reader.readexactly(int(length))
        return status, response_headers, body

    async def _exchange_async(self, request: SoapRequest,
                              ctx: CallContext = None) -> SoapResponse:
        """The sync exchange's semantics on asyncio streams.

        Same keep-alive pooling (per-loop), same single stale retry for
        pooled connections, same deadline-bounded socket wait — but no
        thread is held while the server works.
        """
        ctx = self._context_of(ctx)
        wire, headers = self._prepare(request, ctx)
        self.bytes_sent += len(wire)
        effective = self._deadline_timeout(request)

        async def attempt(pair, reused):
            if pair is None:
                pair = await self._dial()
            try:
                result = await asyncio.wait_for(
                    self._post_async(pair[0], pair[1], wire, headers),
                    timeout=effective)
            except BaseException:
                pair[1].close()
                raise
            return pair, result

        pair, reused = self._checkout_async()
        try:
            try:
                pair, (status, response_headers, body) = \
                    await attempt(pair, reused)
            except self._ASYNC_STALE_ERRORS as exc:
                if not reused:
                    self._raise_unreachable(exc, request, ctx)
                ctx.note("stale_retry", True)
                ctx.emit_counter("ws.transport.stale_retries")
                try:
                    pair, (status, response_headers, body) = \
                        await attempt(None, False)
                except (OSError, asyncio.IncompleteReadError) as retry_exc:
                    self._raise_unreachable(retry_exc, request, ctx)
        except asyncio.TimeoutError as exc:
            self._raise_unreachable(TimeoutError(str(exc) or "timed out"),
                                    request, ctx)
        except (OSError, asyncio.IncompleteReadError) as exc:
            self._raise_unreachable(exc, request, ctx)
        self._apool.append(pair)
        return self._finish(request, ctx, wire, body, status,
                            response_headers.get("content-encoding"),
                            response_headers.get("x-repro-codecs"),
                            response_headers.get("x-repro-boot"))

    def close(self) -> None:
        """Release underlying resources."""
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()
        apool, self._apool = self._apool, []
        for _, writer in apool:
            try:
                writer.close()
            except RuntimeError:
                pass  # owning event loop already closed; socket dies with it


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` plumbing over an ``AF_UNIX`` stream socket."""

    def __init__(self, socket_path: str, timeout: float):
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            self.sock.settimeout(self.timeout)
        self.sock.connect(self._socket_path)


class UnixSocketTransport(HttpTransport):
    """SOAP POST over a Unix domain socket (``unix://`` endpoints).

    The same HTTP/1.1 framing as :class:`HttpTransport` — and therefore
    the same keep-alive pooling, stale retry, gzip negotiation and
    interceptor chain — over an ``AF_UNIX`` stream instead of TCP
    loopback: no packetisation, no pseudo-congestion-control, roughly
    half the syscall cost per round trip.  Endpoint URLs look like
    ``unix://%2Ftmp%2Fworker.sock/services/Data`` (see
    :func:`unix_url`); the socket path is by construction same-machine,
    which is what makes the shared-memory payload tier safe to
    negotiate over it.
    """

    kind = "uds"

    def _configure(self, endpoint: str) -> None:
        self._socket_path, self._path = parse_unix_url(endpoint)
        # AF_UNIX has no authority; a fixed Host keeps HTTP/1.1 valid
        self._netloc = "localhost"

    def _new_connection(self) -> http.client.HTTPConnection:
        return _UnixHTTPConnection(self._socket_path, self._timeout)

    async def _dial(self) -> tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]:
        return await asyncio.open_unix_connection(self._socket_path)


def transport_for(endpoint: str, *, timeout: float = 30.0,
                  compress: bool = True,
                  interceptors=None) -> HttpTransport:
    """The right socket transport for *endpoint*'s URL scheme
    (``http://`` → :class:`HttpTransport`, ``unix://`` →
    :class:`UnixSocketTransport`)."""
    cls = UnixSocketTransport \
        if urlparse(endpoint).scheme == "unix" else HttpTransport
    return cls(endpoint, timeout=timeout, compress=compress,
               interceptors=interceptors)


@dataclass
class NetworkModel:
    """A latency + bandwidth cost model for one network path.

    ``latency_s`` is charged once per message; payloads additionally take
    ``len(payload) / bandwidth_bps`` seconds.  The defaults model the
    paper's testbed: ~1 ms campus RTT and a 1 Gb/s link.
    """

    latency_s: float = 0.001
    bandwidth_bps: float = 1e9 / 8  # 1 Gb/s in bytes per second

    def transfer_time(self, n_bytes: int) -> float:
        """Seconds to move *n_bytes* over this network path.

        Callers must bill the bytes that actually cross the wire:
        :class:`SimulatedTransport` charges post-compression envelope
        sizes (see :func:`repro.ws.payload.simulated_wire_size`), so
        ref-sized and gzip-shrunk messages cost what they would on the
        paper's testbed, not their uncompressed document size.
        """
        return self.latency_s + n_bytes / self.bandwidth_bps

    def wire_cost(self, wire: bytes) -> tuple[int, float]:
        """(billed bytes, seconds) for one encoded SOAP message,
        honouring link-level compression of large bodies."""
        n_bytes = payload.simulated_wire_size(wire)
        return n_bytes, self.transfer_time(n_bytes)


#: A slow wide-area path (50 ms RTT, 10 Mb/s) for the streaming ablation.
WAN = NetworkModel(latency_s=0.050, bandwidth_bps=10e6 / 8)
#: The paper's testbed (§5.1): 1 Gb/s, sub-millisecond campus latency.
LAN = NetworkModel(latency_s=0.001, bandwidth_bps=1e9 / 8)


class SimulatedTransport(ChainedTransport):
    """Charge a :class:`NetworkModel` cost around an inner transport.

    With ``real_sleep=True`` the cost is spent in ``time.sleep`` (so
    wall-clock benchmarks see it); otherwise it accumulates in
    :attr:`virtual_seconds`, which deterministic tests read.
    """

    kind = "simulated"

    def __init__(self, inner: Transport,
                 model: NetworkModel | None = None,
                 real_sleep: bool = False, interceptors=None):
        self.inner = inner
        self.model = model if model is not None else NetworkModel()
        self.real_sleep = real_sleep
        self.virtual_seconds = 0.0
        self.messages = 0
        self.bytes_on_wire = 0
        super().__init__(interceptors)

    def speaks(self, codec: str) -> bool:
        """The modelled network is codec-transparent; ask the peer."""
        return self.inner.speaks(codec)

    def default_interceptors(self):
        """The standard chain with the externalize-only miss fallback."""
        # the modelled network bills what the data plane really ships:
        # payload refs are substituted *before* costing, and a miss
        # surfacing from the inner transport propagates (only a miss
        # during externalisation is healed locally)
        return pipeline.default_transport_interceptors(
            resend_on_miss=False)

    def _charge(self, wire: bytes) -> int:
        """Bill one message; returns the post-compression billed bytes."""
        n_bytes, cost = self.model.wire_cost(wire)
        self.virtual_seconds += cost
        self.bytes_on_wire += n_bytes
        self.messages += 1
        if self.real_sleep:
            time.sleep(cost)
        return n_bytes

    def _exchange(self, request: SoapRequest, ctx: CallContext = None,
                  *_legacy) -> SoapResponse:
        ctx = self._context_of(ctx)
        cost_before = self.virtual_seconds
        bytes_before = self.bytes_on_wire
        wire = soap.encode_request(request)
        sent_bytes = 0
        try:
            sent_bytes = self._charge(wire)
            try:
                response = self.inner.send(request)
                wire_out = soap.encode_response(response)
            except SoapFault as fault:
                wire_out = soap.encode_fault(fault)
                self._charge(wire_out)
                raise
            self._charge(wire_out)
            return response
        finally:
            # the paper-model network cost this message pair incurred
            charged = self.virtual_seconds - cost_before
            wire_bytes = self.bytes_on_wire - bytes_before
            ctx.note("charge_seconds", round(charged, 6))
            ctx.note("wire_bytes", wire_bytes)
            ctx.note("payload_refs", len(payload.refs_in(request)))
            ctx.note("latency_s", self.model.latency_s)
            ctx.on_wire(sent_bytes, max(0, wire_bytes - sent_bytes))
            ctx.emit_counter("ws.transport.simulated_cost_seconds",
                             charged)

    def close(self) -> None:
        self.inner.close()


class FailingTransport(Transport):
    """Test double: fail the first *failures* sends, then delegate.

    Used by the fault-tolerance benches to exercise job migration.
    """

    def __init__(self, inner: Transport, failures: int = 1):
        self.inner = inner
        self.remaining_failures = failures
        self.attempts = 0

    def speaks(self, codec: str) -> bool:
        """Failures don't change what the peer can decode."""
        return self.inner.speaks(codec)

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        self.attempts += 1
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise TransportError(
                f"simulated network failure (attempt {self.attempts})")
        return self.inner.send(request)

    def close(self) -> None:
        self.inner.close()


# Backwards-compatible re-exports: these helpers lived here before the
# handler-chain refactor moved them into the policy layer.
from repro.ws.pipeline import (apply_deadline, payload_fallback,  # noqa: E402,F401
                               record_transport_metrics,
                               stamp_trace_context)
