"""Transports: how SOAP bytes travel between client and service.

Three implementations, all sharing one interface (:class:`Transport`):

* :class:`InProcessTransport` — straight into a local
  :class:`~repro.ws.container.ServiceContainer` (still paying the SOAP
  encode/decode, like a co-located Axis client).
* :class:`HttpTransport` — real sockets to an
  :class:`~repro.ws.httpd.SoapHttpServer` (localhost stands in for the
  paper's campus network).
* :class:`SimulatedTransport` — wraps another transport and charges a
  latency + bandwidth cost per message, either as real ``sleep`` time or as
  an accumulated *virtual clock*.  This is the substitution for the paper's
  1 Gb/s testbed network: distribution effects are functions of message
  count and payload size, which the model captures explicitly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import TransportError
from repro.obs import get_metrics, get_tracer
from repro.ws import soap
from repro.ws.container import ServiceContainer
from repro.ws.deadline import current_deadline
from repro.ws.soap import SoapFault, SoapRequest, SoapResponse


class Transport:
    """Send one SOAP request, receive one SOAP response."""

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (default: none)."""


def stamp_trace_context(request: SoapRequest, span) -> None:
    """Inject *span*'s trace context into an unstamped request.

    A request already carrying a trace id keeps it (the outermost hop —
    usually the client proxy — wins), so wrapped transports don't
    overwrite the caller's context.
    """
    if span.recording and not request.trace_id:
        request.trace_id = span.trace_id
        request.parent_span_id = span.span_id


def apply_deadline(request: SoapRequest) -> None:
    """Enforce + propagate the ambient deadline on an outgoing request.

    Fails fast (:class:`~repro.errors.DeadlineExceeded`) when the budget
    is already spent, and stamps the remaining seconds onto an unstamped
    request so every hop below this one inherits the (shrinking) budget.
    An explicit ``deadline_s`` set by the caller wins.
    """
    deadline = current_deadline()
    if deadline is None:
        return
    deadline.check(f"send {request.service}.{request.operation}")
    if request.deadline_s is None:
        request.deadline_s = deadline.remaining()


def record_transport_metrics(transport: str, seconds: float,
                             bytes_sent: int, bytes_received: int) -> None:
    """File one send's latency + byte counts under the global registry."""
    metrics = get_metrics()
    metrics.histogram("ws.transport.seconds",
                      transport=transport).observe(seconds)
    metrics.counter("ws.transport.messages", transport=transport).inc()
    metrics.counter("ws.transport.bytes_sent",
                    transport=transport).inc(bytes_sent)
    metrics.counter("ws.transport.bytes_received",
                    transport=transport).inc(bytes_received)


class InProcessTransport(Transport):
    """Serialise through SOAP but dispatch into a local container."""

    def __init__(self, container: ServiceContainer):
        self.container = container
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        start = time.perf_counter()
        with get_tracer().span("send:inprocess") as span:
            stamp_trace_context(request, span)
            apply_deadline(request)
            wire = soap.encode_request(request)
            self.bytes_sent += len(wire)
            decoded = soap.decode_request(wire)
            try:
                response = self.container.invoke(decoded)
                wire_out = soap.encode_response(response)
            except SoapFault as fault:
                wire_out = soap.encode_fault(fault)
            self.bytes_received += len(wire_out)
            span.set_attribute("bytes_sent", len(wire))
            span.set_attribute("bytes_received", len(wire_out))
            record_transport_metrics(
                "inprocess", time.perf_counter() - start,
                len(wire), len(wire_out))
            return soap.decode_response(wire_out)


@dataclass
class NetworkModel:
    """A latency + bandwidth cost model for one network path.

    ``latency_s`` is charged once per message; payloads additionally take
    ``len(payload) / bandwidth_bps`` seconds.  The defaults model the
    paper's testbed: ~1 ms campus RTT and a 1 Gb/s link.
    """

    latency_s: float = 0.001
    bandwidth_bps: float = 1e9 / 8  # 1 Gb/s in bytes per second

    def transfer_time(self, n_bytes: int) -> float:
        """Seconds to move *n_bytes* over this network path."""
        return self.latency_s + n_bytes / self.bandwidth_bps


#: A slow wide-area path (50 ms RTT, 10 Mb/s) for the streaming ablation.
WAN = NetworkModel(latency_s=0.050, bandwidth_bps=10e6 / 8)
#: The paper's testbed (§5.1): 1 Gb/s, sub-millisecond campus latency.
LAN = NetworkModel(latency_s=0.001, bandwidth_bps=1e9 / 8)


@dataclass
class SimulatedTransport(Transport):
    """Charge a :class:`NetworkModel` cost around an inner transport.

    With ``real_sleep=True`` the cost is spent in ``time.sleep`` (so
    wall-clock benchmarks see it); otherwise it accumulates in
    :attr:`virtual_seconds`, which deterministic tests read.
    """

    inner: Transport
    model: NetworkModel = field(default_factory=NetworkModel)
    real_sleep: bool = False
    virtual_seconds: float = 0.0
    messages: int = 0
    bytes_on_wire: int = 0

    def _charge(self, n_bytes: int) -> None:
        cost = self.model.transfer_time(n_bytes)
        self.virtual_seconds += cost
        self.bytes_on_wire += n_bytes
        self.messages += 1
        if self.real_sleep:
            time.sleep(cost)

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        start = time.perf_counter()
        cost_before = self.virtual_seconds
        bytes_before = self.bytes_on_wire
        with get_tracer().span("send:simulated") as span:
            stamp_trace_context(request, span)
            apply_deadline(request)
            wire = soap.encode_request(request)
            try:
                self._charge(len(wire))
                try:
                    response = self.inner.send(request)
                    wire_out = soap.encode_response(response)
                except SoapFault as fault:
                    wire_out = soap.encode_fault(fault)
                    self._charge(len(wire_out))
                    raise
                self._charge(len(wire_out))
                return response
            finally:
                # the paper-model network cost this message pair incurred
                charged = self.virtual_seconds - cost_before
                wire_bytes = self.bytes_on_wire - bytes_before
                span.set_attribute("charge_seconds", round(charged, 6))
                span.set_attribute("wire_bytes", wire_bytes)
                span.set_attribute("latency_s", self.model.latency_s)
                record_transport_metrics(
                    "simulated", time.perf_counter() - start,
                    len(wire), wire_bytes - len(wire))
                get_metrics().counter(
                    "ws.transport.simulated_cost_seconds").inc(charged)

    def close(self) -> None:
        self.inner.close()


class FailingTransport(Transport):
    """Test double: fail the first *failures* sends, then delegate.

    Used by the fault-tolerance benches to exercise job migration.
    """

    def __init__(self, inner: Transport, failures: int = 1):
        self.inner = inner
        self.remaining_failures = failures
        self.attempts = 0

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        self.attempts += 1
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise TransportError(
                f"simulated network failure (attempt {self.attempts})")
        return self.inner.send(request)

    def close(self) -> None:
        self.inner.close()
