"""Composable interceptor pipelines — the Axis handler-chain analogue.

The paper's services run under Tomcat/Axis, where every message passes
through configurable *handler chains* before and after the actual
transport/dispatch.  This module is our equivalent: the cross-cutting
concerns that used to live inline in ``HttpTransport.send``,
``ServiceProxy.call`` and ``ServiceContainer.invoke`` are each one named
:class:`ClientInterceptor` / :class:`ServerHandler`, composed into
ordered chains around a *terminal* (the pure byte mover or the actual
method dispatch).

Every step sees the :class:`~repro.ws.soap.SoapRequest`, a per-call
context, and a ``proceed(request)`` continuation for the rest of the
chain — so a step may observe, rewrite, short-circuit (return without
calling ``proceed``), or wrap the call in ``try``/``finally``.

Default orders (outermost first; names are stable API):

* client proxy   (``ServiceProxy.call``):
  ``deadline → breaker → trace → metrics → transport.send``
* client transport (any :class:`~repro.ws.transport.ChainedTransport`):
  ``trace → metrics → deadline → [gzip] → payload → _exchange``
* server container (``ServiceContainer.invoke``):
  ``trace → resolve → deadline → multicall → stats → cache →
  lifecycle → faults → dispatch`` (``ServiceContainer(admission=...)``
  splices the ``admission`` load-shedding step in after ``deadline``)

Every step also runs from an event loop (:func:`run_chain_async`):
steps that define ``intercept_async`` / ``handle_async`` are awaited
natively, and plain sync steps are bridged through a worker thread
whose ``proceed`` re-enters the loop — so custom sync interceptors
keep working, unchanged, under the async serving plane
(:mod:`repro.ws.aserve`).

Byte movers stay free of policy imports (no :mod:`repro.obs`, no
breaker, no chaos — enforced by ``tools/layering_lint.py``): they report
wire telemetry through :meth:`CallContext.note` (picked up by the trace
step) and the :attr:`CallContext.on_wire` /
:attr:`CallContext.on_transport_error` / :attr:`CallContext.emit_counter`
callbacks (installed by the metrics step), so a chain without those
steps simply records nothing.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextvars
import copy
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro.data import cache as datacache
from repro.errors import (DeadlineExceeded, OverloadedError, ServiceError,
                          TransportError)
from repro.obs import SpanContext, get_metrics, get_tracer
from repro.ws import payload, soap
from repro.ws.deadline import current_deadline, deadline_scope
from repro.ws.payload import PayloadMissError
from repro.ws.soap import (DEADLINE_FAULTCODE, SoapFault, SoapRequest,
                           SoapResponse)

Proceed = Callable[[SoapRequest], SoapResponse]
AsyncProceed = Callable[[SoapRequest], Awaitable[SoapResponse]]


def _noop_on_wire(bytes_sent: int, bytes_received: int) -> None:
    pass


def _noop_on_transport_error() -> None:
    pass


def _noop_emit_counter(name: str, amount: float = 1.0) -> None:
    pass


@dataclass
class CallContext:
    """Per-call state shared along one client chain.

    ``notes`` is the telemetry side channel from the byte mover to the
    trace step (copied onto the ``send:*`` span when the chain has one);
    the three callbacks are installed by :class:`TransportMetrics` and
    default to no-ops, so movers can report without importing any
    metrics machinery.
    """

    kind: str                      # "http" | "inprocess" | "simulated" | …
    endpoint: str = ""
    service: str = ""
    operation: str = ""
    properties: dict[str, Any] = field(default_factory=dict)
    notes: dict[str, Any] = field(default_factory=dict)
    on_wire: Callable[[int, int], None] = _noop_on_wire
    on_transport_error: Callable[[], None] = _noop_on_transport_error
    emit_counter: Callable[..., None] = _noop_emit_counter

    def note(self, key: str, value: Any) -> None:
        """Record one span attribute for the chain's trace step."""
        self.notes[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        """Read one chain property (e.g. the gzip step's flag)."""
        return self.properties.get(key, default)


@dataclass
class DispatchContext:
    """Per-call state shared along one server (container) chain."""

    container: Any                 # the owning ServiceContainer
    deployment: Any = None         # set by ResolveDeployment
    span: Any = None               # set by DispatchTrace
    properties: dict[str, Any] = field(default_factory=dict)


class ClientInterceptor:
    """One client-side chain step; subclass and override :meth:`intercept`.

    ``name`` identifies the step for :func:`chain_names` /
    :func:`chain_without` / :func:`chain_insert_before` composition.
    Steps that are safe to await natively additionally override
    :meth:`intercept_async`; the base implementation bridges the sync
    :meth:`intercept` through a worker thread (see
    :func:`run_sync_step_async`), so any third-party sync-only step —
    chaos injection included — keeps working on the async plane.
    """

    name = "interceptor"

    def intercept(self, request: SoapRequest, ctx: CallContext,
                  proceed: Proceed) -> SoapResponse:
        """Handle one call; delegate to the rest of the chain via
        ``proceed(request)`` (or short-circuit by not calling it)."""
        return proceed(request)

    async def intercept_async(self, request: SoapRequest, ctx: CallContext,
                              proceed: AsyncProceed) -> SoapResponse:
        """Async mirror of :meth:`intercept` (default: thread bridge)."""
        return await run_sync_step_async(self.intercept, request, ctx,
                                         proceed)

    def __call__(self, request: SoapRequest, ctx: Any,
                 proceed: Proceed) -> SoapResponse:
        return self.intercept(request, ctx, proceed)


class ServerHandler:
    """One server-side chain step; subclass and override :meth:`handle`."""

    name = "handler"

    def handle(self, request: SoapRequest, ctx: DispatchContext,
               proceed: Proceed) -> SoapResponse:
        """Handle one dispatch; delegate to the rest of the chain via
        ``proceed(request)`` (or short-circuit by not calling it)."""
        return proceed(request)

    async def handle_async(self, request: SoapRequest, ctx: DispatchContext,
                           proceed: AsyncProceed) -> SoapResponse:
        """Async mirror of :meth:`handle` (default: thread bridge)."""
        return await run_sync_step_async(self.handle, request, ctx, proceed)

    def __call__(self, request: SoapRequest, ctx: Any,
                 proceed: Proceed) -> SoapResponse:
        return self.handle(request, ctx, proceed)


def run_chain(steps, request: SoapRequest, ctx: Any,
              terminal: Proceed) -> SoapResponse:
    """Thread *request* through *steps* (outermost first) into *terminal*.

    Each step receives the continuation of everything after it; a step
    that never calls ``proceed`` short-circuits the rest of the chain.
    """
    def at(index: int, req: SoapRequest) -> SoapResponse:
        if index == len(steps):
            return terminal(req)
        return steps[index](req, ctx, lambda r: at(index + 1, r))
    return at(0, request)


async def run_sync_step_async(call, request: SoapRequest, ctx: Any,
                              proceed: AsyncProceed) -> SoapResponse:
    """Run one sync-only chain step inside an async chain.

    The step executes on a worker thread (its sleeps and blocking work
    leave the event loop free); the ``proceed`` continuation it is
    handed marshals back into the running loop and blocks the worker —
    not the loop — until the rest of the chain answers.  The loop-side
    continuation runs under the worker's :mod:`contextvars` snapshot,
    so ambient state (deadline scope, trace context) survives the
    double hop.
    """
    loop = asyncio.get_running_loop()

    def sync_proceed(req: SoapRequest) -> SoapResponse:
        snapshot = contextvars.copy_context()
        done: concurrent.futures.Future = concurrent.futures.Future()

        def start() -> None:
            task = snapshot.run(asyncio.ensure_future, proceed(req))

            def relay(finished: asyncio.Task) -> None:
                if finished.cancelled():
                    done.cancel()
                elif finished.exception() is not None:
                    done.set_exception(finished.exception())
                else:
                    done.set_result(finished.result())

            task.add_done_callback(relay)

        loop.call_soon_threadsafe(start)
        return done.result()

    return await asyncio.to_thread(call, request, ctx, sync_proceed)


async def run_chain_async(steps, request: SoapRequest, ctx: Any,
                          terminal: AsyncProceed) -> SoapResponse:
    """Async twin of :func:`run_chain` with identical semantics.

    Steps exposing ``intercept_async`` / ``handle_async`` are awaited
    natively on the event loop; a bare sync callable is bridged through
    :func:`run_sync_step_async` so mixed chains (e.g. with a sync-only
    chaos step) behave exactly like their sync counterparts.
    """
    async def at(index: int, req: SoapRequest) -> SoapResponse:
        if index == len(steps):
            return await terminal(req)
        step = steps[index]

        async def proceed(r: SoapRequest,
                          _next: int = index + 1) -> SoapResponse:
            return await at(_next, r)

        runner = getattr(step, "intercept_async", None) \
            or getattr(step, "handle_async", None)
        if runner is not None:
            return await runner(req, ctx, proceed)
        return await run_sync_step_async(step, req, ctx, proceed)
    return await at(0, request)


# -- chain composition helpers ---------------------------------------------

def chain_names(steps) -> list[str]:
    """The stable step names of a chain, outermost first."""
    return [step.name for step in steps]


def _position(steps, name: str) -> int:
    for index, step in enumerate(steps):
        if step.name == name:
            return index
    raise ValueError(f"chain has no step named {name!r}; "
                     f"present: {chain_names(steps)}")


def chain_without(steps, name: str) -> list:
    """A copy of *steps* with every step named *name* removed."""
    return [step for step in steps if step.name != name]


def chain_insert_before(steps, name: str, step) -> list:
    """A copy of *steps* with *step* inserted before the step *name*."""
    out = list(steps)
    out.insert(_position(out, name), step)
    return out


def chain_insert_after(steps, name: str, step) -> list:
    """A copy of *steps* with *step* inserted after the step *name*."""
    out = list(steps)
    out.insert(_position(out, name) + 1, step)
    return out


# -- shared helpers (formerly in repro.ws.transport) ------------------------

def stamp_trace_context(request: SoapRequest, span) -> None:
    """Inject *span*'s trace context into an unstamped request.

    A request already carrying a trace id keeps it (the outermost hop —
    usually the client proxy — wins), so wrapped transports don't
    overwrite the caller's context.
    """
    if span.recording and not request.trace_id:
        request.trace_id = span.trace_id
        request.parent_span_id = span.span_id


def apply_deadline(request: SoapRequest) -> None:
    """Enforce + propagate the ambient deadline on an outgoing request.

    Fails fast (:class:`~repro.errors.DeadlineExceeded`) when the budget
    is already spent, and stamps the remaining seconds onto an unstamped
    request so every hop below this one inherits the (shrinking) budget.
    An explicit ``deadline_s`` set by the caller wins.
    """
    deadline = current_deadline()
    if deadline is None:
        return
    deadline.check(f"send {request.service}.{request.operation}")
    if request.deadline_s is None:
        request.deadline_s = deadline.remaining()


def record_transport_metrics(transport: str, seconds: float,
                             bytes_sent: int, bytes_received: int) -> None:
    """File one send's latency + byte counts under the global registry."""
    metrics = get_metrics()
    metrics.histogram("ws.transport.seconds",
                      transport=transport).observe(seconds)
    metrics.counter("ws.transport.messages", transport=transport).inc()
    metrics.counter("ws.transport.bytes_sent",
                    transport=transport).inc(bytes_sent)
    metrics.counter("ws.transport.bytes_received",
                    transport=transport).inc(bytes_received)


def payload_fallback(send_once, request: SoapRequest,
                     peer: payload.PeerState,
                     same_host: bool = False) -> SoapResponse:
    """Externalize + send, with the transparent full-payload fallback.

    First attempt goes out with by-reference params for everything the
    peer is believed to hold (with *same_host* peers additionally
    offered shared-memory segment refs for first-time payloads).  A
    :class:`PayloadMissError` (the peer lost — or never had — a
    referenced blob, or a ref was corrupted in flight) clears the peer
    record and resends the original request fully inline, so callers
    never observe the miss.
    """
    try:
        return send_once(payload.externalize(request, peer,
                                             same_host=same_host))
    except PayloadMissError:
        get_metrics().counter("ws.payload.fallbacks").inc()
        peer.clear()
        return send_once(payload.internalize(request))


# -- client transport interceptors ------------------------------------------

class TransportTrace(ClientInterceptor):
    """Open the ``send:<kind>`` span and stamp the trace context.

    The byte mover's :meth:`CallContext.note` entries become span
    attributes when the send finishes (successfully or not), mirroring
    the attribute sets the pre-chain transports recorded inline.
    """

    name = "trace"

    def intercept(self, request, ctx, proceed):
        attrs = {"endpoint": ctx.endpoint} if ctx.endpoint else None
        with get_tracer().span(f"send:{ctx.kind}", attrs) as span:
            stamp_trace_context(request, span)
            try:
                return proceed(request)
            finally:
                for key, value in ctx.notes.items():
                    span.set_attribute(key, value)

    async def intercept_async(self, request, ctx, proceed):
        # spans live in contextvars, which are task-local: safe to open
        # directly on the event loop
        attrs = {"endpoint": ctx.endpoint} if ctx.endpoint else None
        with get_tracer().span(f"send:{ctx.kind}", attrs) as span:
            stamp_trace_context(request, span)
            try:
                return await proceed(request)
            finally:
                for key, value in ctx.notes.items():
                    span.set_attribute(key, value)


class TransportMetrics(ClientInterceptor):
    """Install the metric callbacks the byte mover reports through.

    The mover decides *when* a message pair counts (e.g. the simulated
    transport files its cost even for fault responses, HTTP only once
    the body was read) by invoking ``ctx.on_wire`` at exactly that
    point — this step only decides *where* the numbers go.
    """

    name = "metrics"

    @staticmethod
    def _install(ctx) -> None:
        start = time.perf_counter()
        metrics = get_metrics()

        def on_wire(bytes_sent: int, bytes_received: int) -> None:
            record_transport_metrics(ctx.kind,
                                     time.perf_counter() - start,
                                     bytes_sent, bytes_received)

        def on_transport_error() -> None:
            metrics.counter("ws.transport.errors",
                            transport=ctx.kind).inc()

        def emit_counter(name: str, amount: float = 1.0) -> None:
            metrics.counter(name).inc(amount)

        ctx.on_wire = on_wire
        ctx.on_transport_error = on_transport_error
        ctx.emit_counter = emit_counter

    def intercept(self, request, ctx, proceed):
        self._install(ctx)
        return proceed(request)

    async def intercept_async(self, request, ctx, proceed):
        self._install(ctx)
        return await proceed(request)


class DeadlineBudget(ClientInterceptor):
    """Fail fast on a spent budget; stamp the remainder on the request."""

    name = "deadline"

    def intercept(self, request, ctx, proceed):
        apply_deadline(request)
        return proceed(request)

    async def intercept_async(self, request, ctx, proceed):
        apply_deadline(request)
        return await proceed(request)


class GzipNegotiation(ClientInterceptor):
    """Advertise/request gzip content coding (HTTP transports only).

    The mover honours ``ctx.properties["accept_gzip"]``; without this
    step in the chain it defaults to identity encoding.
    """

    name = "gzip"

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def intercept(self, request, ctx, proceed):
        ctx.properties["accept_gzip"] = self.enabled
        return proceed(request)

    async def intercept_async(self, request, ctx, proceed):
        ctx.properties["accept_gzip"] = self.enabled
        return await proceed(request)


class PayloadRefs(ClientInterceptor):
    """Substitute by-reference params for payloads the peer already holds.

    Owns the per-connection :class:`~repro.ws.payload.PeerState`.  With
    ``resend_on_miss=True`` (HTTP / in-process) a miss raised anywhere
    below — including from the far side of the wire — clears the peer
    record and transparently resends fully inline.  With ``False`` (the
    simulated transport) only a miss during externalisation is healed;
    a miss surfacing from the inner transport propagates, matching the
    modelled network's pre-chain semantics.
    """

    name = "payload"

    def __init__(self, resend_on_miss: bool = True):
        self.peer = payload.PeerState()
        self.resend_on_miss = resend_on_miss

    def intercept(self, request, ctx, proceed):
        same_host = bool(ctx.get("same_host"))
        if self.resend_on_miss:
            return payload_fallback(proceed, request, self.peer,
                                    same_host=same_host)
        try:
            outbound = payload.externalize(request, self.peer,
                                           same_host=same_host)
        except PayloadMissError:
            get_metrics().counter("ws.payload.fallbacks").inc()
            self.peer.clear()
            outbound = payload.internalize(request)
        return proceed(outbound)

    async def intercept_async(self, request, ctx, proceed):
        same_host = bool(ctx.get("same_host"))
        if self.resend_on_miss:
            try:
                return await proceed(payload.externalize(
                    request, self.peer, same_host=same_host))
            except PayloadMissError:
                get_metrics().counter("ws.payload.fallbacks").inc()
                self.peer.clear()
                return await proceed(payload.internalize(request))
        try:
            outbound = payload.externalize(request, self.peer,
                                           same_host=same_host)
        except PayloadMissError:
            get_metrics().counter("ws.payload.fallbacks").inc()
            self.peer.clear()
            outbound = payload.internalize(request)
        return await proceed(outbound)


def default_transport_interceptors(*, compress: bool | None = None,
                                   resend_on_miss: bool = True
                                   ) -> list[ClientInterceptor]:
    """The standard transport chain: trace → metrics → deadline
    → [gzip] → payload.  ``compress`` adds the gzip step (HTTP);
    ``resend_on_miss=False`` selects the simulated transport's
    externalize-only miss fallback."""
    steps: list[ClientInterceptor] = [TransportTrace(), TransportMetrics(),
                                      DeadlineBudget()]
    if compress is not None:
        steps.append(GzipNegotiation(compress))
    steps.append(PayloadRefs(resend_on_miss=resend_on_miss))
    return steps


# -- client proxy interceptors ----------------------------------------------

class ProxyDeadline(ClientInterceptor):
    """Fail fast before building any wire bytes; stamp the budget."""

    name = "deadline"

    def intercept(self, request, ctx, proceed):
        self._stamp(request, ctx)
        return proceed(request)

    async def intercept_async(self, request, ctx, proceed):
        self._stamp(request, ctx)
        return await proceed(request)

    @staticmethod
    def _stamp(request, ctx) -> None:
        deadline = current_deadline()
        if deadline is not None:
            deadline.check(f"{ctx.service}.{ctx.operation}")
            request.deadline_s = deadline.remaining()


class BreakerGate(ClientInterceptor):
    """Per-endpoint circuit breaking around the rest of the chain.

    Only delivery failures (:class:`TransportError` / ``OSError``)
    count against the breaker — a SOAP fault proves the endpoint is
    alive, and a spent budget says nothing about endpoint health.
    With no breaker configured the gate is a no-op.
    """

    name = "breaker"

    def __init__(self, breaker=None):
        self.breaker = breaker

    def intercept(self, request, ctx, proceed):
        if self.breaker is None:
            return proceed(request)
        self.breaker.ensure_closed(f"{ctx.service}.{ctx.operation}")
        try:
            response = proceed(request)
        except (TransportError, OSError):
            self.breaker.record_failure()
            raise
        except DeadlineExceeded:
            raise
        except Exception:
            # the endpoint answered (a fault is still an answer — an
            # admission shed included: an overloaded endpoint is alive)
            self.breaker.record_success()
            raise
        self.breaker.record_success()
        return response

    async def intercept_async(self, request, ctx, proceed):
        if self.breaker is None:
            return await proceed(request)
        self.breaker.ensure_closed(f"{ctx.service}.{ctx.operation}")
        try:
            response = await proceed(request)
        except (TransportError, OSError):
            self.breaker.record_failure()
            raise
        except DeadlineExceeded:
            raise
        except Exception:
            self.breaker.record_success()
            raise
        self.breaker.record_success()
        return response


class CallTrace(ClientInterceptor):
    """Open the client-side ``soap:<service>.<op>`` span.

    Client-side injection: this span becomes the parent of every
    server-side span for the invocation.
    """

    name = "trace"

    def intercept(self, request, ctx, proceed):
        with get_tracer().span(
                f"soap:{ctx.service}.{ctx.operation}") as span:
            batch = soap.batch_size_of(request)
            if batch is not None:
                span.set_attribute("batch_size", batch)
            stamp_trace_context(request, span)
            return proceed(request)

    async def intercept_async(self, request, ctx, proceed):
        with get_tracer().span(
                f"soap:{ctx.service}.{ctx.operation}") as span:
            batch = soap.batch_size_of(request)
            if batch is not None:
                span.set_attribute("batch_size", batch)
            stamp_trace_context(request, span)
            return await proceed(request)


class CallMetrics(ClientInterceptor):
    """Per-call count + latency, filed whether the call succeeds or not."""

    name = "metrics"

    def intercept(self, request, ctx, proceed):
        start = time.perf_counter()
        try:
            return proceed(request)
        finally:
            self._file(ctx, time.perf_counter() - start)

    async def intercept_async(self, request, ctx, proceed):
        start = time.perf_counter()
        try:
            return await proceed(request)
        finally:
            self._file(ctx, time.perf_counter() - start)

    @staticmethod
    def _file(ctx, elapsed: float) -> None:
        metrics = get_metrics()
        metrics.counter("ws.client.calls", service=ctx.service,
                        operation=ctx.operation).inc()
        metrics.histogram("ws.client.seconds", service=ctx.service,
                          operation=ctx.operation).observe(elapsed)


def default_proxy_interceptors(breaker=None) -> list[ClientInterceptor]:
    """The standard proxy chain: deadline → breaker → trace → metrics.

    Order is behavioural API: a spent deadline or an open breaker fails
    the call before any span or metric is recorded.
    """
    return [ProxyDeadline(), BreakerGate(breaker), CallTrace(),
            CallMetrics()]


# -- server (container) handlers --------------------------------------------

#: Idempotent results kept process-wide (LRU beyond this).
RESULT_CACHE_ENTRIES = 256

#: Process-global idempotent-result cache.  ``cacheable=True`` declares
#: an operation *pure* — its result is a function of its arguments — so
#: results are shareable across every container hosting the same
#: implementation class (the class is part of the key).
_result_cache = datacache.LruCache(RESULT_CACHE_ENTRIES)


def reset_result_cache() -> None:
    """Drop all cached operation results (test isolation)."""
    _result_cache.clear()


def _params_digest(params: dict[str, Any]) -> str:
    """Order-independent content digest of one call's arguments."""
    canonical = json.dumps(params, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _count_server_fault(request: SoapRequest) -> None:
    get_metrics().counter("ws.server.faults", service=request.service,
                          operation=request.operation).inc()


class DispatchTrace(ServerHandler):
    """Open the ``dispatch:`` span, joining the client's trace.

    The request's ``<repro:TraceContext>`` header parents this span when
    no local span (an HTTP handler or in-process transport span) is
    already active.
    """

    name = "trace"

    def handle(self, request, ctx, proceed):
        tracer = get_tracer()
        parent = tracer.current_span()
        if parent is None and request.trace_id:
            parent = SpanContext(request.trace_id, request.parent_span_id)
        name = f"dispatch:{request.service}.{request.operation}"
        with tracer.span(name, {"container": ctx.container.name},
                         parent=parent) as span:
            ctx.span = span
            return proceed(request)


class ResolveDeployment(ServerHandler):
    """Bind the request's service name to a live deployment (or fault)."""

    name = "resolve"

    def handle(self, request, ctx, proceed):
        ctx.deployment = ctx.container._deployment(request.service)
        if ctx.span is not None:
            ctx.span.set_attribute("lifecycle", ctx.deployment.lifecycle)
        return proceed(request)


class DeadlineAnchor(ServerHandler):
    """Re-anchor the caller's remaining budget on this host's clock.

    Every call the service itself makes inherits the scope; a budget
    already spent is rejected before any lifecycle work happens.
    """

    name = "deadline"

    def handle(self, request, ctx, proceed):
        with deadline_scope(request.deadline_s) as deadline:
            if deadline is not None and deadline.expired:
                _count_server_fault(request)
                get_metrics().counter(
                    "ws.server.deadline_rejections",
                    service=request.service).inc()
                raise SoapFault(
                    DEADLINE_FAULTCODE,
                    f"time budget exhausted before dispatching "
                    f"{request.service}.{request.operation}")
            return proceed(request)


class MulticallExpand(ServerHandler):
    """Expand a ``<repro:Multicall>`` batch into per-item dispatches.

    Each sub-call re-enters the rest of the chain (stats → cache →
    lifecycle → faults → dispatch) as its own single-operation request,
    so invocation counts, result-cache hits and ``op:`` spans stay
    item-wise while parse/serialize and the wire exchange happened once
    for the whole batch.  Per-item faults are captured as
    :class:`~repro.ws.soap.CallOutcome` items — one bad row cannot fail
    its siblings — and a budget that expires mid-batch turns the
    remaining items into deadline faults without touching dispatch.
    """

    name = "multicall"

    def handle(self, request, ctx, proceed):
        if not soap.is_multicall(request):
            return proceed(request)
        calls = soap.calls_of(request)
        metrics = get_metrics()
        metrics.histogram("ws.batch.size",
                          service=request.service).observe(len(calls))
        if len(calls) > 1:
            metrics.counter("ws.batch.calls_saved",
                            service=request.service).inc(len(calls) - 1)
        if ctx.span is not None:
            ctx.span.set_attribute("batch_size", len(calls))
        deadline = current_deadline()
        outcomes: list[soap.CallOutcome] = []
        for index, sub in enumerate(calls):
            item = SoapRequest(service=request.service,
                               operation=sub.operation,
                               params=dict(sub.params),
                               trace_id=request.trace_id,
                               parent_span_id=request.parent_span_id)
            if deadline is not None and deadline.expired:
                _count_server_fault(item)
                metrics.counter("ws.server.deadline_rejections",
                                service=request.service).inc()
                outcomes.append(soap.CallOutcome(error=SoapFault(
                    DEADLINE_FAULTCODE,
                    f"time budget exhausted before multicall item "
                    f"{index} ({request.service}.{sub.operation})")))
                continue
            try:
                outcomes.append(
                    soap.CallOutcome(result=proceed(item).result))
            except SoapFault as fault:
                outcomes.append(soap.CallOutcome(error=fault))
        return SoapResponse(service=request.service,
                            operation=soap.MULTICALL_OP, result=outcomes)


class InvocationStats(ServerHandler):
    """Count the invocation (cache hits and faults included)."""

    name = "stats"

    def handle(self, request, ctx, proceed):
        dep = ctx.deployment
        with dep.lock:
            dep.stats.invocations += 1
        return proceed(request)


class ResultCache(ServerHandler):
    """Answer repeat invocations of ``cacheable`` operations from cache.

    A hit short-circuits the rest of the chain (no lifecycle work, no
    dispatch); results are deep-copied both ways so callers own their
    objects.
    """

    name = "cache"

    def handle(self, request, ctx, proceed):
        dep = ctx.deployment
        info = dep.definition.operations.get(request.operation)
        cache_key = None
        if info is not None and info.cacheable and datacache.enabled():
            metrics = get_metrics()
            cache_key = (dep.definition.cls, request.operation,
                         _params_digest(request.params))
            hit = _result_cache.get(cache_key)
            if hit is not None:
                result, approx_bytes = hit
                with dep.lock:
                    dep.stats.cache_hits += 1
                metrics.counter("ws.cache.result.hits",
                                service=request.service).inc()
                metrics.counter("ws.cache.result.bytes_saved",
                                service=request.service).inc(approx_bytes)
                return SoapResponse(service=request.service,
                                    operation=request.operation,
                                    result=copy.deepcopy(result))
            metrics.counter("ws.cache.result.misses",
                            service=request.service).inc()
        response = proceed(request)
        if cache_key is not None:
            # estimate the dispatch cost a future hit avoids by the
            # canonical size of the answer
            approx_bytes = len(json.dumps(response.result, default=repr))
            _result_cache.put(
                cache_key, (copy.deepcopy(response.result), approx_bytes))
        return response


class Lifecycle(ServerHandler):
    """Acquire/release the instance per the deployment's §4.5 lifecycle.

    * ``harness`` — the deployment lock guards only instance creation
      and stats mutation; dispatches run concurrently (one in-memory
      instance serves parallel callers).
    * ``serialize`` — the lock is held across the whole
      unpickle → dispatch → pickle round-trip: the state file *is* the
      serialisation point this 2005-era lifecycle models, so calls stay
      one-at-a-time by design.
    """

    name = "lifecycle"

    def handle(self, request, ctx, proceed):
        dep = ctx.deployment
        if dep.lifecycle == "serialize":
            with dep.lock:
                return self._cycle(dep, request, ctx, proceed)
        return self._cycle(dep, request, ctx, proceed)

    def _cycle(self, dep, request, ctx, proceed):
        container = ctx.container
        with dep.lock:  # re-entrant: already held in serialize lifecycle
            instance = container._acquire(dep)
        ctx.properties["instance"] = instance
        start = time.perf_counter()
        try:
            return proceed(request)
        finally:
            elapsed = time.perf_counter() - start
            with dep.lock:
                dep.stats.dispatch_seconds += elapsed
            get_metrics().histogram(
                "ws.server.dispatch.seconds",
                service=request.service,
                operation=request.operation).observe(elapsed)
            container._release(dep, instance)


class FaultMapper(ServerHandler):
    """Map dispatch exceptions onto SOAP faults and count them.

    A nested call that ran out of budget mid-dispatch surfaces under
    the dedicated deadline fault code so the caller's client resurfaces
    :class:`DeadlineExceeded`, not a retriable server fault.
    """

    name = "faults"

    def handle(self, request, ctx, proceed):
        try:
            return proceed(request)
        except SoapFault:
            self._record(request, ctx)
            raise
        except DeadlineExceeded as exc:
            self._record(request, ctx)
            raise SoapFault(DEADLINE_FAULTCODE, str(exc)) from exc
        except Exception as exc:
            self._record(request, ctx)
            raise SoapFault("soapenv:Server", str(exc),
                            detail=type(exc).__name__) from exc

    @staticmethod
    def _record(request, ctx) -> None:
        dep = ctx.deployment
        with dep.lock:
            dep.stats.faults += 1
        _count_server_fault(request)


def default_server_handlers() -> list[ServerHandler]:
    """The standard container chain: trace → resolve → deadline →
    multicall → stats → cache → lifecycle → faults.

    Order is behavioural API: a deadline rejection counts no
    invocation, multicall expansion happens before stats and the result
    cache so each sub-call is counted and cached item-wise, a cache hit
    does no lifecycle work, and instance acquisition failures propagate
    unmapped (they are host errors, not operation faults)."""
    return [DispatchTrace(), ResolveDeployment(), DeadlineAnchor(),
            MulticallExpand(), InvocationStats(), ResultCache(),
            Lifecycle(), FaultMapper()]


# -- server HTTP gateway -----------------------------------------------------

class HttpGateway:
    """The policy half of SOAP-over-HTTP hosting.

    Everything between "bytes arrived on a POST" and "bytes to answer
    with" lives here — decompression, envelope decode, front-door
    deadline shedding, the ``http:POST`` span, fault mapping, response
    compression and the ``ws.http.*`` metrics — leaving
    :mod:`repro.ws.httpd` as pure HTTP mechanics.
    """

    def __init__(self, container, compress: bool = True):
        self.container = container
        self.compress = compress

    def post(self, name: str, raw: bytes,
             content_encoding: str | None = None,
             accept_encoding: str | None = None
             ) -> tuple[int, bytes, str, str | None]:
        """Serve one ``POST /services/<name>`` body.

        Returns ``(status, body, content_type, response_encoding)``.
        """
        start = time.perf_counter()
        status = 200
        content_type = "text/xml; charset=utf-8"
        try:
            try:
                raw = payload.decompress(raw, content_encoding)
            except TransportError as exc:
                status = 400
                return 400, str(exc).encode(), "text/plain", None
            request = soap.decode_request(raw)
            request.service = name  # the URL wins over the envelope
            if request.deadline_s is not None and request.deadline_s <= 0:
                # budget already spent: reject before dispatch so a
                # hammered server sheds doomed work at the front door
                get_metrics().counter("ws.http.deadline_rejections",
                                      service=name).inc()
                raise DeadlineExceeded(
                    f"time budget exhausted before dispatching "
                    f"POST /services/{name}")
            # tag the handler span with the trace context the SOAP
            # header carried, so server-side spans join the client trace
            parent = SpanContext(request.trace_id,
                                 request.parent_span_id) \
                if request.trace_id else None
            with get_tracer().span(f"http:POST /services/{name}",
                                   {"request_bytes": len(raw)},
                                   parent=parent) as span:
                response = self.container.invoke(request)
                body = soap.encode_response(response)
                span.set_attribute("response_bytes", len(body))
                span.set_attribute("http_status", status)
            encoding = None
            if self.compress and "gzip" in (accept_encoding or "").lower():
                body, encoding = payload.maybe_compress(body)
            return 200, body, content_type, encoding
        except PayloadMissError as exc:
            # the client referenced a blob this process does not hold:
            # answer with the dedicated fault so it resends inline
            status = 500
            return 500, soap.encode_fault(SoapFault(
                payload.MISS_FAULTCODE, str(exc),
                detail=exc.digest)), content_type, None
        except SoapFault as fault:
            status = 500
            return 500, soap.encode_fault(fault), content_type, None
        except OverloadedError as exc:
            # admission control shed the call: answer 503 with the
            # dedicated fault so clients back off instead of retrying
            status = 503
            return 503, soap.encode_fault(
                soap.fault_for(exc)), content_type, None
        except DeadlineExceeded as exc:
            status = 500
            return 500, soap.encode_fault(
                SoapFault(DEADLINE_FAULTCODE,
                          str(exc))), content_type, None
        except ServiceError as exc:
            status = 500
            return 500, soap.encode_fault(
                SoapFault("soapenv:Server",
                          str(exc))), content_type, None
        finally:
            metrics = get_metrics()
            metrics.counter("ws.http.requests", service=name,
                            status=status).inc()
            metrics.histogram("ws.http.seconds", service=name).observe(
                time.perf_counter() - start)
