"""Asyncio SOAP-over-HTTP serving plane with front-door admission.

:class:`AsyncSoapHttpServer` hosts the same
:class:`~repro.ws.container.ServiceContainer` endpoints as the threaded
:class:`~repro.ws.httpd.SoapHttpServer` — ``POST /services/<name>``,
``GET /services/<name>?wsdl``, ``GET /services`` — but accepts on one
event loop and offloads dispatch to a *bounded* worker pool, so
thousands of mostly-idle keep-alive connections cost coroutines, not
threads.

The load-shedding story is the point.  When an
:class:`~repro.ws.admission.AdmissionController` is attached, every
POST is admitted **at the front door, before the body is parsed**: the
caller's identity and rank ride in the ``X-Repro-Principal`` /
``X-Repro-Priority`` HTTP headers (mirrors of the ``<repro:Caller>``
SOAP header, stamped by :class:`~repro.ws.client.ServiceProxy`), so a
shed costs one header scan and a tiny canned 503 — no XML decode, no
worker thread, no lifecycle work.  Admitted calls hold their admission
ticket across the worker-pool dispatch, so ``max_concurrent`` bounds
real work, not just queue entries.  The 503 answer carries the
``repro:Overloaded`` fault envelope plus a ``Retry-After`` header, and
clients resurface it as :class:`~repro.errors.OverloadedError`.

Attach admission *either* here (front door — recommended for this
server) or on the container (the ``admission`` chain step, which also
guards sync servers); attaching both would double-charge every call.

Everything HTTP-mechanical below the admission decision is delegated
to :class:`~repro.ws.pipeline.HttpGateway`, exactly like the threaded
server, so both serving planes answer byte-identical envelopes.  This
module is the *policy* plane: it may import admission and obs, but
never circuit breakers or chaos (``tools/layering_lint.py``).
"""

from __future__ import annotations

import asyncio
import functools
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import urlparse

from repro.errors import OverloadedError, ServiceError
from repro.obs import get_metrics
from repro.ws import shm, soap, wsdl
from repro.ws.admission import DEFAULT_RETRY_HINT_S, AdmissionController
from repro.ws.container import ServiceContainer
from repro.ws.pipeline import HttpGateway
from repro.ws.soap import SoapFault

#: Reading a request head (request line + headers) is bounded so a
#: misbehaving client cannot balloon the loop's memory.
_MAX_HEADER_BYTES = 32 * 1024

_TEXT = "text/plain; charset=utf-8"
_XML = "text/xml; charset=utf-8"


class AsyncSoapHttpServer:
    """An event-loop SOAP host bound to 127.0.0.1.

    Runs its own loop on a background thread so sync callers use it
    exactly like :class:`~repro.ws.httpd.SoapHttpServer`::

        with AsyncSoapHttpServer(container, admission=ctl) as srv:
            proxy = ServiceProxy.from_wsdl_url(srv.wsdl_url("Cls"))

    Async callers inside the loop can instead await
    :meth:`serve_forever` directly.

    ``max_workers`` bounds the dispatch pool (default: the admission
    controller's ``max_concurrent``, else 8) — the knob that keeps
    CPU-bound ML operations from starving the accept loop.
    """

    def __init__(self, container: ServiceContainer, port: int = 0,
                 compress: bool = True,
                 admission: AdmissionController | None = None,
                 max_workers: int | None = None,
                 uds_path: str | None = None):
        self.container = container
        self.gateway = HttpGateway(container, compress=compress)
        self.admission = admission
        if max_workers is None:
            max_workers = admission.max_concurrent if admission else 8
        self.max_workers = max_workers
        self.port = port
        self.base_url = ""
        self.uds_path = uds_path or None
        self._requested_port = port
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._executor: ThreadPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AsyncSoapHttpServer":
        """Serve on a fresh event loop in a background thread."""
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"soap-aserve-{self._requested_port}")
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self.serve_forever())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()

    async def serve_forever(self) -> None:
        """Accept until :meth:`stop` (or task cancellation)."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="aserve-dispatch")
        server = await asyncio.start_server(
            self._serve_connection, "127.0.0.1", self._requested_port)
        self.port = server.sockets[0].getsockname()[1]
        self.base_url = f"http://127.0.0.1:{self.port}"
        uds_server = None
        if self.uds_path:
            if os.path.exists(self.uds_path):
                os.unlink(self.uds_path)  # stale socket from a crash
            uds_server = await asyncio.start_unix_server(
                self._serve_connection, path=self.uds_path)
        self._started.set()
        try:
            async with server:
                if uds_server is not None:
                    async with uds_server:
                        await self._stop.wait()
                else:
                    await self._stop.wait()
        finally:
            self._executor.shutdown(wait=False)
            if self.uds_path and os.path.exists(self.uds_path):
                os.unlink(self.uds_path)

    def stop(self) -> None:
        """Shut down the loop thread and release resources."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def endpoint(self, service: str) -> str:
        """The SOAP endpoint URL of *service*."""
        return f"{self.base_url}/services/{service}"

    def uds_endpoint(self, service: str) -> str:
        """The ``unix://`` endpoint URL of *service* (uds_path set)."""
        if not self.uds_path:
            raise ServiceError("server has no unix socket listener")
        from repro.ws.transport import unix_url
        return unix_url(self.uds_path, f"/services/{service}")

    def wsdl_url(self, service: str) -> str:
        """The WSDL URL of *service*."""
        return f"{self.endpoint(service)}?wsdl"

    def __enter__(self) -> "AsyncSoapHttpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- connection handling -------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        get_metrics().counter("ws.aserve.connections").inc()
        try:
            while True:
                head = await self._read_head(reader)
                if head is None:
                    return
                method, target, headers = head
                length = int(headers.get("content-length", "0"))
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get("connection", "").lower() != "close"
                status, resp_body, content_type, encoding, extra = \
                    await self._handle(method, target, headers, body)
                await self._write_response(
                    writer, status, resp_body, content_type, encoding,
                    extra, keep_alive)
                if not keep_alive:
                    return
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, asyncio.LimitOverrunError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()

    async def _read_head(self, reader: asyncio.StreamReader):
        """``(method, target, lowercased headers)``, or ``None`` on EOF."""
        try:
            request_line = await reader.readline()
        except ValueError:
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0], parts[1]
        headers: dict[str, str] = {}
        total = len(request_line)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                return None
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, body: bytes, content_type: str,
                              encoding: str | None, extra: dict,
                              keep_alive: bool) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Type: {content_type}",
                 "X-Repro-Codecs: columnar",
                 f"X-Repro-Boot: {shm.boot_id()}",
                 f"Content-Length: {len(body)}"]
        if encoding:
            lines.append(f"Content-Encoding: {encoding}")
        lines.extend(f"{name}: {value}" for name, value in extra.items())
        if not keep_alive:
            lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # -- request handling ----------------------------------------------------

    def _service_name(self, path: str) -> str | None:
        parts = [p for p in path.split("/") if p]
        if len(parts) == 2 and parts[0] == "services":
            return parts[1]
        return None

    async def _handle(self, method: str, target: str, headers: dict,
                      body: bytes):
        """Route one request; returns
        ``(status, body, content_type, encoding, extra_headers)``."""
        parsed = urlparse(target)
        if method == "GET":
            return self._handle_get(parsed)
        if method != "POST":
            return 405, b"method not allowed", _TEXT, None, {}
        name = self._service_name(parsed.path)
        if name is None:
            return 404, b"not found", _TEXT, None, {}
        return await self._handle_post(name, headers, body)

    def _handle_get(self, parsed):
        if parsed.path.rstrip("/") == "/services":
            body = "\n".join(self.container.services()).encode()
            return 200, body, _TEXT, None, {}
        name = self._service_name(parsed.path)
        if name is None or "wsdl" not in parsed.query.lower():
            return 404, b"not found", _TEXT, None, {}
        try:
            definition = self.container.definition(name)
        except (ServiceError, SoapFault):
            return 404, f"no service {name!r}".encode(), _TEXT, None, {}
        address = f"{self.base_url}/services/{name}"
        return 200, wsdl.generate(definition, address).encode(), _XML, \
            None, {}

    async def _handle_post(self, name: str, headers: dict, body: bytes):
        ticket = None
        if self.admission is not None:
            principal = headers.get("x-repro-principal", "")
            try:
                priority = int(headers.get("x-repro-priority", "0"))
            except ValueError:
                priority = 0
            try:
                ticket = await self.admission.admit_async(
                    principal=principal, priority=priority)
            except OverloadedError as exc:
                return self._shed_response(name, exc)
        try:
            post = functools.partial(
                self.gateway.post, name, body,
                content_encoding=headers.get("content-encoding"),
                accept_encoding=headers.get("accept-encoding"))
            status, resp_body, content_type, encoding = \
                await self._loop.run_in_executor(self._executor, post)
        finally:
            if ticket is not None:
                ticket.release()
        return status, resp_body, content_type, encoding, {}

    def _shed_response(self, name: str, exc: OverloadedError):
        """The cheap 503: a canned fault envelope, no XML was parsed."""
        retry_after = exc.retry_after_s or DEFAULT_RETRY_HINT_S
        metrics = get_metrics()
        metrics.counter("ws.http.requests", service=name,
                        status=503).inc()
        body = soap.encode_fault(soap.fault_for(exc))
        return 503, body, _XML, None, \
            {"Retry-After": f"{retry_after:.3f}"}
