"""UDDI-style service registry (publish + inquiry).

The paper publishes its services in a jUDDI registry ("Access to the UDDI
registry for inquiry is available at ...:8334/juddi/inquiry").  This module
provides the same two verbs: providers *publish* a service's name, WSDL URL
and category tags; consumers *inquire* by name pattern and/or category.  The
registry itself can be deployed as a Web Service
(:class:`RegistryService`), so discovery happens over SOAP like everything
else.
"""

from __future__ import annotations

import fnmatch
import threading
import time
from dataclasses import dataclass, field

from repro.errors import RegistryError
from repro.ws.service import operation


@dataclass(frozen=True)
class RegistryEntry:
    """One published service."""

    name: str
    wsdl_url: str
    categories: tuple[str, ...] = ()
    description: str = ""
    published_at: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict form (SOAP/JSON-ready)."""
        return {"name": self.name, "wsdl_url": self.wsdl_url,
                "categories": list(self.categories),
                "description": self.description,
                "published_at": self.published_at}


class UDDIRegistry:
    """Thread-safe in-memory registry."""

    def __init__(self) -> None:
        self._entries: dict[str, RegistryEntry] = {}
        self._lock = threading.Lock()

    def publish(self, name: str, wsdl_url: str,
                categories: tuple[str, ...] | list[str] = (),
                description: str = "") -> RegistryEntry:
        """Publish (or republish) a service."""
        if not name or not wsdl_url:
            raise RegistryError("publish needs a name and a WSDL URL")
        entry = RegistryEntry(name=name, wsdl_url=wsdl_url,
                              categories=tuple(categories),
                              description=description,
                              published_at=time.time())
        with self._lock:
            self._entries[name] = entry
        return entry

    def unpublish(self, name: str) -> None:
        """Remove a published service from the registry."""
        with self._lock:
            if name not in self._entries:
                raise RegistryError(f"service {name!r} is not published")
            del self._entries[name]

    def inquire(self, pattern: str = "*",
                category: str | None = None) -> list[RegistryEntry]:
        """Find services by glob *pattern* and optional *category*."""
        with self._lock:
            entries = list(self._entries.values())
        out = [e for e in entries if fnmatch.fnmatch(e.name, pattern)]
        if category is not None:
            out = [e for e in out if category in e.categories]
        return sorted(out, key=lambda e: e.name)

    def lookup(self, name: str) -> RegistryEntry:
        """Exact-name lookup."""
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise RegistryError(f"service {name!r} is not published")
        return entry

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class RegistryService:
    """The registry exposed as a Web Service (deployable in a container)."""

    registry: UDDIRegistry = field(default_factory=UDDIRegistry)

    @operation
    def publish(self, name: str, wsdl_url: str, categories: list = None,
                description: str = "") -> dict:
        """Publish a service; returns the stored registry entry."""
        entry = self.registry.publish(name, wsdl_url,
                                      tuple(categories or ()), description)
        return entry.as_dict()

    @operation
    def inquire(self, pattern: str = "*", category: str = "") -> list:
        """Find published services by glob pattern and optional category."""
        entries = self.registry.inquire(pattern, category or None)
        return [e.as_dict() for e in entries]

    @operation
    def lookup(self, name: str) -> dict:
        """Exact-name lookup; faults if the service is unknown."""
        return self.registry.lookup(name).as_dict()
