"""UDDI-style service registry (publish + inquiry + live discovery).

The paper publishes its services in a jUDDI registry ("Access to the UDDI
registry for inquiry is available at ...:8334/juddi/inquiry").  This module
provides the same two verbs — providers *publish* a service's name, WSDL URL
and category tags; consumers *inquire* by name pattern and/or category — and
grows them into *live* discovery for the service mesh
(:mod:`repro.ws.mesh`):

* **Leases.**  ``publish(..., lease_ttl_s=15)`` registers an entry that
  expires unless the provider heartbeats it with :meth:`UDDIRegistry.renew`
  before the TTL runs out.  Expired entries vanish from every inquiry (and
  :meth:`UDDIRegistry.sweep` reaps them eagerly), so a crashed worker's
  endpoints age out of discovery on their own.  Omitting the TTL keeps the
  paper's original immortal-entry behaviour.
* **Health.**  Entries carry an ``up`` / ``degraded`` / ``down`` health
  state, fed by the per-endpoint circuit breakers (the mesh router marks an
  endpoint ``down`` when its breaker opens and ``up`` when it closes);
  ``inquire(..., healthy_only=True)`` is the router's view.
* **Equivalence.**  Entries record their WSDL ``port_type``; the category
  index plus :meth:`UDDIRegistry.find_equivalents` is what lets the router
  substitute another replica of the same portType when one dies.

All timestamps run on the injectable :mod:`repro.clock`, so lease and TTL
behaviour is testable on a :class:`~repro.clock.FakeClock` without
wall-sleeping.  The registry itself can be deployed as a Web Service
(:class:`RegistryService`), so discovery happens over SOAP like everything
else.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import threading
from dataclasses import dataclass, field

from repro.clock import SYSTEM_CLOCK, Clock
from repro.errors import RegistryError
from repro.obs import get_metrics
from repro.ws.service import operation

HEALTH_UP = "up"
HEALTH_DEGRADED = "degraded"
HEALTH_DOWN = "down"

_HEALTH_STATES = (HEALTH_UP, HEALTH_DEGRADED, HEALTH_DOWN)


@dataclass(frozen=True)
class RegistryEntry:
    """One published service.

    ``published_at`` is a :meth:`Clock.monotonic` stamp on the owning
    registry's clock — lease arithmetic, not wall time.  A ``lease_ttl_s``
    of ``None`` means the entry never expires (the paper's original
    semantics); otherwise the entry is live until
    ``published_at + lease_ttl_s`` and must be renewed to stay visible.
    """

    name: str
    wsdl_url: str
    categories: tuple[str, ...] = ()
    description: str = ""
    published_at: float = 0.0
    lease_ttl_s: float | None = None
    health: str = HEALTH_UP
    port_type: str = ""
    #: optional same-host fast-path endpoint (``unix://`` URL); only
    #: meaningful to consumers sharing the provider's boot id
    uds_url: str = ""

    def expires_at(self) -> float | None:
        """Clock stamp after which the lease is dead (None = immortal)."""
        if self.lease_ttl_s is None:
            return None
        return self.published_at + self.lease_ttl_s

    def expired(self, now: float) -> bool:
        """Has the lease run out at clock stamp *now*?"""
        deadline = self.expires_at()
        return deadline is not None and now >= deadline

    def as_dict(self, now: float | None = None) -> dict:
        """Plain-dict form (SOAP/JSON-ready; ``lease_ttl_s=0`` = immortal)."""
        out = {"name": self.name, "wsdl_url": self.wsdl_url,
               "categories": list(self.categories),
               "description": self.description,
               "published_at": self.published_at,
               "lease_ttl_s": self.lease_ttl_s or 0.0,
               "health": self.health,
               "port_type": self.port_type,
               "uds_url": self.uds_url}
        if now is not None and self.lease_ttl_s is not None:
            out["expires_in_s"] = max(0.0, self.expires_at() - now)
        return out


class UDDIRegistry:
    """Thread-safe in-memory registry with leases and health states."""

    def __init__(self, clock: Clock = SYSTEM_CLOCK) -> None:
        self._entries: dict[str, RegistryEntry] = {}
        self._lock = threading.Lock()
        self._clock = clock

    # -- provider verbs --------------------------------------------------

    def publish(self, name: str, wsdl_url: str,
                categories: tuple[str, ...] | list[str] = (),
                description: str = "", *,
                lease_ttl_s: float | None = None,
                port_type: str = "",
                health: str = HEALTH_UP,
                uds_url: str = "") -> RegistryEntry:
        """Publish (or republish) a service."""
        if not name or not wsdl_url:
            raise RegistryError("publish needs a name and a WSDL URL")
        if health not in _HEALTH_STATES:
            raise RegistryError(
                f"unknown health state {health!r}; "
                f"expected one of {_HEALTH_STATES}")
        ttl = float(lease_ttl_s) if lease_ttl_s else None
        if ttl is not None and ttl <= 0:
            raise RegistryError("lease_ttl_s must be positive")
        entry = RegistryEntry(name=name, wsdl_url=wsdl_url,
                              categories=tuple(categories),
                              description=description,
                              published_at=self._clock.monotonic(),
                              lease_ttl_s=ttl, health=health,
                              port_type=port_type, uds_url=uds_url)
        with self._lock:
            self._entries[name] = entry
            self._gauge_locked()
        return entry

    def renew(self, name: str,
              lease_ttl_s: float | None = None) -> RegistryEntry:
        """Heartbeat: restart *name*'s lease from now.

        Passing ``lease_ttl_s`` also changes the TTL; otherwise the
        entry keeps the one it was published with.  Renewing an entry
        whose lease already ran out fails — the provider must republish.
        """
        now = self._clock.monotonic()
        with self._lock:
            entry = self._live_locked(name, now)
            if entry is None:
                raise RegistryError(
                    f"service {name!r} is not published (lease expired?)")
            changes: dict = {"published_at": now}
            if lease_ttl_s:
                changes["lease_ttl_s"] = float(lease_ttl_s)
            entry = dataclasses.replace(entry, **changes)
            self._entries[name] = entry
        get_metrics().counter("ws.registry.renewals").inc()
        return entry

    def set_health(self, name: str, health: str) -> RegistryEntry:
        """Record a provider/router health verdict for *name*."""
        if health not in _HEALTH_STATES:
            raise RegistryError(
                f"unknown health state {health!r}; "
                f"expected one of {_HEALTH_STATES}")
        now = self._clock.monotonic()
        with self._lock:
            entry = self._live_locked(name, now)
            if entry is None:
                raise RegistryError(
                    f"service {name!r} is not published (lease expired?)")
            entry = dataclasses.replace(entry, health=health)
            self._entries[name] = entry
        get_metrics().counter("ws.registry.health_changes",
                              to=health).inc()
        return entry

    def unpublish(self, name: str) -> None:
        """Remove a published service from the registry."""
        with self._lock:
            if name not in self._entries:
                raise RegistryError(f"service {name!r} is not published")
            del self._entries[name]
            self._gauge_locked()

    def sweep(self) -> list[str]:
        """Reap expired leases now; returns the reaped entry names."""
        now = self._clock.monotonic()
        with self._lock:
            dead = sorted(name for name, entry in self._entries.items()
                          if entry.expired(now))
            for name in dead:
                del self._entries[name]
            if dead:
                self._gauge_locked()
        if dead:
            get_metrics().counter("ws.registry.expirations").inc(len(dead))
        return dead

    # -- consumer verbs --------------------------------------------------

    def inquire(self, pattern: str = "*",
                category: str | None = None,
                healthy_only: bool = False) -> list[RegistryEntry]:
        """Find live services by glob *pattern* and optional *category*.

        Expired leases never match (lazy expiry — no sweeper thread is
        required for correctness).  ``healthy_only`` additionally drops
        entries whose health is ``down`` — the router's view of the
        fleet.
        """
        now = self._clock.monotonic()
        with self._lock:
            entries = [e for e in self._entries.values()
                       if not e.expired(now)]
        out = [e for e in entries if fnmatch.fnmatch(e.name, pattern)]
        if category is not None:
            out = [e for e in out if category in e.categories]
        if healthy_only:
            out = [e for e in out if e.health != HEALTH_DOWN]
        return sorted(out, key=lambda e: e.name)

    def lookup(self, name: str) -> RegistryEntry:
        """Exact-name lookup of a live entry."""
        now = self._clock.monotonic()
        with self._lock:
            entry = self._live_locked(name, now)
        if entry is None:
            raise RegistryError(
                f"service {name!r} is not published (lease expired?)")
        return entry

    def find_equivalents(self, port_type: str,
                         healthy_only: bool = True) -> list[RegistryEntry]:
        """Live entries implementing *port_type* — substitution candidates.

        Equivalence in the WSDL sense: two services sharing a portType
        answer the same operations, so the router may move a call from a
        dead replica to any of these.
        """
        if not port_type:
            return []
        now = self._clock.monotonic()
        with self._lock:
            entries = [e for e in self._entries.values()
                       if not e.expired(now) and e.port_type == port_type]
        if healthy_only:
            entries = [e for e in entries if e.health != HEALTH_DOWN]
        return sorted(entries, key=lambda e: e.name)

    def now(self) -> float:
        """The registry clock's current stamp (for lease arithmetic)."""
        return self._clock.monotonic()

    def __len__(self) -> int:
        now = self._clock.monotonic()
        with self._lock:
            return sum(1 for e in self._entries.values()
                       if not e.expired(now))

    # -- internals -------------------------------------------------------

    def _live_locked(self, name: str, now: float) -> RegistryEntry | None:
        entry = self._entries.get(name)
        if entry is None or entry.expired(now):
            return None
        return entry

    def _gauge_locked(self) -> None:
        get_metrics().gauge("ws.registry.entries").set(len(self._entries))


@dataclass
class RegistryService:
    """The registry exposed as a Web Service (deployable in a container).

    SOAP carries no ``None``, so the lease TTL travels as a float with
    ``0`` meaning "no lease" on both the publish and renew verbs.
    """

    registry: UDDIRegistry = field(default_factory=UDDIRegistry)

    @operation
    def publish(self, name: str, wsdl_url: str, categories: list = None,
                description: str = "", lease_ttl_s: float = 0.0,
                port_type: str = "", uds_url: str = "") -> dict:
        """Publish a service; returns the stored registry entry."""
        entry = self.registry.publish(
            name, wsdl_url, tuple(categories or ()), description,
            lease_ttl_s=lease_ttl_s or None, port_type=port_type,
            uds_url=uds_url)
        return entry.as_dict()

    @operation
    def inquire(self, pattern: str = "*", category: str = "",
                healthy_only: bool = False) -> list:
        """Find published services by glob pattern and optional category."""
        entries = self.registry.inquire(pattern, category or None,
                                        healthy_only=bool(healthy_only))
        now = self.registry.now()
        return [e.as_dict(now) for e in entries]

    @operation
    def lookup(self, name: str) -> dict:
        """Exact-name lookup; faults if the service is unknown."""
        return self.registry.lookup(name).as_dict(self.registry.now())

    @operation
    def unpublish(self, name: str) -> dict:
        """Withdraw a published service; faults if it is unknown."""
        self.registry.unpublish(name)
        return {"name": name, "unpublished": True}

    @operation
    def renew(self, name: str, lease_ttl_s: float = 0.0) -> dict:
        """Heartbeat a lease; faults if the entry is gone (republish)."""
        entry = self.registry.renew(name, lease_ttl_s or None)
        return entry.as_dict(self.registry.now())
