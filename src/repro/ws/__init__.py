"""Web-services substrate: SOAP messages, WSDL descriptions, the service
container with the §4.5 lifecycles, HTTP hosting, client proxies, the UDDI
registry and transport models."""

from repro.ws.soap import (DEADLINE_FAULTCODE, MULTICALL_OP,
                           OVERLOAD_FAULTCODE, CallOutcome, SoapFault,
                           SoapRequest, SoapResponse, SubCall,
                           decode_request, decode_response, encode_fault,
                           encode_request, encode_response,
                           multicall_request)
from repro.ws.deadline import Deadline, current_deadline, deadline_scope
from repro.ws.breaker import CircuitBreaker
from repro.ws.admission import (AdmissionController, AdmissionHandler,
                                Ticket, TokenBucket)
from repro.ws.service import OperationInfo, ServiceDefinition, operation
from repro.ws.container import LIFECYCLES, ServiceContainer, ServiceStats
from repro.ws.httpd import SoapHttpServer
from repro.ws.aserve import AsyncSoapHttpServer
from repro.ws import loadgen
from repro.ws.loadgen import LoadReport
from repro.ws.client import HttpTransport, ServiceProxy, fetch_url
from repro.ws import payload
from repro.ws.payload import (PayloadMissError, PayloadRef, PayloadStore,
                              get_payload_store)
from repro.ws.registry import RegistryEntry, RegistryService, UDDIRegistry
from repro.ws.transport import (LAN, WAN, ChainedTransport,
                                FailingTransport, InProcessTransport,
                                NetworkModel, SimulatedTransport,
                                Transport, apply_deadline)
from repro.ws import pipeline
from repro.ws.pipeline import (CallContext, ClientInterceptor,
                               DispatchContext, ServerHandler,
                               chain_insert_after, chain_insert_before,
                               chain_names, chain_without,
                               default_proxy_interceptors,
                               default_server_handlers,
                               default_transport_interceptors)
from repro.ws import wsdl
from repro.ws.scatter import (ChunkDispatch, ScatterGather, ScatterReport,
                              default_chunk, set_default_chunk)

__all__ = [
    "SoapRequest", "SoapResponse", "SoapFault",
    "encode_request", "decode_request", "encode_response",
    "decode_response", "encode_fault",
    "MULTICALL_OP", "SubCall", "CallOutcome", "multicall_request",
    "ScatterGather", "ScatterReport", "ChunkDispatch",
    "default_chunk", "set_default_chunk",
    "operation", "ServiceDefinition", "OperationInfo",
    "ServiceContainer", "ServiceStats", "LIFECYCLES",
    "SoapHttpServer", "AsyncSoapHttpServer", "ServiceProxy",
    "HttpTransport", "fetch_url",
    "AdmissionController", "AdmissionHandler", "Ticket", "TokenBucket",
    "OVERLOAD_FAULTCODE", "loadgen", "LoadReport",
    "UDDIRegistry", "RegistryService", "RegistryEntry",
    "Transport", "ChainedTransport", "InProcessTransport",
    "SimulatedTransport", "FailingTransport", "NetworkModel", "LAN",
    "WAN",
    "pipeline", "ClientInterceptor", "ServerHandler", "CallContext",
    "DispatchContext", "chain_names", "chain_without",
    "chain_insert_before", "chain_insert_after",
    "default_transport_interceptors", "default_proxy_interceptors",
    "default_server_handlers",
    "Deadline", "deadline_scope", "current_deadline", "apply_deadline",
    "DEADLINE_FAULTCODE", "CircuitBreaker",
    "payload", "PayloadRef", "PayloadStore", "PayloadMissError",
    "get_payload_store",
    "wsdl",
]
