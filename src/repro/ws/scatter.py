"""Scatter-gather batch execution across replica endpoints.

Grid WEKA (the paper's §2 related work) distributes bulk workloads —
"labelling of test data using a previously built classifier" — across
an ad-hoc pool of machines.  :class:`ScatterGather` is that capability
for any batched operation: it splits an ordered work list across replica
endpoints, sizes each endpoint's chunks adaptively (an EWMA of its
per-item latency aims every dispatch at a fixed time slice, so fast
replicas take bigger bites), merges results back in input order, and
migrates the chunks of a failed endpoint to the survivors — the same
fold-migration semantics :func:`repro.services.grid
.distributed_cross_validate` has always had, factored out so bulk
scoring and cross-validation share one engine.

The helper is policy-only: it never touches sockets or envelopes itself
(the caller's ``dispatch`` callback does, typically via
``ServiceProxy.call``/``call_many``), and it must stay free of chaos
imports (enforced by ``tools/layering_lint.py``) — fault injection
belongs to the transport chains underneath.

Overloaded replicas are *backpressure*, not death: a dispatch that
raises :class:`~repro.errors.OverloadedError` (the server's admission
control shed the chunk) re-queues its chunk, halves the endpoint's
next bite, and backs off for the server's ``Retry-After`` hint before
taking more work — the shed propagates through the scatter plane as a
slowdown instead of a migration.  Only ``max_overloads`` *consecutive*
sheds from one endpoint demote it to the failure path.

Metrics: ``ws.scatter.rebalance`` counts chunk migrations off dead
endpoints; ``ws.scatter.backpressure`` counts overload backoffs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.clock import SYSTEM_CLOCK, Clock
from repro.errors import (OverloadedError, ServiceError, TransportError,
                          WorkflowError)
from repro.obs import get_metrics
from repro.ws.admission import DEFAULT_RETRY_HINT_S
from repro.ws.deadline import current_deadline

#: Process-wide default chunk size (``repro run --batch-size`` sets it).
DEFAULT_CHUNK = 64

_default_chunk = DEFAULT_CHUNK

#: Failures that mark an endpoint dead and migrate its chunk; the same
#: set the grid fold-migration path has always used.
MIGRATE_ERRORS = (TransportError, ServiceError, OSError)


class _CheckpointFailed(Exception):
    """Internal sentinel: the ``on_chunk`` callback raised.

    The original exception is already queued on the run's ``fatal``
    list; this wrapper only exists so the worker's migrate/backpressure
    handlers cannot mistake a checkpoint failure (which may well be an
    :class:`OSError`) for an endpoint death.
    """


def set_default_chunk(size: int) -> None:
    """Set the process-wide initial chunk size (≥ 1)."""
    global _default_chunk
    _default_chunk = max(1, int(size))


def default_chunk() -> int:
    """The process-wide initial chunk size."""
    return _default_chunk


def resolve_endpoints(endpoints) -> list:
    """Materialise a caller's endpoint argument into a proxy list.

    Callers historically pass a static sequence of client proxies; the
    mesh introduced *endpoint sources* — objects exposing ``proxies()``
    that answer one proxy per currently-live replica (see
    :meth:`repro.ws.mesh.endpoints.ServiceEndpoints.proxies`).  This
    duck-typed resolution is what lets ``grid.*``, bulk scoring and the
    experiment runner consume live discovery without importing the mesh:
    resolve at run start, and a replica set that changed since the last
    run is simply picked up on the next resolution.
    """
    if hasattr(endpoints, "proxies"):
        return list(endpoints.proxies())
    return list(endpoints)


@dataclass
class ChunkDispatch:
    """Bookkeeping for one dispatch attempt of one chunk."""

    endpoint: int
    indices: tuple[int, ...]
    attempts: int = 1
    migrated: bool = False
    completed: bool = True
    seconds: float = 0.0


@dataclass
class ScatterReport:
    """Merged results + execution trace of one scatter-gather run."""

    results: list
    dispatches: list[ChunkDispatch] = field(default_factory=list)

    @property
    def rebalances(self) -> int:
        """Chunk attempts that failed and were migrated to survivors."""
        return sum(1 for d in self.dispatches if not d.completed)

    def endpoint_loads(self) -> dict[int, int]:
        """Completed items per endpoint (failed attempts excluded)."""
        loads: dict[int, int] = {}
        for d in self.dispatches:
            if d.completed:
                loads[d.endpoint] = loads.get(d.endpoint, 0) \
                    + len(d.indices)
        return loads


class _EndpointState:
    """Adaptive chunk sizing for one endpoint (EWMA of per-item time)."""

    def __init__(self, alpha: float):
        self.alpha = alpha
        self.ewma_s: float | None = None
        self.consecutive_overloads = 0

    def observe(self, per_item_s: float) -> None:
        if self.ewma_s is None:
            self.ewma_s = per_item_s
        else:
            self.ewma_s = (self.alpha * per_item_s
                           + (1.0 - self.alpha) * self.ewma_s)


class ScatterGather:
    """Split an ordered work list across *n_endpoints* replicas.

    ``run(items, dispatch)`` drives one worker thread per endpoint;
    each repeatedly takes the next chunk off a shared queue and calls
    ``dispatch(endpoint, chunk_items, indices)``, which must return one
    result per item (in chunk order).  A dispatch that raises one of
    :data:`MIGRATE_ERRORS` kills its endpoint and re-queues the chunk
    for the survivors.  Chunk sizes start at *chunk* and adapt per
    endpoint: an EWMA of observed per-item seconds aims each dispatch
    at *target_chunk_s* of work, clamped to ``[min_chunk, max_chunk]``.
    An ambient deadline (captured at ``run`` time — worker threads do
    not inherit contextvars) stops dispatching and fails the run fast.
    """

    def __init__(self, n_endpoints: int, *, chunk: int | None = None,
                 min_chunk: int = 1, max_chunk: int = 256,
                 target_chunk_s: float = 0.25, alpha: float = 0.3,
                 max_overloads: int = 8, clock: Clock = SYSTEM_CLOCK,
                 name: str = "scatter"):
        if n_endpoints < 1:
            raise WorkflowError("scatter-gather needs ≥ 1 endpoint")
        self.n_endpoints = n_endpoints
        self.chunk = chunk if chunk is not None else default_chunk()
        self.min_chunk = max(1, min_chunk)
        self.max_chunk = max(self.min_chunk, max_chunk)
        self.target_chunk_s = target_chunk_s
        #: Consecutive sheds tolerated per endpoint before it is
        #: treated like a failed replica (its chunk migrates).
        self.max_overloads = max_overloads
        #: Injectable so backoff behaviour is testable without sleeping.
        self.clock = clock
        self.name = name
        self._states = [_EndpointState(alpha) for _ in range(n_endpoints)]

    def _note_overload(self, endpoint: int) -> int:
        """Record one shed (caller holds the run lock); halve the bite.

        Returns the endpoint's consecutive-overload count.  The EWMA is
        inflated instead of zeroed so the next successful dispatch
        re-converges smoothly from the smaller chunk.
        """
        state = self._states[endpoint]
        state.consecutive_overloads += 1
        if state.ewma_s is None:
            # no latency signal yet: seed the EWMA so the next bite is
            # half the configured chunk
            half = max(self.min_chunk, self.chunk // 2)
            state.ewma_s = self.target_chunk_s / half
        else:
            state.ewma_s *= 2.0
        return state.consecutive_overloads

    def chunk_for(self, endpoint: int) -> int:
        """Current chunk size for *endpoint* (adaptive after feedback)."""
        state = self._states[endpoint]
        if state.ewma_s is None:
            size = self.chunk
        elif state.ewma_s <= 0:
            size = self.max_chunk
        else:
            size = int(round(self.target_chunk_s / state.ewma_s))
        return max(self.min_chunk, min(self.max_chunk, size))

    def run(self, items: Sequence, dispatch: Callable,
            on_chunk: Callable | None = None) -> ScatterReport:
        """Dispatch *items* across the endpoints; merge in input order.

        *on_chunk*, when given, is called as ``on_chunk(endpoint,
        indices, results)`` immediately after each chunk completes —
        while other endpoints are still executing — so callers can
        persist partial progress (the experiment runner checkpoints
        every completed cell here).  Calls are serialised under the
        run lock in completion order; an exception raised by the
        callback is fatal to the whole run, and the chunk it covered
        is *not* recorded as completed — a checkpoint that did not
        happen is never mistaken for one that did.
        """
        items = list(items)
        results: list = [None] * len(items)
        pending = deque(range(len(items)))
        dead: set[int] = set()
        errors: list[Exception] = []
        fatal: list[Exception] = []
        dispatches: list[ChunkDispatch] = []
        lock = threading.Lock()
        deadline = current_deadline()

        def take(endpoint: int) -> list[int]:
            with lock:
                if not pending:
                    return []
                size = min(self.chunk_for(endpoint), len(pending))
                return [pending.popleft() for _ in range(size)]

        def attempt(endpoint: int, indices: list[int],
                    attempts: int) -> None:
            chunk_items = [items[i] for i in indices]
            start = time.perf_counter()
            out = dispatch(endpoint, chunk_items, list(indices))
            elapsed = time.perf_counter() - start
            if out is None or len(out) != len(indices):
                got = len(out) if out is not None else "no"
                raise WorkflowError(
                    f"{self.name} dispatch returned {got} result(s) "
                    f"for {len(indices)} item(s)")
            with lock:
                if on_chunk is not None:
                    # before the chunk is recorded: a callback failure
                    # (e.g. the checkpoint store's disk is gone) must
                    # leave the chunk un-done so the caller's failure
                    # path re-queues it
                    try:
                        on_chunk(endpoint, list(indices), list(out))
                    except Exception as exc:
                        fatal.append(exc)
                        for i in reversed(indices):
                            pending.appendleft(i)
                        raise _CheckpointFailed() from exc
                for i, value in zip(indices, out):
                    results[i] = value
                self._states[endpoint].observe(
                    elapsed / max(1, len(indices)))
                self._states[endpoint].consecutive_overloads = 0
                dispatches.append(ChunkDispatch(
                    endpoint, tuple(indices), attempts=attempts,
                    migrated=attempts > 1, seconds=elapsed))

        def fail(endpoint: int, indices: list[int],
                 exc: Exception) -> None:
            with lock:
                for i in reversed(indices):
                    pending.appendleft(i)  # migrate the chunk
                dead.add(endpoint)
                errors.append(exc)
                dispatches.append(ChunkDispatch(
                    endpoint, tuple(indices), migrated=True,
                    completed=False))
            get_metrics().counter("ws.scatter.rebalance").inc()

        def backpressure(endpoint: int, indices: list[int],
                         exc: OverloadedError) -> bool:
            """Absorb one shed; ``False`` once patience is exhausted.

            The chunk goes back on the queue either way — an overloaded
            replica never loses work, it just gets smaller bites after
            a backoff.
            """
            with lock:
                for i in reversed(indices):
                    pending.appendleft(i)
                overloads = self._note_overload(endpoint)
            get_metrics().counter("ws.scatter.backpressure").inc()
            if overloads > self.max_overloads:
                with lock:
                    dead.add(endpoint)
                    errors.append(exc)
                    dispatches.append(ChunkDispatch(
                        endpoint, tuple(indices), migrated=True,
                        completed=False))
                get_metrics().counter("ws.scatter.rebalance").inc()
                return False
            self.clock.sleep(exc.retry_after_s or DEFAULT_RETRY_HINT_S)
            return True

        def worker(endpoint: int) -> None:
            while True:
                if deadline is not None and deadline.expired:
                    return  # stop taking work; the join-side check raises
                indices = take(endpoint)
                if not indices:
                    return
                try:
                    attempt(endpoint, indices, attempts=1)
                except _CheckpointFailed:
                    return  # original exception already on `fatal`
                except OverloadedError as exc:
                    if not backpressure(endpoint, indices, exc):
                        return  # saturated beyond patience: migrate
                except MIGRATE_ERRORS as exc:
                    fail(endpoint, indices, exc)
                    return  # this endpoint is done for
                except Exception as exc:  # dispatch contract broken
                    with lock:
                        fatal.append(exc)
                        for i in reversed(indices):
                            pending.appendleft(i)
                    return

        threads = [threading.Thread(target=worker, args=(i,),
                                    name=f"{self.name}-worker-{i}")
                   for i in range(self.n_endpoints)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if fatal:
            raise fatal[0]
        if pending and deadline is not None:
            deadline.check(self.name)
        if pending:
            # chunks migrated after every other worker already exited:
            # drain them on the surviving endpoints, chunk at a time
            survivors = [i for i in range(self.n_endpoints)
                         if i not in dead]
            while pending:
                if not survivors:
                    raise WorkflowError(
                        f"{len(pending)} {self.name} item(s) "
                        f"undispatchable: all {self.n_endpoints} "
                        f"endpoint(s) died ({errors[0]!r})")
                endpoint = survivors[0]
                indices = take(endpoint)
                try:
                    attempt(endpoint, indices, attempts=2)
                except _CheckpointFailed:
                    raise fatal[0]
                except OverloadedError as exc:
                    if not backpressure(endpoint, indices, exc):
                        survivors.pop(0)
                except MIGRATE_ERRORS as exc:
                    fail(endpoint, indices, exc)
                    survivors.pop(0)
        return ScatterReport(results=results, dispatches=dispatches)
