"""Per-endpoint circuit breakers: fail fast instead of hammering the dead.

The §3 fault-tolerance requirement ("complete the task if a fault occurs by
moving the job to another resource") implies *noticing* a dead resource
quickly.  Retries alone keep paying full timeouts against an endpoint that
is down; a :class:`CircuitBreaker` remembers recent failures per endpoint
and short-circuits further sends while the endpoint is presumed dead, so
callers migrate to replicas immediately (see
:class:`~repro.workflow.faults.ReplicatedServiceTool`).

Classic three-state machine:

* **closed** — calls flow; ``failure_threshold`` *consecutive* failures
  trip the breaker.
* **open** — every call fails fast with
  :class:`~repro.errors.CircuitOpenError` (a :class:`TransportError`
  subclass, so retry/migration machinery treats it as an unreachable
  endpoint).  After ``cooldown_s`` on the injected clock the breaker moves
  to half-open.
* **half-open** — up to ``half_open_max`` probe calls are let through; a
  success closes the breaker, a failure re-opens it for another cooldown.

State changes and fast-failures feed the metrics registry
(``ws.breaker.state`` gauge, ``ws.breaker.transitions`` /
``ws.breaker.fast_failures`` counters).
"""

from __future__ import annotations

import threading

from repro.clock import SYSTEM_CLOCK, Clock
from repro.errors import CircuitOpenError
from repro.obs import get_metrics

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of the states (0 = healthy, higher = worse).
_STATE_VALUE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure breaker with cooldown and half-open probes."""

    def __init__(self, endpoint: str = "", failure_threshold: int = 5,
                 cooldown_s: float = 30.0, half_open_max: int = 1,
                 clock: Clock = SYSTEM_CLOCK):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.endpoint = endpoint
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_max = half_open_max
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.fast_failures = 0

    # -- state -----------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, applying cooldown expiry (open → half-open)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and \
                self._clock.monotonic() - self._opened_at \
                >= self.cooldown_s:
            self._transition(HALF_OPEN)
            self._probes_in_flight = 0

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        metrics = get_metrics()
        metrics.counter("ws.breaker.transitions",
                        endpoint=self.endpoint, to=state).inc()
        metrics.gauge("ws.breaker.state",
                      endpoint=self.endpoint).set(_STATE_VALUE[state])

    # -- call protocol ---------------------------------------------------
    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open admits probes.)"""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and \
                    self._probes_in_flight < self.half_open_max:
                self._probes_in_flight += 1
                return True
            self.fast_failures += 1
            get_metrics().counter("ws.breaker.fast_failures",
                                  endpoint=self.endpoint).inc()
            return False

    def ensure_closed(self, what: str = "call") -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit open for {self.endpoint or 'endpoint'}: "
                f"{what} failed fast (cooldown {self.cooldown_s}s)")

    def record_success(self) -> None:
        """Note a successful call: closes the circuit."""
        with self._lock:
            # one verdict per logical call — the transport's stale
            # retry happens *below* the breaker gate, so a healed
            # keep-alive never double-counts here
            get_metrics().counter("ws.breaker.successes",
                                  endpoint=self.endpoint).inc()
            self._consecutive_failures = 0
            self._probes_in_flight = 0
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """Note a failed call: may trip (or re-open) the circuit."""
        with self._lock:
            get_metrics().counter("ws.breaker.failures",
                                  endpoint=self.endpoint).inc()
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or \
                    self._consecutive_failures >= self.failure_threshold:
                self._consecutive_failures = 0
                self._opened_at = self._clock.monotonic()
                self._probes_in_flight = 0
                self._transition(OPEN)
