"""Client-side service access: dynamic proxies over any transport.

:class:`ServiceProxy` is the client half of the paper's WSDL import: given a
WSDL document (or a ``?wsdl`` URL) it exposes each operation as a Python
method, validating parameter names before anything goes on the wire — the
same early feedback the Triana tools give.

A call runs the proxy's :mod:`repro.ws.pipeline` interceptor chain
(deadline → breaker → trace → metrics by default, see
:func:`repro.ws.pipeline.default_proxy_interceptors`) into
``transport.send``; pass ``interceptors=`` to install a custom chain.
:class:`~repro.ws.transport.HttpTransport` itself lives in
:mod:`repro.ws.transport` and is re-exported here for compatibility.
"""

from __future__ import annotations

import http.client
from typing import Any
from urllib.parse import urlparse

from repro.data import cache as datacache
from repro.errors import ServiceError, TransportError, WsdlError
from repro.obs import get_metrics
from repro.ws import pipeline, soap, wsdl
from repro.ws import transport as transport_mod
from repro.ws.soap import CallOutcome, SoapRequest, SubCall
from repro.ws.transport import HttpTransport, Transport  # noqa: F401


def fetch_url(url: str, timeout: float = 30.0) -> str:
    """GET a small text document (WSDL, service index, data file).

    Speaks ``http://`` and ``unix://`` (percent-encoded socket path as
    the authority), so WSDL import works over the same-host fast path.
    """
    parsed = urlparse(url)
    if parsed.scheme == "unix":
        socket_path, _ = transport_mod.parse_unix_url(
            url.split("?", 1)[0])
        conn = transport_mod._UnixHTTPConnection(socket_path,
                                                 timeout=timeout)
        path = parsed.path or "/"
    elif parsed.scheme == "http" and parsed.hostname:
        conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port or 80, timeout=timeout)
        path = parsed.path or "/"
    else:
        raise TransportError(f"unsupported URL {url!r}")
    try:
        if parsed.query:
            path += "?" + parsed.query
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        conn.close()
    except (OSError, http.client.HTTPException) as exc:
        raise TransportError(f"cannot fetch {url!r}: {exc}") from exc
    if response.status != 200:
        raise TransportError(
            f"GET {url} returned HTTP {response.status}")
    return body.decode("utf-8")


#: Parsed WSDL descriptions keyed by the URL they were fetched from.
#: Re-importing a toolbox touches every service's ``?wsdl`` repeatedly;
#: the documents are immutable per deployment, so one fetch+parse per
#: endpoint is enough.
_WSDL_CACHE = datacache.LruCache(64)


def reset_wsdl_cache() -> None:
    """Drop all cached WSDL descriptions (test isolation)."""
    _WSDL_CACHE.clear()


class ServiceProxy:
    """Dynamic operation proxy over any :class:`Transport`.

    An optional per-endpoint :class:`~repro.ws.breaker.CircuitBreaker`
    makes the proxy fail fast
    (:class:`~repro.errors.CircuitOpenError`) while its endpoint is
    presumed dead, instead of paying a full transport timeout per call.
    Only delivery failures (:class:`TransportError`/``OSError``) count
    against the breaker — a SOAP fault proves the endpoint is alive.
    The breaker rides in the chain's ``breaker`` step
    (:class:`~repro.ws.pipeline.BreakerGate`).
    """

    def __init__(self, description: wsdl.WsdlDescription,
                 transport: Transport,
                 breaker=None, interceptors=None,
                 principal: str = "", priority: int = 0):
        self.description = description
        self.transport = transport
        self.breaker = breaker
        self.interceptors = list(interceptors) if interceptors is not None \
            else pipeline.default_proxy_interceptors(breaker)
        #: Caller identity/rank stamped onto every outgoing request,
        #: carried in the ``<repro:Caller>`` SOAP header (and mirrored
        #: as HTTP headers) for server-side admission control.  The
        #: defaults leave the wire format unchanged.
        self.principal = principal
        self.priority = priority

    @classmethod
    def from_wsdl_url(cls, url: str, breaker=None) -> "ServiceProxy":
        """Build a proxy by fetching and parsing a ``?wsdl`` URL.

        Descriptions are cached per URL (bounded LRU), so re-importing
        a toolbox costs one HTTP round-trip per service, not per call.
        """
        description = None
        if datacache.enabled():
            description = _WSDL_CACHE.get(url)
        if description is not None:
            get_metrics().counter("ws.wsdl.cache.hits").inc()
        else:
            get_metrics().counter("ws.wsdl.cache.misses").inc()
            description = wsdl.parse(fetch_url(url))
            if datacache.enabled():
                _WSDL_CACHE.put(url, description)
        if not description.address:
            raise WsdlError(f"WSDL at {url} carries no endpoint address")
        # a WSDL fetched over the Unix fast path advertises its TCP
        # soap:address; keep the whole conversation on the socket
        endpoint = url.split("?", 1)[0] \
            if urlparse(url).scheme == "unix" else description.address
        return cls(description, transport_mod.transport_for(endpoint),
                   breaker=breaker)

    @classmethod
    def from_wsdl_text(cls, document: str, transport: Transport,
                       breaker=None, interceptors=None) -> "ServiceProxy":
        """Build a proxy from WSDL text with an explicit transport."""
        return cls(wsdl.parse(document), transport, breaker=breaker,
                   interceptors=interceptors)

    def operations(self) -> list[str]:
        """Sorted operation names offered by the service."""
        return sorted(self.description.operations)

    def _validate(self, operation: str, params: dict[str, Any]) -> None:
        """WSDL early feedback: reject unknown ops/params before the wire."""
        info = self.description.operations.get(operation)
        if info is None:
            raise WsdlError(
                f"service {self.description.service!r} has no operation "
                f"{operation!r}; known: {self.operations()}")
        declared = {p for p, _ in info.params}
        unknown = sorted(set(params) - declared)
        if unknown:
            raise WsdlError(
                f"operation {operation!r} got unknown parameter(s) "
                f"{unknown}; declared: {sorted(declared)}")
        missing = sorted(set(info.required) - set(params))
        if missing:
            raise WsdlError(
                f"operation {operation!r} missing required parameter(s) "
                f"{missing}")

    def _request(self, operation: str,
                 params: dict[str, Any]) -> SoapRequest:
        return SoapRequest(self.description.service, operation, params,
                           principal=self.principal,
                           priority=self.priority)

    def speaks(self, codec: str) -> bool:
        """True when this proxy's peer accepts the named wire codec —
        callers use it to pick binary columnar frames over ARFF text
        for dataset-valued parameters (see ``repro.data.dataio``).
        Duck-typed transports without capability tracking simply keep
        the universally understood ARFF text path."""
        probe = getattr(self.transport, "speaks", None)
        return bool(probe(codec)) if probe is not None else False

    def call(self, operation: str, **params: Any) -> Any:
        """Invoke *operation*; parameter names are checked against WSDL."""
        self._validate(operation, params)
        request = self._request(operation, params)
        ctx = pipeline.CallContext(kind="client",
                                   service=request.service,
                                   operation=operation)
        response = pipeline.run_chain(self.interceptors, request, ctx,
                                      self.transport.send)
        return response.result

    async def call_async(self, operation: str, **params: Any) -> Any:
        """Invoke *operation* from an event loop.

        Runs the same proxy interceptor chain (async mirrors of the
        deadline/breaker/trace/metrics steps) into
        ``transport.send_async``, so policy and telemetry match
        :meth:`call` exactly while thousands of in-flight calls share
        one thread.
        """
        self._validate(operation, params)
        request = self._request(operation, params)
        ctx = pipeline.CallContext(kind="client",
                                   service=request.service,
                                   operation=operation)
        response = await pipeline.run_chain_async(
            self.interceptors, request, ctx, self.transport.send_async)
        return response.result

    def call_many(self, calls, *,
                  raise_on_fault: bool = False) -> list[Any]:
        """Invoke many operations in one wire exchange (SOAP multicall).

        *calls* is an ordered iterable of ``(operation, params)`` pairs
        or :class:`~repro.ws.soap.SubCall` items against this service
        (mixed operations allowed); each is validated against the WSDL
        exactly like :meth:`call`.  The batch travels through the normal
        proxy and transport interceptor chains as a single request, so
        deadlines, breaker state, tracing, gzip and payload-refs apply
        to it as a unit.

        Returns one :class:`~repro.ws.soap.CallOutcome` per sub-call, in
        input order — per-item faults are carried, not raised.  With
        ``raise_on_fault=True`` the outcomes are unwrapped into plain
        results and the first per-item fault raises instead.
        """
        subcalls: list[SubCall] = []
        for item in calls:
            if isinstance(item, SubCall):
                operation, params = item.operation, item.params
            else:
                operation, params = item
            self._validate(operation, dict(params))
            subcalls.append(SubCall(operation, dict(params)))
        if not subcalls:
            return []
        service = self.description.service
        request = soap.multicall_request(service, subcalls,
                                         principal=self.principal,
                                         priority=self.priority)
        ctx = pipeline.CallContext(kind="client", service=service,
                                   operation=soap.MULTICALL_OP)
        response = pipeline.run_chain(self.interceptors, request, ctx,
                                      self.transport.send)
        outcomes = response.result
        if not isinstance(outcomes, list) or not all(
                isinstance(o, CallOutcome) for o in outcomes) or \
                len(outcomes) != len(subcalls):
            got = len(outcomes) if isinstance(outcomes, list) else "no"
            raise ServiceError(
                f"multicall answered {got} item(s) for "
                f"{len(subcalls)} sub-call(s)")
        if raise_on_fault:
            return [outcome.unwrap() for outcome in outcomes]
        return outcomes

    def __getattr__(self, name: str):
        if name.startswith("_") or name not in \
                self.description.operations:
            raise AttributeError(name)

        def bound(**params: Any) -> Any:
            return self.call(name, **params)

        bound.__name__ = name
        return bound

    def close(self) -> None:
        """Release underlying resources."""
        self.transport.close()
