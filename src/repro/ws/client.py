"""Client-side service access: HTTP transport and dynamic proxies.

:class:`ServiceProxy` is the client half of the paper's WSDL import: given a
WSDL document (or a ``?wsdl`` URL) it exposes each operation as a Python
method, validating parameter names before anything goes on the wire — the
same early feedback the Triana tools give.
"""

from __future__ import annotations

import http.client
import time
from typing import Any
from urllib.parse import urlparse

from repro.data import cache as datacache
from repro.errors import DeadlineExceeded, TransportError, WsdlError
from repro.obs import get_metrics, get_tracer
from repro.ws import payload, soap, wsdl
from repro.ws.breaker import CircuitBreaker
from repro.ws.deadline import current_deadline
from repro.ws.soap import SoapRequest, SoapResponse
from repro.ws.transport import (Transport, apply_deadline,
                                payload_fallback,
                                record_transport_metrics,
                                stamp_trace_context)


class HttpTransport(Transport):
    """SOAP POST over a persistent HTTP connection.

    Bodies above :data:`repro.ws.payload.COMPRESS_MIN_BYTES` go out
    gzip-compressed (``Content-Encoding: gzip``), and every request
    advertises ``Accept-Encoding: gzip`` so a compressing server can
    answer in kind; a peer that ignores both stays fully interoperable.
    Pass ``compress=False`` to negotiate identity encoding only.
    """

    def __init__(self, endpoint: str, timeout: float = 30.0,
                 compress: bool = True):
        self.endpoint = endpoint
        parsed = urlparse(endpoint)
        if parsed.scheme != "http" or not parsed.hostname:
            raise TransportError(f"unsupported endpoint {endpoint!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._path = parsed.path or "/"
        self._timeout = timeout
        self._conn: http.client.HTTPConnection | None = None
        self.compress = compress
        self.bytes_sent = 0
        self.bytes_received = 0
        self._peer = payload.PeerState()

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout)
        return self._conn

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        start = time.perf_counter()
        with get_tracer().span("send:http",
                               {"endpoint": self.endpoint}) as span:
            stamp_trace_context(request, span)
            apply_deadline(request)
            return payload_fallback(
                lambda outbound: self._exchange(outbound, span, start),
                request, self._peer)

    def _exchange(self, request: SoapRequest, span,
                  start: float) -> SoapResponse:
        encoded = soap.encode_request(request)
        headers = {
            "Content-Type": "text/xml; charset=utf-8",
            "SOAPAction": f'"{request.operation}"',
        }
        wire = encoded
        if self.compress:
            headers["Accept-Encoding"] = "gzip"
            wire, encoding = payload.maybe_compress(encoded)
            if encoding:
                headers["Content-Encoding"] = encoding
        self.bytes_sent += len(wire)
        try:
            conn = self._connection()
            # never wait on the socket longer than the call's
            # remaining budget allows
            effective = self._timeout
            if request.deadline_s is not None:
                effective = min(effective, max(request.deadline_s,
                                               1e-3))
            conn.timeout = effective
            if conn.sock is not None:
                conn.sock.settimeout(effective)
            conn.request("POST", self._path, body=wire, headers=headers)
            http_response = conn.getresponse()
            body = http_response.read()
        except (OSError, http.client.HTTPException) as exc:
            self.close()
            get_metrics().counter("ws.transport.errors",
                                  transport="http").inc()
            if isinstance(exc, TimeoutError) and \
                    request.deadline_s is not None and \
                    request.deadline_s < self._timeout:
                raise DeadlineExceeded(
                    f"{self.endpoint} did not answer within the "
                    f"remaining {request.deadline_s:.3f}s budget"
                ) from exc
            raise TransportError(
                f"cannot reach {self.endpoint}: {exc}") from exc
        self.bytes_received += len(body)
        span.set_attribute("bytes_sent", len(wire))
        span.set_attribute("bytes_received", len(body))
        span.set_attribute("payload_refs", len(payload.refs_in(request)))
        span.set_attribute("http_status", http_response.status)
        record_transport_metrics("http", time.perf_counter() - start,
                                 len(wire), len(body))
        body = payload.decompress(
            body, http_response.getheader("Content-Encoding"))
        return soap.decode_response(body)  # raises SoapFault on faults

    def close(self) -> None:
        """Release underlying resources."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def fetch_url(url: str, timeout: float = 30.0) -> str:
    """GET a small text document (WSDL, service index, data file)."""
    parsed = urlparse(url)
    if parsed.scheme != "http" or not parsed.hostname:
        raise TransportError(f"unsupported URL {url!r}")
    try:
        conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port or 80, timeout=timeout)
        path = parsed.path or "/"
        if parsed.query:
            path += "?" + parsed.query
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        conn.close()
    except (OSError, http.client.HTTPException) as exc:
        raise TransportError(f"cannot fetch {url!r}: {exc}") from exc
    if response.status != 200:
        raise TransportError(
            f"GET {url} returned HTTP {response.status}")
    return body.decode("utf-8")


#: Parsed WSDL descriptions keyed by the URL they were fetched from.
#: Re-importing a toolbox touches every service's ``?wsdl`` repeatedly;
#: the documents are immutable per deployment, so one fetch+parse per
#: endpoint is enough.
_WSDL_CACHE = datacache.LruCache(64)


def reset_wsdl_cache() -> None:
    """Drop all cached WSDL descriptions (test isolation)."""
    _WSDL_CACHE.clear()


class ServiceProxy:
    """Dynamic operation proxy over any :class:`Transport`.

    An optional per-endpoint :class:`~repro.ws.breaker.CircuitBreaker`
    makes the proxy fail fast
    (:class:`~repro.errors.CircuitOpenError`) while its endpoint is
    presumed dead, instead of paying a full transport timeout per call.
    Only delivery failures (:class:`TransportError`/``OSError``) count
    against the breaker — a SOAP fault proves the endpoint is alive.
    """

    def __init__(self, description: wsdl.WsdlDescription,
                 transport: Transport,
                 breaker: CircuitBreaker | None = None):
        self.description = description
        self.transport = transport
        self.breaker = breaker

    @classmethod
    def from_wsdl_url(cls, url: str,
                      breaker: CircuitBreaker | None = None
                      ) -> "ServiceProxy":
        """Build a proxy by fetching and parsing a ``?wsdl`` URL.

        Descriptions are cached per URL (bounded LRU), so re-importing
        a toolbox costs one HTTP round-trip per service, not per call.
        """
        description = None
        if datacache.enabled():
            description = _WSDL_CACHE.get(url)
        if description is not None:
            get_metrics().counter("ws.wsdl.cache.hits").inc()
        else:
            get_metrics().counter("ws.wsdl.cache.misses").inc()
            description = wsdl.parse(fetch_url(url))
            if datacache.enabled():
                _WSDL_CACHE.put(url, description)
        if not description.address:
            raise WsdlError(f"WSDL at {url} carries no endpoint address")
        return cls(description, HttpTransport(description.address),
                   breaker=breaker)

    @classmethod
    def from_wsdl_text(cls, document: str, transport: Transport,
                       breaker: CircuitBreaker | None = None
                       ) -> "ServiceProxy":
        """Build a proxy from WSDL text with an explicit transport."""
        return cls(wsdl.parse(document), transport, breaker=breaker)

    def operations(self) -> list[str]:
        """Sorted operation names offered by the service."""
        return sorted(self.description.operations)

    def call(self, operation: str, **params: Any) -> Any:
        """Invoke *operation*; parameter names are checked against WSDL."""
        info = self.description.operations.get(operation)
        if info is None:
            raise WsdlError(
                f"service {self.description.service!r} has no operation "
                f"{operation!r}; known: {self.operations()}")
        declared = {p for p, _ in info.params}
        unknown = sorted(set(params) - declared)
        if unknown:
            raise WsdlError(
                f"operation {operation!r} got unknown parameter(s) "
                f"{unknown}; declared: {sorted(declared)}")
        missing = sorted(set(info.required) - set(params))
        if missing:
            raise WsdlError(
                f"operation {operation!r} missing required parameter(s) "
                f"{missing}")
        service = self.description.service
        request = SoapRequest(service, operation, params)
        deadline = current_deadline()
        if deadline is not None:
            # fail fast before building any wire bytes
            deadline.check(f"{service}.{operation}")
            request.deadline_s = deadline.remaining()
        if self.breaker is not None:
            self.breaker.ensure_closed(f"{service}.{operation}")
        start = time.perf_counter()
        with get_tracer().span(f"soap:{service}.{operation}") as span:
            # client-side injection: the proxy's span becomes the parent
            # of every server-side span for this invocation
            stamp_trace_context(request, span)
            try:
                result = self.transport.send(request).result
            except (TransportError, OSError):
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            except DeadlineExceeded:
                raise  # a spent budget says nothing about endpoint health
            except Exception:
                # the endpoint answered (a fault is still an answer)
                if self.breaker is not None:
                    self.breaker.record_success()
                raise
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                return result
            finally:
                elapsed = time.perf_counter() - start
                metrics = get_metrics()
                metrics.counter("ws.client.calls", service=service,
                                operation=operation).inc()
                metrics.histogram("ws.client.seconds", service=service,
                                  operation=operation).observe(elapsed)

    def __getattr__(self, name: str):
        if name.startswith("_") or name not in \
                self.description.operations:
            raise AttributeError(name)

        def bound(**params: Any) -> Any:
            return self.call(name, **params)

        bound.__name__ = name
        return bound

    def close(self) -> None:
        """Release underlying resources."""
        self.transport.close()
