"""Client-side service access: HTTP transport and dynamic proxies.

:class:`ServiceProxy` is the client half of the paper's WSDL import: given a
WSDL document (or a ``?wsdl`` URL) it exposes each operation as a Python
method, validating parameter names before anything goes on the wire — the
same early feedback the Triana tools give.
"""

from __future__ import annotations

import http.client
import time
from typing import Any
from urllib.parse import urlparse

from repro.errors import TransportError, WsdlError
from repro.obs import get_metrics, get_tracer
from repro.ws import soap, wsdl
from repro.ws.soap import SoapRequest, SoapResponse
from repro.ws.transport import (Transport, record_transport_metrics,
                                stamp_trace_context)


class HttpTransport(Transport):
    """SOAP POST over a persistent HTTP connection."""

    def __init__(self, endpoint: str, timeout: float = 30.0):
        self.endpoint = endpoint
        parsed = urlparse(endpoint)
        if parsed.scheme != "http" or not parsed.hostname:
            raise TransportError(f"unsupported endpoint {endpoint!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._path = parsed.path or "/"
        self._timeout = timeout
        self._conn: http.client.HTTPConnection | None = None
        self.bytes_sent = 0
        self.bytes_received = 0

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout)
        return self._conn

    def send(self, request: SoapRequest) -> SoapResponse:
        """Deliver one SOAP request; returns the SOAP response."""
        start = time.perf_counter()
        with get_tracer().span("send:http",
                               {"endpoint": self.endpoint}) as span:
            stamp_trace_context(request, span)
            wire = soap.encode_request(request)
            self.bytes_sent += len(wire)
            try:
                conn = self._connection()
                conn.request("POST", self._path, body=wire, headers={
                    "Content-Type": "text/xml; charset=utf-8",
                    "SOAPAction": f'"{request.operation}"',
                })
                http_response = conn.getresponse()
                body = http_response.read()
            except (OSError, http.client.HTTPException) as exc:
                self.close()
                get_metrics().counter("ws.transport.errors",
                                      transport="http").inc()
                raise TransportError(
                    f"cannot reach {self.endpoint}: {exc}") from exc
            self.bytes_received += len(body)
            span.set_attribute("bytes_sent", len(wire))
            span.set_attribute("bytes_received", len(body))
            span.set_attribute("http_status", http_response.status)
            record_transport_metrics("http", time.perf_counter() - start,
                                     len(wire), len(body))
            return soap.decode_response(body)  # raises SoapFault on faults

    def close(self) -> None:
        """Release underlying resources."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def fetch_url(url: str, timeout: float = 30.0) -> str:
    """GET a small text document (WSDL, service index, data file)."""
    parsed = urlparse(url)
    if parsed.scheme != "http" or not parsed.hostname:
        raise TransportError(f"unsupported URL {url!r}")
    try:
        conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port or 80, timeout=timeout)
        path = parsed.path or "/"
        if parsed.query:
            path += "?" + parsed.query
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        conn.close()
    except (OSError, http.client.HTTPException) as exc:
        raise TransportError(f"cannot fetch {url!r}: {exc}") from exc
    if response.status != 200:
        raise TransportError(
            f"GET {url} returned HTTP {response.status}")
    return body.decode("utf-8")


class ServiceProxy:
    """Dynamic operation proxy over any :class:`Transport`."""

    def __init__(self, description: wsdl.WsdlDescription,
                 transport: Transport):
        self.description = description
        self.transport = transport

    @classmethod
    def from_wsdl_url(cls, url: str) -> "ServiceProxy":
        """Build a proxy by fetching and parsing a ``?wsdl`` URL."""
        description = wsdl.parse(fetch_url(url))
        if not description.address:
            raise WsdlError(f"WSDL at {url} carries no endpoint address")
        return cls(description, HttpTransport(description.address))

    @classmethod
    def from_wsdl_text(cls, document: str,
                       transport: Transport) -> "ServiceProxy":
        """Build a proxy from WSDL text with an explicit transport."""
        return cls(wsdl.parse(document), transport)

    def operations(self) -> list[str]:
        """Sorted operation names offered by the service."""
        return sorted(self.description.operations)

    def call(self, operation: str, **params: Any) -> Any:
        """Invoke *operation*; parameter names are checked against WSDL."""
        info = self.description.operations.get(operation)
        if info is None:
            raise WsdlError(
                f"service {self.description.service!r} has no operation "
                f"{operation!r}; known: {self.operations()}")
        declared = {p for p, _ in info.params}
        unknown = sorted(set(params) - declared)
        if unknown:
            raise WsdlError(
                f"operation {operation!r} got unknown parameter(s) "
                f"{unknown}; declared: {sorted(declared)}")
        missing = sorted(set(info.required) - set(params))
        if missing:
            raise WsdlError(
                f"operation {operation!r} missing required parameter(s) "
                f"{missing}")
        service = self.description.service
        request = SoapRequest(service, operation, params)
        start = time.perf_counter()
        with get_tracer().span(f"soap:{service}.{operation}") as span:
            # client-side injection: the proxy's span becomes the parent
            # of every server-side span for this invocation
            stamp_trace_context(request, span)
            try:
                return self.transport.send(request).result
            finally:
                elapsed = time.perf_counter() - start
                metrics = get_metrics()
                metrics.counter("ws.client.calls", service=service,
                                operation=operation).inc()
                metrics.histogram("ws.client.seconds", service=service,
                                  operation=operation).observe(elapsed)

    def __getattr__(self, name: str):
        if name.startswith("_") or name not in \
                self.description.operations:
            raise AttributeError(name)

        def bound(**params: Any) -> Any:
            return self.call(name, **params)

        bound.__name__ = name
        return bound

    def close(self) -> None:
        """Release underlying resources."""
        self.transport.close()
